"""The unified ExecutionBackend layer: registry, worker resolution, map/submit
semantics, and the serial/thread/process equivalence matrix across the entropy
stage, the plan pipeline, and the round engine.

The single-core CI container only checks correctness: wall-clock speedup
assertions are gated on ``os.cpu_count() > 1``, matching the
``bench_pipeline.py --min-speedup`` convention.
"""

from __future__ import annotations

import importlib
import os
import sys
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.huffman import HuffmanCoder
from repro.core import FedSZCompressor, FedSZConfig
from repro.fl import FederatedSimulation, FedSZUpdateCodec
from repro.nn import build_model
from repro.utils.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    map_parallel,
    register_backend,
    resolve_worker_count,
)

BACKENDS = ("serial", "thread", "process")


# -- module-level task functions: the process backend's picklability contract --

def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"worker failed on {x}")


def _nested_process_map(xs: "list[int]") -> "list[int]":
    # a process map issued from inside a process worker must degrade to
    # sequential execution instead of forking grandchildren
    return map_parallel(_square, xs, max_workers=2, backend="process")


def _spin(seconds: float) -> float:
    # CPU-bound busy loop (does not release the GIL meaningfully)
    deadline = time.perf_counter() + seconds
    x = 0.0
    while time.perf_counter() < deadline:
        x += 1.0
    return x


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ("serial", "thread", "process",
                                        "subinterpreter")

    def test_get_backend_by_name_and_instance(self):
        thread = get_backend("thread")
        assert isinstance(thread, ThreadBackend)
        assert get_backend(thread) is thread
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="serial, thread, process"):
            get_backend("mpi")

    def test_register_backend_requires_a_name(self):
        class Nameless(ThreadBackend):
            name = "base"
        with pytest.raises(ValueError, match="name"):
            register_backend(Nameless())

    def test_traits(self):
        assert get_backend("thread").gil_bound
        assert get_backend("thread").shared_memory
        assert not get_backend("process").gil_bound
        assert not get_backend("process").shared_memory
        assert not get_backend("serial").gil_bound
        assert get_backend("serial").shared_memory

    def test_backends_are_picklable(self):
        import pickle
        for name in BACKENDS:
            assert isinstance(pickle.loads(pickle.dumps(get_backend(name))),
                              ExecutionBackend)


class TestWorkerResolution:
    """Satellite regression: ``None`` resolves per backend, not per the old
    thread-only ``min(32, cpu_count + 4)`` heuristic."""

    def test_thread_default_keeps_executor_heuristic(self):
        expected = min(32, (os.cpu_count() or 1) + 4)
        assert resolve_worker_count(None, 1000, backend="thread") == expected

    def test_process_default_is_cpu_count_not_thread_heuristic(self):
        assert resolve_worker_count(None, 1000, backend="process") == (os.cpu_count() or 1)

    def test_serial_always_resolves_to_one(self):
        assert resolve_worker_count(None, 1000, backend="serial") == 1
        assert resolve_worker_count(8, 1000, backend="serial") == 1

    def test_backend_defaults_to_thread_for_compatibility(self):
        assert resolve_worker_count(None, 1000) == \
            resolve_worker_count(None, 1000, backend="thread")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clamped_to_items_and_floor_one(self, backend):
        assert resolve_worker_count(8, 3, backend=backend) in (1, 3)
        assert resolve_worker_count(8, 0, backend=backend) == 1
        assert resolve_worker_count(1, 10, backend=backend) == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_invalid_worker_count_rejected(self, backend):
        with pytest.raises(ValueError, match="workers"):
            resolve_worker_count(0, 4, backend=backend)


class TestMapSemantics:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_map_preserves_order(self, backend, workers):
        items = list(range(23))
        assert map_parallel(_square, items, max_workers=workers,
                            backend=backend) == [x * x for x in items]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_items(self, backend):
        assert map_parallel(_square, [], max_workers=4, backend=backend) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exceptions_propagate(self, backend):
        with pytest.raises(RuntimeError, match="worker failed"):
            map_parallel(_boom, [1, 2, 3], max_workers=2, backend=backend)

    def test_closures_work_on_shared_memory_backends(self):
        # only the process backend imposes the picklability contract
        acc = []
        for backend in ("serial", "thread"):
            assert map_parallel(lambda x: x + 1, [1, 2], backend=backend) == [2, 3]
            map_parallel(acc.append, [7], backend=backend)
        assert acc == [7, 7]

    def test_process_map_nested_in_process_worker_stays_flat(self):
        out = map_parallel(_nested_process_map, [[1, 2], [3, 4]],
                           max_workers=2, backend="process")
        assert out == [[1, 4], [9, 16]]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_executor_submit_semantics(self, backend):
        with get_backend(backend).executor(workers=2) as pool:
            futures = [pool.submit(_square, x) for x in (2, 3)]
            assert [f.result() for f in futures] == [4, 9]

    def test_serial_executor_wraps_exceptions(self):
        with get_backend("serial").executor() as pool:
            future = pool.submit(_boom, 1)
        with pytest.raises(RuntimeError, match="worker failed"):
            future.result()

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="speedup needs more than one core")
    def test_process_backend_beats_serial_on_cpu_bound_work(self):
        items = [0.2] * 4
        start = time.perf_counter()
        map_parallel(_spin, items, max_workers=1, backend="serial")
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        map_parallel(_spin, items, max_workers=4, backend="process")
        process_wall = time.perf_counter() - start
        assert process_wall < serial_wall


# -- equivalence matrix: every fan-out stage, every backend, bit-identical ----

class TestHuffmanEquivalence:
    def test_backend_matrix_decodes_bit_identical(self):
        rng = np.random.default_rng(42)
        symbols = rng.integers(0, 500, size=120_000)
        coder = HuffmanCoder(chunk_size=2048)
        payload = coder.encode(symbols)
        reference = coder.decode(payload, max_workers=1)
        np.testing.assert_array_equal(reference, symbols)
        for backend in BACKENDS:
            for workers in (1, 2, 4):
                decoded = coder.decode(payload, max_workers=workers, backend=backend)
                np.testing.assert_array_equal(decoded, reference)

    def test_instance_backend_default_used(self):
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 64, size=40_000)
        for backend in BACKENDS:
            coder = HuffmanCoder(chunk_size=1024, max_workers=4, backend=backend)
            np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_corruption_raises_valueerror_across_process_boundary(self):
        import struct
        import zlib

        rng = np.random.default_rng(9)
        symbols = rng.integers(0, 100, size=60_000)
        coder = HuffmanCoder(chunk_size=1024)
        payload = bytearray(coder.encode(symbols))
        # nudge one mid-stream chunk's recorded bit offset by a single bit and
        # *re-stamp the CRC*: every parent-side header check still passes (the
        # shifted spans stay plausible), so the corruption is only discovered
        # by a band task failing its decode-boundary check — the worker-side
        # ValueError must marshal back intact (for the process backend:
        # across the process boundary)
        index_at = 8 + 20 + int(symbols.max()) + 1  # prefix + header + lengths
        (offset,) = struct.unpack_from("<Q", payload, index_at + 30 * 16)
        struct.pack_into("<Q", payload, index_at + 30 * 16, offset + 1)
        payload[4:8] = struct.pack("<I", zlib.crc32(bytes(payload[8:])))
        for backend in BACKENDS:
            with pytest.raises(ValueError, match="Huffman"):
                coder.decode(bytes(payload), max_workers=2, backend=backend)


class TestPipelineEquivalence:
    @pytest.fixture(scope="class")
    def state(self):
        return build_model("simplecnn", num_classes=10, in_channels=3,
                           image_size=16, seed=1).state_dict()

    def test_bitstreams_bit_identical_across_backends(self, state):
        reference = FedSZCompressor(FedSZConfig()).compress_state_dict(state)
        for backend in BACKENDS:
            for workers in (1, 2, 3):
                config = FedSZConfig(backend=backend, pipeline_workers=workers,
                                     entropy_workers=workers)
                fedsz = FedSZCompressor(config)
                payload = fedsz.compress_state_dict(state)
                assert payload == reference, (backend, workers)
                recon = fedsz.decompress_state_dict(payload)
                ref_recon = FedSZCompressor(FedSZConfig()).decompress_state_dict(reference)
                for key in ref_recon:
                    np.testing.assert_array_equal(recon[key], ref_recon[key])

    def test_mixed_codec_plan_bit_identical_across_backends(self, state):
        def compress(backend):
            config = FedSZConfig(policy="mixed-codec",
                                 policy_options={"small_codec": "szx",
                                                 "size_cutoff": 4096},
                                 backend=backend, pipeline_workers=2)
            return FedSZCompressor(config).compress_state_dict(state)

        serial = compress("serial")
        assert compress("thread") == serial
        assert compress("process") == serial

    @settings(max_examples=6, deadline=None)
    @given(workers=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_property_any_worker_count_any_backend(self, workers, seed):
        rng = np.random.default_rng(seed)
        state = {
            "a.weight": rng.normal(0, 0.05, size=3000).astype(np.float32),
            "b.weight": rng.normal(0, 0.1, size=(40, 50)).astype(np.float32),
            "c.bias": rng.normal(0, 0.01, size=64).astype(np.float32),
        }
        payloads = {
            backend: FedSZCompressor(
                FedSZConfig(backend=backend, pipeline_workers=workers,
                            entropy_workers=workers)).compress_state_dict(state)
            for backend in BACKENDS
        }
        assert payloads["serial"] == payloads["thread"] == payloads["process"]


class TestRoundEngineEquivalence:
    def _run(self, tiny_split, backend, workers):
        train, test = tiny_split

        def factory():
            return build_model("simplecnn", num_classes=10, in_channels=3,
                               image_size=16, seed=0)

        codec = FedSZUpdateCodec(FedSZConfig(error_bound=1e-2, backend=backend))
        sim = FederatedSimulation(factory, train, test, n_clients=3, codec=codec,
                                  seed=5, lr=0.1, max_workers=workers,
                                  backend=backend)
        return sim.run(2)

    def test_round_records_identical_across_backends(self, tiny_split):
        """Satellite requirement: a seeded 2-round simulation produces
        identical RoundRecords on serial, thread, and process backends."""
        results = {backend: self._run(tiny_split, backend, workers=2)
                   for backend in BACKENDS}
        reference = results["serial"]
        for backend, result in results.items():
            assert result.accuracies == reference.accuracies, backend
            for ours, ref in zip(result.rounds, reference.rounds):
                assert ours.transmitted_bytes == ref.transmitted_bytes
                assert ours.uncompressed_bytes == ref.uncompressed_bytes
                assert ours.communication_seconds == ref.communication_seconds
                assert ours.client_losses == ref.client_losses
                assert ours.participants == ref.participants
                assert set(ours.client_reports) == set(ref.client_reports)
                for cid, report in ours.client_reports.items():
                    assert report.compressed_bytes == \
                        ref.client_reports[cid].compressed_bytes
                    assert report.original_bytes == \
                        ref.client_reports[cid].original_bytes

    def test_client_replicas_consistent_after_process_round(self, tiny_split):
        train, test = tiny_split

        def factory():
            return build_model("simplecnn", num_classes=10, in_channels=3,
                               image_size=16, seed=0)

        sims = {}
        for backend in ("serial", "process"):
            sims[backend] = FederatedSimulation(factory, train, test, n_clients=2,
                                                seed=5, lr=0.1, max_workers=2,
                                                backend=backend)
            sims[backend].run_round(0)
        # process-trained replicas are re-absorbed from the returned updates,
        # so every backend leaves the client models in the same state
        for a, b in zip(sims["serial"].clients, sims["process"].clients):
            for key, value in a.model.state_dict().items():
                np.testing.assert_array_equal(value, b.model.state_dict()[key])

    def test_unknown_backend_rejected(self, tiny_split):
        train, test = tiny_split

        def factory():
            return build_model("simplecnn", num_classes=10, in_channels=3,
                               image_size=16, seed=0)

        with pytest.raises(ValueError, match="unknown execution backend"):
            FederatedSimulation(factory, train, test, n_clients=2, backend="mpi")


class TestRemovedShim:
    """Satellite: the deprecated ``repro.fl.parallel`` shim is gone; the real
    homes (``repro.utils.parallel`` / ``repro.fl.simulation``) remain the
    package re-exports."""

    def test_shim_module_is_removed(self):
        sys.modules.pop("repro.fl.parallel", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.fl.parallel")

    def test_package_reexports_survive_the_removal(self):
        import repro.fl
        from repro.fl.simulation import train_clients_parallel

        assert repro.fl.map_parallel is map_parallel
        assert repro.fl.resolve_worker_count is resolve_worker_count
        assert repro.fl.train_clients_parallel is train_clients_parallel


def _arena_sum(handle) -> float:
    """Module-level arena reader for the cross-process shipping tests."""
    with handle.open() as view:
        arrays = view.arrays()
        total = float(sum(a.sum() for a in arrays.values()))
        del arrays  # the views must die before the attachment closes
    return total


class TestSubinterpreterBackend:
    """Satellite: the PEP 734 backend registers everywhere but only runs on
    interpreters that ship ``InterpreterPoolExecutor`` (Python 3.13+)."""

    def test_registered_with_traits(self):
        from repro.utils.parallel import SubinterpreterBackend

        assert "subinterpreter" in available_backends()
        backend = get_backend("subinterpreter")
        assert isinstance(backend, SubinterpreterBackend)
        assert backend.pickles_arguments
        assert not backend.shared_memory
        assert not backend.gil_bound

    def test_pickles_arguments_trait_matrix(self):
        assert get_backend("process").pickles_arguments
        assert not get_backend("serial").pickles_arguments
        assert not get_backend("thread").pickles_arguments

    def test_unsupported_interpreter_raises_cleanly(self):
        backend = get_backend("subinterpreter")
        if backend.supported():
            pytest.skip("this interpreter supports subinterpreter pools")
        # even the workers=1 sequential degrade must raise: a backend that
        # works single-worker but fails at 4 would be a debugging trap
        with pytest.raises(ValueError, match="3.13"):
            backend.map(_square, [1, 2, 3], workers=1)
        with pytest.raises(ValueError, match="3.13"):
            backend.executor(2)
        with pytest.raises(ValueError, match="subinterpreter"):
            map_parallel(_square, [1, 2], backend="subinterpreter")

    def test_supported_interpreter_matches_serial(self):
        backend = get_backend("subinterpreter")
        if not backend.supported():
            pytest.skip("requires Python >= 3.13 (InterpreterPoolExecutor)")
        items = list(range(20))
        assert backend.map(_square, items, workers=4) == [x * x for x in items]


class TestSharedMemoryArena:
    """Satellite: tensor shipping for pickling backends via one shared
    segment and a tiny picklable handle."""

    def _arrays(self):
        rng = np.random.default_rng(9)
        return {
            "w": rng.normal(0, 1, (16, 8)).astype(np.float32),
            "b": rng.normal(0, 1, 16).astype(np.float64),
            "i": np.arange(10, dtype=np.int64),
            "empty": np.zeros(0, dtype=np.float32),
        }

    def test_roundtrip_values_dtypes_shapes(self):
        from repro.utils.parallel import SharedMemoryArena

        arrays = self._arrays()
        with SharedMemoryArena(arrays) as arena:
            got = arena.handle.load()
            assert list(got) == list(arrays)
            for key in arrays:
                np.testing.assert_array_equal(got[key], arrays[key])
                assert got[key].dtype == arrays[key].dtype
                assert got[key].shape == arrays[key].shape

    def test_noncontiguous_input_packed_contiguously(self):
        from repro.utils.parallel import SharedMemoryArena

        strided = np.arange(20, dtype=np.float64)[::2]
        with SharedMemoryArena({"s": strided}) as arena:
            np.testing.assert_array_equal(arena.handle.load()["s"], strided)

    def test_handle_is_small_and_picklable(self):
        import pickle

        from repro.utils.parallel import SharedMemoryArena

        big = {"big": np.zeros((512, 512), dtype=np.float64)}
        with SharedMemoryArena(big) as arena:
            blob = pickle.dumps(arena.handle)
            assert len(blob) < 1024  # metadata only, never the buffers
            np.testing.assert_array_equal(
                pickle.loads(blob).load()["big"], big["big"])

    def test_views_are_readonly_copies_are_not(self):
        from repro.utils.parallel import SharedMemoryArena

        with SharedMemoryArena({"x": np.ones(4)}) as arena:
            with arena.handle.open() as view:
                zero_copy = view.arrays()["x"]
                assert not zero_copy.flags.writeable
                copied = view.arrays(copy=True)["x"]
                assert copied.flags.writeable
                del zero_copy
            copied[0] = 7.0  # the copy survives the view

    def test_close_is_idempotent(self):
        from repro.utils.parallel import SharedMemoryArena

        arena = SharedMemoryArena({"x": np.ones(4)})
        arena.close()
        arena.close()

    def test_empty_mapping(self):
        from repro.utils.parallel import SharedMemoryArena

        with SharedMemoryArena({}) as arena:
            assert arena.handle.load() == {}

    def test_cross_process_shipping(self):
        from repro.utils.parallel import SharedMemoryArena

        arrays = self._arrays()
        expected = float(sum(a.sum() for a in arrays.values()))
        with SharedMemoryArena(arrays) as arena:
            results = map_parallel(_arena_sum, [arena.handle] * 3,
                                   backend="process", max_workers=2)
        assert results == [expected] * 3

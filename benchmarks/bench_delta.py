"""Cross-round residual shipping: delta codec ratio, error feedback, durability.

Four drills over a seeded FedAvg run of the round-engine bench model
(``simplecnn``), comparing full-state FedSZ shipping against the delta codec
(clients compress ``state - reference`` with an error-feedback accumulator,
FDL5 framing, warm codebook reuse):

* **ratio** — the same run with and without ``delta=True``; round 0 is a cold
  full ship on both sides, and from round 2 onward (warm reference on every
  client) the delta payload must be at least ``RATIO_FLOOR`` times smaller.
  Per-round degrade reasons and the warm-codebook reuse counters ride along
  from the :class:`RoundRecord` fields.
* **error feedback** — an FLClient-driven loop outside the simulation: each
  round the clients train, their true states are FedAvg'd into the
  uncompressed reference, and the delta-codec reconstructions are FedAvg'd
  into what the server actually sees.  Every float tensor must stay within
  ``EF_SLACK`` x the configured relative error bound of the reference —
  error feedback keeps single-round quantization errors from accumulating.
* **bit-identity** — the delta run re-executed across execution backends,
  worker counts, and the streaming encode/decode paths must reproduce every
  deterministic round field (including ``delta_clients`` / ``delta_degrades``)
  bit-for-bit against the serial reference.
* **kill-and-resume** (``--kill-resume``) — a journaled delta run is crashed
  mid-round in a child process (``REPRO_JOURNAL_CRASH_AFTER``), resumed from
  the journal plus the delta sidecars, and must match an uninterrupted
  reference on every deterministic field and the final global state.

Two entry points:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_delta.py -o
  python_files="bench_*.py" -o python_functions="bench_*"`` — pytest-benchmark
  harness (thread backend, persists results),
* ``PYTHONPATH=src python benchmarks/bench_delta.py [--backend thread]
  [--smoke] [--kill-resume]`` — direct CLI; ``--smoke`` is the
  correctness-only CI drill (reduced sizes, relaxed ratio floor, results are
  not persisted).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import save_results
from repro.core import FedSZConfig
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec, fedavg_aggregate
from repro.fl.client import FLClient
from repro.fl.delta import DeltaUpdateCodec, advance_accumulator
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model

ERROR_BOUND = 1e-2
#: partition threshold: every conv/linear weight of the bench model rides the
#: lossy (residual-compressed) channel; only the tiny biases stay lossless
THRESHOLD = 128
BATCH_SIZE = 32
SEED = 11
DATA_SEED = 47
#: required warm-reference payload shrink from round 2 onward (full scale);
#: the smoke drill runs the model at 16x16 where fixed per-ship container
#: overhead eats more of the win, so it only checks the direction
RATIO_FLOOR = 2.0
SMOKE_RATIO_FLOOR = 1.2
#: transient error-feedback slack: the accumulator folds last round's
#: quantization error into this round's residual, so a single round may
#: overshoot the bound by the carried error before feedback cancels it
EF_SLACK = 2.5


def _settings(smoke: bool) -> dict:
    if smoke:
        return {"n_samples": 240, "image_size": 16, "n_clients": 4,
                "rounds": 3, "lr": 0.1}
    return {"n_samples": 480, "image_size": 32, "n_clients": 8,
            "rounds": 4, "lr": 0.1}


def _data(settings: dict):
    return train_test_split(
        make_dataset("cifar10", n_samples=settings["n_samples"],
                     image_size=settings["image_size"], seed=DATA_SEED),
        test_fraction=0.2, seed=3)


def _codec() -> FedSZUpdateCodec:
    return FedSZUpdateCodec(FedSZConfig(error_bound=ERROR_BOUND,
                                        threshold=THRESHOLD))


def _build_simulation(train, test, settings: dict, **kwargs):
    def factory():
        return build_model("simplecnn", num_classes=10, in_channels=3,
                           image_size=settings["image_size"], seed=0)

    kwargs.setdefault("backend", "serial")
    return FederatedSimulation(factory, train, test,
                               n_clients=settings["n_clients"],
                               codec=_codec(), batch_size=BATCH_SIZE,
                               lr=settings["lr"], seed=SEED,
                               uplink="parallel", **kwargs)


def _deterministic_fields(result):
    """Every round field a delta run must reproduce bit-for-bit."""
    return [(r.accuracy, r.uncompressed_bytes, r.transmitted_bytes,
             r.communication_seconds, tuple(r.client_losses),
             tuple(r.participants), tuple(r.dropped_clients),
             tuple(r.late_clients), tuple(r.delta_clients),
             tuple(sorted(r.delta_degrades.items())))
            for r in result.rounds]


# ---------------------------------------------------------------------------
def _run_ratio_drill(train, test, settings: dict, backend: str,
                     ratio_floor: float) -> dict:
    """Full-state vs delta shipping: per-round bytes, degrades, codebooks."""
    rounds = settings["rounds"]
    full = _build_simulation(train, test, settings, backend=backend,
                             delta=False).run(rounds)
    delta = _build_simulation(train, test, settings, backend=backend,
                              delta=True).run(rounds)

    ratios = [f.transmitted_bytes / d.transmitted_bytes
              for f, d in zip(full.rounds, delta.rounds)]
    # round 0 is a cold full ship on every client: both sides pay the same
    # payload (modulo the 13-byte FDL5 frame), and the record says why
    first = delta.rounds[0]
    assert not first.delta_clients, \
        f"round 0 shipped deltas without a warm reference: {first.delta_clients}"
    assert set(first.delta_degrades.values()) == {"cold"}, \
        f"round 0 degrades should all be 'cold': {first.delta_degrades}"
    # from round 2 onward every participant holds a warm server-acknowledged
    # reference, so the residual payload must clear the ratio floor
    for record, ratio in zip(delta.rounds[2:], ratios[2:]):
        assert not record.delta_degrades, \
            f"warm round {record.round_index} degraded: {record.delta_degrades}"
        assert sorted(record.delta_clients) == sorted(record.participants), \
            f"warm round {record.round_index} did not ship all-delta"
        assert ratio >= ratio_floor, \
            (f"round {record.round_index}: delta payload only "
             f"{ratio:.2f}x smaller than full-state (floor {ratio_floor}x)")

    counters = delta.rounds[-1].codebook_cache or {}
    assert sum(counters.values()) > 0, \
        "delta run recorded no warm-codebook activity"
    return {"full": full, "delta": delta, "ratios": ratios,
            "codebook_counters": counters}


def _run_error_bound_drill(settings: dict) -> float:
    """Delta reconstructions vs the uncompressed-FedAvg reference.

    Drives FLClients directly (no simulation) so the true trained states are
    observable each round: the FedAvg of the codec reconstructions — what the
    server aggregates — must track the FedAvg of the exact states within the
    configured relative error bound (times the transient EF slack).
    """
    train, _test = _data(settings)
    n_clients = settings["n_clients"]

    def factory():
        return build_model("simplecnn", num_classes=10, in_channels=3,
                           image_size=settings["image_size"], seed=0)

    clients = [FLClient(i, factory(), train, batch_size=BATCH_SIZE,
                        lr=settings["lr"], seed=100 + i)
               for i in range(n_clients)]
    codecs = [DeltaUpdateCodec(_codec()) for _ in range(n_clients)]
    accs: list = [None] * n_clients
    server_state = factory().state_dict()

    worst = 0.0
    for round_index in range(settings["rounds"]):
        true_states, recon_states = [], []
        for i, (client, codec) in enumerate(zip(clients, codecs)):
            client.receive_global(server_state)
            state = client.train_local(epochs=1, round_index=round_index).state
            codec.arm(server_state, round_index, delta=round_index > 0,
                      acc=accs[i])
            recon = codec.decode(codec.encode(state))
            accs[i] = advance_accumulator(state, recon, accs[i])
            true_states.append(state)
            recon_states.append(recon)
        reference = fedavg_aggregate(true_states)
        aggregated = fedavg_aggregate(recon_states)
        for name, ref in reference.items():
            ref = np.asarray(ref)
            if ref.dtype.kind != "f":
                continue
            bound = ERROR_BOUND * float(np.ptp(ref))
            err = float(np.max(np.abs(aggregated[name].astype(np.float64)
                                      - ref.astype(np.float64))))
            worst = max(worst, err / bound if bound else 0.0)
            assert err <= EF_SLACK * bound, \
                (f"round {round_index} {name}: aggregated reconstruction off "
                 f"the uncompressed reference by {err:.3e} "
                 f"(bound {bound:.3e}, slack {EF_SLACK}x)")
        server_state = aggregated  # train the next round on what FL really sees
    return worst


def _run_identity_drill(train, test, settings: dict, backend: str) -> list:
    """Delta runs across backend x workers x streaming match the serial run."""
    rounds = settings["rounds"]
    reference = _build_simulation(train, test, settings, backend="serial",
                                  max_workers=1, delta=True).run(rounds)
    variants = [{"backend": backend, "max_workers": 1},
                {"backend": backend, "max_workers": 4},
                {"backend": backend, "max_workers": 1,
                 "streaming": True, "streaming_encode": True},
                {"backend": backend, "max_workers": 4,
                 "streaming": True, "streaming_encode": True}]
    labels = []
    for kwargs in variants:
        label = "{}-w{}{}".format(kwargs["backend"], kwargs["max_workers"],
                                  "-streaming" if kwargs.get("streaming") else "")
        got = _build_simulation(train, test, settings, delta=True,
                                **kwargs).run(rounds)
        assert _deterministic_fields(got) == _deterministic_fields(reference), \
            f"delta run on {label} diverged from the serial reference"
        labels.append(label)
    return labels


def _run_kill_resume_drill(settings: dict, backend: str) -> dict:
    """Crash a journaled delta run mid-round, resume, compare bit-for-bit."""
    with tempfile.TemporaryDirectory(prefix="fedsz-delta-journal-") as journal_dir:
        child_env = dict(os.environ)
        child_env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parent.parent / "src"),
             child_env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        # die after the 5th journal event: run header + round 0's round_start
        # leave events 3+ as the per-client ships, so event 5 lands mid-round
        # with some delta sidecars persisted and some not yet written
        child_env["REPRO_JOURNAL_CRASH_AFTER"] = "5"
        child = subprocess.run(
            [sys.executable, __file__, "--_child", "--backend", backend,
             "--journal-dir", journal_dir]
            + (["--smoke"] if settings["image_size"] == 16 else []),
            env=child_env, capture_output=True, text=True)
        if child.returncode != 42:
            raise AssertionError(
                f"crash child expected to hard-exit 42, got {child.returncode}:\n"
                f"{child.stderr[-2000:]}")

        train, test = _data(settings)
        rounds = settings["rounds"]
        reference_sim = _build_simulation(train, test, settings,
                                          backend=backend, delta=True)
        reference = reference_sim.run(rounds)
        resumed_sim = _build_simulation(train, test, settings, backend=backend,
                                        delta=True, journal_dir=journal_dir,
                                        resume=True)
        resumed = resumed_sim.run(rounds)

        assert _deterministic_fields(resumed) == _deterministic_fields(reference), \
            "resumed delta run diverged from the uninterrupted reference"
        ref_state = reference_sim.server.global_state()
        res_state = resumed_sim.server.global_state()
        assert all(np.array_equal(ref_state[k], res_state[k]) for k in ref_state), \
            "resumed final global state is not bit-identical"
        return {"crash_exit": child.returncode,
                "rounds": len(resumed.rounds),
                "final_accuracy": resumed.final_accuracy}


def _child_main(backend: str, journal_dir: str, smoke: bool) -> int:
    """Child half of the kill-resume drill: run journaled until the crash hook."""
    settings = _settings(smoke)
    train, test = _data(settings)
    sim = _build_simulation(train, test, settings, backend=backend, delta=True,
                            journal_dir=journal_dir)
    sim.run(settings["rounds"])  # REPRO_JOURNAL_CRASH_AFTER hard-exits first
    return 0  # reached only if the crash hook never fired


# ---------------------------------------------------------------------------
def _check_and_report(backend: str, smoke: bool, kill_resume: bool) -> int:
    settings = _settings(smoke)
    train, test = _data(settings)
    ratio_floor = SMOKE_RATIO_FLOOR if smoke else RATIO_FLOOR

    ratio = _run_ratio_drill(train, test, settings, backend, ratio_floor)
    worst_ef = _run_error_bound_drill(settings)
    identity_labels = _run_identity_drill(train, test, settings, backend)

    table = Table(
        f"Delta shipping vs full-state FedSZ - simplecnn "
        f"{settings['image_size']}x{settings['image_size']}, "
        f"{settings['n_clients']} clients, eb={ERROR_BOUND:g} REL",
        ["round", "full (B)", "delta (B)", "ratio", "delta clients", "degrades"])
    record = ExperimentRecord(
        "delta", "cross-round residual shipping: error-feedback delta codec "
                 "+ warm codebook reuse vs full-state FedSZ")
    record.add(backend=backend, smoke=smoke, error_bound=ERROR_BOUND,
               threshold=THRESHOLD, ratio_floor=ratio_floor, **settings)
    for f, d, r in zip(ratio["full"].rounds, ratio["delta"].rounds,
                       ratio["ratios"]):
        degrades = ",".join(f"{cid}:{why}" for cid, why
                            in sorted(d.delta_degrades.items())) or "-"
        table.add_row(str(d.round_index), str(f.transmitted_bytes),
                      str(d.transmitted_bytes), f"{r:.2f}x",
                      str(len(d.delta_clients)), degrades)
        record.add(round=d.round_index, full_bytes=f.transmitted_bytes,
                   delta_bytes=d.transmitted_bytes, ratio=r,
                   accuracy_full=f.accuracy, accuracy_delta=d.accuracy,
                   delta_clients=len(d.delta_clients),
                   degrades=dict(d.delta_degrades))
    warm = ratio["ratios"][2:]
    record.add(warm_ratio_min=min(warm), warm_ratio_mean=float(np.mean(warm)),
               codebook_cache=ratio["codebook_counters"],
               ef_worst_bound_fraction=worst_ef,
               bit_identical_variants=identity_labels)

    summary = Table("Delta drills", ["drill", "result"])
    summary.add_row("warm ratio (rounds 2+)",
                    f"min {min(warm):.2f}x / floor {ratio_floor:g}x")
    summary.add_row("error feedback",
                    f"worst {worst_ef:.2f} of bound (slack {EF_SLACK:g}x)")
    summary.add_row("codebook cache",
                    ", ".join(f"{k}={v}" for k, v
                              in sorted(ratio["codebook_counters"].items())))
    summary.add_row("bit-identical", ", ".join(identity_labels))
    if kill_resume:
        resume_stats = _run_kill_resume_drill(settings, backend)
        summary.add_row("kill-and-resume",
                        f"exit {resume_stats['crash_exit']}, "
                        f"{resume_stats['rounds']} rounds recovered")
        record.add(drill="kill-and-resume", **resume_stats)

    if smoke:
        print()
        print(table.render())
        print()
        print(summary.render())
    else:
        save_results("delta", [table, summary], record)
    return 0


def bench_delta(benchmark):
    """pytest-benchmark harness (historic entry point; thread backend)."""
    benchmark.pedantic(
        lambda: _check_and_report("thread", smoke=False, kill_resume=False),
        rounds=1, iterations=1)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend for the identity drill")
    parser.add_argument("--smoke", action="store_true",
                        help="correctness-only drill: reduced sizes, relaxed "
                             "ratio floor, results are not persisted (CI mode)")
    parser.add_argument("--kill-resume", action="store_true",
                        help="also run the crash-mid-round + journal-resume drill")
    parser.add_argument("--_child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--journal-dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args._child:
        return _child_main(args.backend, args.journal_dir, args.smoke)
    return _check_and_report(args.backend, smoke=args.smoke,
                             kill_resume=args.kill_resume)


if __name__ == "__main__":
    sys.exit(main())

"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array plus its accumulated gradient.

    Stored as ``float32`` to match the precision FedSZ compresses (PyTorch's
    default parameter dtype).
    """

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def add_grad(self, grad: np.ndarray) -> None:
        """Accumulate a gradient contribution (cast to float32)."""
        self.grad += grad.astype(np.float32, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.data.shape}, dtype={self.data.dtype})"

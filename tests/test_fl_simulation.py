"""Integration tests for clients, codecs, and the federated simulation."""

import numpy as np
import pytest

from repro.core import FedSZConfig, NetworkModel
from repro.data import make_dataset, train_test_split
from repro.fl import (
    FLClient,
    FederatedSimulation,
    FedSZUpdateCodec,
    RawUpdateCodec,
)
from repro.nn import build_model


def _factory():
    return build_model("simplecnn", num_classes=10, in_channels=3, image_size=16, seed=0)


class TestClient:
    def test_train_local_returns_update(self, tiny_split):
        train, _ = tiny_split
        client = FLClient(0, _factory(), train, batch_size=32, lr=0.1)
        update = client.train_local(epochs=1)
        assert update.client_id == 0
        assert update.num_samples == len(train)
        assert update.train_seconds > 0
        assert np.isfinite(update.train_loss)
        assert set(update.state) == set(_factory().state_dict())

    def test_training_changes_weights(self, tiny_split):
        train, _ = tiny_split
        client = FLClient(0, _factory(), train, lr=0.1)
        before = client.model.state_dict()
        client.train_local(epochs=1)
        after = client.model.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before if "weight" in k)

    def test_receive_global_loads_state(self, tiny_split):
        train, _ = tiny_split
        client = FLClient(0, _factory(), train)
        target = {k: np.zeros_like(v) for k, v in client.model.state_dict().items()}
        client.receive_global(target)
        assert np.allclose(client.model.state_dict()["classifier.1.weight"], 0.0)

    def test_evaluate_returns_accuracy(self, tiny_split):
        train, test = tiny_split
        client = FLClient(0, _factory(), train)
        assert 0.0 <= client.evaluate(test) <= 1.0

    def test_evaluate_restores_entry_mode(self, tiny_split):
        # regression: evaluate used to force train(True) on exit even when
        # the model entered in evaluation mode
        train, test = tiny_split
        client = FLClient(0, _factory(), train)
        client.model.train(False)
        client.evaluate(test)
        assert client.model.training is False

    def test_later_rounds_use_fresh_batch_order(self, tiny_split):
        # regression: every round used to replay the identical shuffle, so the
        # model saw the same batch sequence against an evolving state
        train, _ = tiny_split
        state = _factory().state_dict()
        losses = {}
        for round_index in (0, 1):
            client = FLClient(0, _factory(), train, batch_size=32, lr=0.1, seed=9)
            client.receive_global(state)
            losses[round_index] = client.train_local(
                epochs=1, round_index=round_index).train_loss
        assert losses[0] != losses[1]


class TestCodecs:
    def test_raw_codec_bit_exact(self, small_state):
        codec = RawUpdateCodec()
        recon = codec.decode(codec.encode(small_state))
        for key in small_state:
            np.testing.assert_array_equal(recon[key], small_state[key])

    def test_fedsz_codec_smaller_than_raw(self):
        state = build_model("alexnet").state_dict()
        raw = len(RawUpdateCodec().encode(state))
        fedsz = len(FedSZUpdateCodec(FedSZConfig(error_bound=1e-2)).encode(state))
        assert fedsz < raw / 2

    def test_fedsz_codec_reports_stats(self, small_state):
        codec = FedSZUpdateCodec(FedSZConfig(error_bound=1e-2))
        codec.encode(small_state)
        assert codec.last_report is not None
        assert codec.last_report.ratio > 1.0

    def test_codec_names(self):
        assert RawUpdateCodec().name == "uncompressed"
        assert FedSZUpdateCodec().name == "fedsz"


class TestSimulation:
    def test_rounds_record_expected_fields(self, tiny_split):
        train, test = tiny_split
        sim = FederatedSimulation(_factory, train, test, n_clients=2,
                                  codec=RawUpdateCodec(), lr=0.1, seed=0)
        result = sim.run(2)
        assert len(result.rounds) == 2
        record = result.rounds[0]
        assert 0.0 <= record.accuracy <= 1.0
        assert record.uncompressed_bytes > 0
        assert record.transmitted_bytes > 0
        assert record.communication_seconds > 0
        assert record.mean_train_seconds > 0
        assert len(record.client_losses) == 2

    def test_accuracy_improves_over_rounds(self, tiny_split):
        train, test = tiny_split
        sim = FederatedSimulation(_factory, train, test, n_clients=2,
                                  codec=RawUpdateCodec(), lr=0.15, seed=1)
        result = sim.run(6)
        assert result.final_accuracy > result.accuracies[0]
        assert result.final_accuracy > 0.3

    def test_fedsz_matches_uncompressed_accuracy_at_1e2(self, tiny_split):
        # the central claim of the paper in miniature: FedSZ at REL 1e-2 tracks
        # the uncompressed accuracy closely
        train, test = tiny_split
        raw = FederatedSimulation(_factory, train, test, n_clients=2,
                                  codec=RawUpdateCodec(), lr=0.15, seed=2).run(5)
        fedsz = FederatedSimulation(_factory, train, test, n_clients=2,
                                    codec=FedSZUpdateCodec(FedSZConfig(error_bound=1e-2)),
                                    lr=0.15, seed=2).run(5)
        assert abs(fedsz.final_accuracy - raw.final_accuracy) < 0.15
        assert fedsz.total_transmitted_bytes < raw.total_transmitted_bytes

    def test_huge_error_bound_destroys_accuracy(self, tiny_split):
        # Figure 5: beyond REL 1e-1 the model collapses
        train, test = tiny_split
        raw = FederatedSimulation(_factory, train, test, n_clients=2,
                                  codec=RawUpdateCodec(), lr=0.15, seed=3).run(5)
        crushed = FederatedSimulation(_factory, train, test, n_clients=2,
                                      codec=FedSZUpdateCodec(FedSZConfig(error_bound=0.9)),
                                      lr=0.15, seed=3).run(5)
        assert crushed.final_accuracy < raw.final_accuracy

    def test_compression_ratio_reported(self, tiny_split):
        train, test = tiny_split
        sim = FederatedSimulation(_factory, train, test, n_clients=2,
                                  codec=FedSZUpdateCodec(FedSZConfig(error_bound=1e-2)),
                                  lr=0.1, seed=0)
        result = sim.run(1)
        assert result.mean_compression_ratio > 1.5
        assert result.rounds[0].compression_ratio > 1.5

    def test_communication_time_scales_with_bandwidth(self, tiny_split):
        train, test = tiny_split
        slow = FederatedSimulation(_factory, train, test, n_clients=2, codec=RawUpdateCodec(),
                                   network=NetworkModel(bandwidth_mbps=10), seed=0).run(1)
        fast = FederatedSimulation(_factory, train, test, n_clients=2, codec=RawUpdateCodec(),
                                   network=NetworkModel(bandwidth_mbps=1000), seed=0).run(1)
        assert slow.total_communication_seconds > fast.total_communication_seconds * 10

    def test_dirichlet_partitioning_supported(self, tiny_split):
        train, test = tiny_split
        sim = FederatedSimulation(_factory, train, test, n_clients=3, codec=RawUpdateCodec(),
                                  partition_scheme="dirichlet", dirichlet_alpha=0.5, seed=0)
        assert len(sim.clients) == 3
        assert sum(c.num_samples for c in sim.clients) == len(train)

    def test_empty_result_properties(self):
        from repro.fl.simulation import SimulationResult
        result = SimulationResult(codec_name="x")
        assert result.final_accuracy == 0.0
        assert result.mean_compression_ratio == 1.0
        assert result.total_transmitted_bytes == 0

"""Partial participation, stragglers, and heterogeneous links — the round engine.

Demonstrates the scenario knobs of :class:`repro.fl.FederatedSimulation`:
eight FedAvg clients with distinct uplink bandwidths (log-uniform around
10 Mbps), of which only half are sampled each round; sampled clients can drop
out or straggle.  Client training and FedSZ encoding/decoding run on a thread
pool, and the same seeded run is repeated sequentially to show that the
parallel engine reproduces it bit-for-bit.

Run with::

    python examples/fl_partial_participation.py [--rounds 5] [--workers 4]
"""

from __future__ import annotations

import argparse
import time

from repro.core import FedSZConfig, NetworkModel, make_client_networks
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec
from repro.nn import build_model
from repro.utils.timer import format_bytes, format_seconds


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5, help="communication rounds")
    parser.add_argument("--clients", type=int, default=8, help="number of FL clients")
    parser.add_argument("--workers", type=int, default=4, help="thread-pool size")
    parser.add_argument("--participation", type=float, default=0.5,
                        help="fraction of clients sampled per round")
    parser.add_argument("--dropout", type=float, default=0.1,
                        help="probability a sampled client drops out")
    parser.add_argument("--straggler", type=float, default=0.25,
                        help="probability a surviving client straggles (4x slowdown)")
    parser.add_argument("--samples", type=int, default=640, help="synthetic dataset size")
    return parser.parse_args()


def build_simulation(args: argparse.Namespace, max_workers: int) -> FederatedSimulation:
    dataset = make_dataset("cifar10", n_samples=args.samples, image_size=16, seed=1)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=2)

    def factory():
        return build_model("simplecnn", num_classes=10, in_channels=3, image_size=16, seed=0)

    # simulate_delay injects real sleeps for the modeled transfers (the
    # paper's MPI-delay-injection methodology); the worker pool overlaps them
    networks = make_client_networks(args.clients,
                                    NetworkModel(bandwidth_mbps=2.0, simulate_delay=True),
                                    bandwidth_spread=4.0, latency_spread_s=0.02, seed=7)
    return FederatedSimulation(
        factory, train, test, n_clients=args.clients,
        codec=FedSZUpdateCodec(FedSZConfig(error_bound=1e-2)),
        lr=0.15, seed=3, max_workers=max_workers,
        participation=args.participation, dropout_prob=args.dropout,
        straggler_prob=args.straggler, networks=networks, uplink="parallel",
    )


def main() -> None:
    args = parse_args()

    print(f"{args.clients} clients, participation {args.participation:.0%}, "
          f"dropout {args.dropout:.0%}, straggler {args.straggler:.0%}, "
          f"heterogeneous 0.5-8 Mbps uplinks with injected delays "
          f"('parallel' discipline)\n")

    sim = build_simulation(args, max_workers=args.workers)
    start = time.perf_counter()
    result = sim.run(args.rounds)
    parallel_wall = time.perf_counter() - start

    print(f"{'round':>5}  {'acc':>6}  {'sampled':>16}  {'dropped':>8}  "
          f"{'stragglers':>10}  {'upload':>10}  {'comm':>8}")
    for record in result.rounds:
        print(f"{record.round_index:>5}  {record.accuracy:>6.1%}  "
              f"{str(record.participants):>16}  {str(record.dropped_clients):>8}  "
              f"{str(record.straggler_clients):>10}  "
              f"{format_bytes(record.transmitted_bytes):>10}  "
              f"{format_seconds(record.communication_seconds):>8}")

    print(f"\nfinal accuracy {result.final_accuracy:.1%}, "
          f"total upload {format_bytes(result.total_transmitted_bytes)}, "
          f"modeled comm {format_seconds(result.total_communication_seconds)}")

    sequential = build_simulation(args, max_workers=1)
    start = time.perf_counter()
    reference = sequential.run(args.rounds)
    sequential_wall = time.perf_counter() - start

    identical = reference.accuracies == result.accuracies and \
        [r.transmitted_bytes for r in reference.rounds] == \
        [r.transmitted_bytes for r in result.rounds]
    print(f"\nsequential re-run: identical accuracies and byte counts: {identical}")
    print(f"wall clock: {sequential_wall:.2f}s sequential vs {parallel_wall:.2f}s "
          f"with {args.workers} workers ({sequential_wall / max(parallel_wall, 1e-9):.2f}x)")


if __name__ == "__main__":
    main()

"""Transport service: encode → transfer → decode of one client's update.

Wraps what used to be ``fl/simulation.py::_ship_update_task`` behind a
:class:`Transport` interface so the round engine can swap the simulated link
for a real one (gRPC, MPI) without touching scheduling or aggregation.  The
task function stays module-level over an explicit picklable argument struct —
the PR-4 contract that lets the ``process`` backend ship it to a GIL-free
worker — and :class:`SimulatedTransport` additionally offers an asyncio path
where the simulated delay becomes an ``await`` instead of a pool-blocking
sleep, so one thread can hold many uplinks in flight at once.

The uncompressed byte count of an update is computed analytically from array
sizes (:func:`repro.utils.serialization.packed_arrays_nbytes`); the historic
path re-encoded the entire state through ``RawUpdateCodec`` per client per
round just to measure ``len()`` of bytes it then threw away.
"""

from __future__ import annotations

import abc
import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.core.network import NetworkModel
from repro.fl.codec import UpdateCodec
from repro.utils.parallel import ExecutionBackend, get_backend
from repro.utils.serialization import packed_arrays_nbytes

__all__ = ["ShipTask", "ShipResult", "ship_update_task", "Transport",
           "SimulatedTransport"]

from repro.core.pipeline import FedSZReport


@dataclass
class ShipTask:
    """Explicit picklable argument struct for :func:`ship_update_task`."""

    client_id: int
    state: dict[str, np.ndarray]
    codec: UpdateCodec
    network: NetworkModel
    #: reported transfer time is multiplied by this (1.0 = not a straggler)
    straggler_slowdown: float = 1.0
    #: retain the encoded payload on the result (journaling needs the bytes
    #: back; everyone else keeps memory flat by dropping them)
    keep_payload: bool = False


@dataclass
class ShipResult:
    """What one client's encode → transfer → decode stage hands back."""

    client_id: int
    payload_bytes: int
    raw_bytes: int
    encode_seconds: float
    transfer_seconds: float
    decode_seconds: float
    state: dict[str, np.ndarray]
    report: "FedSZReport | None"
    #: the encoded payload itself, only when ``ShipTask.keep_payload`` was set
    payload: "bytes | None" = None


def _encode(task: ShipTask) -> tuple[bytes, "FedSZReport | None", float, int, float]:
    """Encode phase: payload, report, encode wall time, raw bytes, transfer time."""
    start = time.perf_counter()
    payload, report = task.codec.encode_with_report(task.state)
    encode_seconds = time.perf_counter() - start
    # the uncompressed size is a pure function of the arrays' dtypes/shapes
    # and key names — no need to serialize the whole state to measure it
    raw_bytes = packed_arrays_nbytes(task.state)
    transfer_seconds = task.network.transfer_time(len(payload)) * task.straggler_slowdown
    return payload, report, encode_seconds, raw_bytes, transfer_seconds


def _decode(task: ShipTask, payload: bytes) -> tuple[dict[str, np.ndarray], float]:
    """Decode phase: server-side state and decode wall time."""
    start = time.perf_counter()
    state = task.codec.decode(payload)
    return state, time.perf_counter() - start


def _result(task: ShipTask, payload: bytes, report, encode_seconds: float,
            raw_bytes: int, transfer_seconds: float,
            state: dict[str, np.ndarray], decode_seconds: float) -> ShipResult:
    return ShipResult(client_id=task.client_id, payload_bytes=len(payload),
                      raw_bytes=raw_bytes, encode_seconds=encode_seconds,
                      transfer_seconds=transfer_seconds,
                      decode_seconds=decode_seconds, state=state, report=report,
                      payload=payload if task.keep_payload else None)


def ship_update_task(task: ShipTask) -> ShipResult:
    """Encode, transfer, and decode one client's update.

    Runs per client on the execution backend so that simulated network delays
    (``simulate_delay=True``, the paper's MPI-delay-injection methodology)
    overlap across clients instead of sleeping serially.  Module-level with an
    explicit argument struct so the process backend can ship it to a GIL-free
    worker; per-client compression statistics come from the codec's per-call
    reporting API, so they stay accurate at any worker count on any backend.
    """
    payload, report, encode_seconds, raw_bytes, transfer_seconds = _encode(task)
    if task.network.simulate_delay:
        time.sleep(transfer_seconds)
    state, decode_seconds = _decode(task, payload)
    return _result(task, payload, report, encode_seconds, raw_bytes,
                   transfer_seconds, state, decode_seconds)


class Transport(abc.ABC):
    """How an encoded update crosses the network to the aggregating server."""

    name: str = "base"

    @abc.abstractmethod
    def ship(self, task: ShipTask) -> ShipResult:
        """Move one client's update end to end; returns the decoded result."""

    def ship_batch(self, tasks: "list[ShipTask]") -> "list[ShipResult]":
        """Ship several updates; default is sequential :meth:`ship` calls."""
        return [self.ship(task) for task in tasks]

    async def ship_async(self, task: ShipTask) -> ShipResult:
        """Asyncio variant; default delegates to the synchronous path."""
        return self.ship(task)


class SimulatedTransport(Transport):
    """The in-process simulated link the paper's methodology models.

    ``ship_batch`` fans tasks over the configured
    :class:`~repro.utils.parallel.ExecutionBackend` pool (the historic round
    engine path, bit-identical at any worker count); :meth:`ship_async` is the
    overlapped-uplink path, where the simulated transfer delay is an
    ``asyncio.sleep`` await — many in-flight uplinks share one thread, and the
    round's wall clock approaches ``Σ codec time + max transfer`` instead of
    the serial sum.  Both paths produce identical :class:`ShipResult` values:
    every recorded quantity is analytic or per-task wall time, never a
    function of scheduling.
    """

    name = "simulated"

    def __init__(self, backend: "str | ExecutionBackend" = "thread",
                 max_workers: "int | None" = 1) -> None:
        self.backend = get_backend(backend)
        self.max_workers = max_workers

    def ship(self, task: ShipTask) -> ShipResult:
        return ship_update_task(task)

    def ship_batch(self, tasks: "list[ShipTask]") -> "list[ShipResult]":
        return self.backend.map(ship_update_task, tasks, workers=self.max_workers)

    async def ship_async(self, task: ShipTask) -> ShipResult:
        payload, report, encode_seconds, raw_bytes, transfer_seconds = _encode(task)
        if task.network.simulate_delay:
            # the await is the whole point: the event loop runs other uplinks
            # (their codec work and their delays) while this transfer is in
            # flight, so delays overlap without a worker pool
            await asyncio.sleep(transfer_seconds)
        state, decode_seconds = _decode(task, payload)
        return _result(task, payload, report, encode_seconds, raw_bytes,
                       transfer_seconds, state, decode_seconds)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_defaults(self):
        args = build_parser().parse_args(["compress"])
        assert args.command == "compress"
        assert args.model == "alexnet"
        assert args.bound == pytest.approx(1e-2)

    def test_simulate_options(self):
        args = build_parser().parse_args(["simulate", "--rounds", "3", "--clients", "2",
                                          "--dataset", "fmnist"])
        assert args.rounds == 3
        assert args.clients == 2
        assert args.dataset == "fmnist"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--model", "vgg"])

    def test_select_bounds_list(self):
        args = build_parser().parse_args(["select", "--bounds", "1e-2", "1e-4"])
        assert args.bounds == [1e-2, 1e-4]


class TestCommands:
    def test_compress_command_output(self, capsys):
        exit_code = main(["compress", "--model", "simplecnn", "--bound", "1e-2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "FedSZ bitstream" in out
        assert "ratio" in out
        assert "max abs error" in out

    def test_compress_with_alternative_compressor(self, capsys):
        exit_code = main(["compress", "--model", "mlp", "--compressor", "szx"])
        assert exit_code == 0
        assert "szx" in capsys.readouterr().out

    def test_simulate_command_output(self, capsys):
        exit_code = main(["simulate", "--model", "mlp", "--rounds", "2", "--clients", "2",
                          "--samples", "120", "--image-size", "8"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "final accuracy" in out
        assert "upload volume" in out
        assert "x reduction" in out

    def test_select_command_output(self, capsys):
        exit_code = main(["select", "--model", "simplecnn", "--bounds", "1e-2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "recommended:" in out
        assert "Mbps" in out
        for name in ("sz2", "sz3", "szx", "zfp"):
            assert name in out

"""Tests for the canonical Huffman coder."""

import numpy as np
import pytest

from repro.compressors.huffman import MAX_CODE_LENGTH, HuffmanCoder


@pytest.fixture
def coder() -> HuffmanCoder:
    return HuffmanCoder()


class TestRoundtrip:
    def test_simple_sequence(self, coder):
        symbols = np.array([0, 1, 1, 2, 2, 2, 3, 3, 3, 3], dtype=np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_single_symbol_alphabet(self, coder):
        symbols = np.full(1000, 7, dtype=np.int64)
        decoded = coder.decode(coder.encode(symbols))
        np.testing.assert_array_equal(decoded, symbols)

    def test_two_symbols(self, coder):
        symbols = np.array([0, 1] * 50, dtype=np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_empty_input(self, coder):
        out = coder.decode(coder.encode(np.array([], dtype=np.int64)))
        assert out.size == 0

    def test_skewed_distribution(self, coder):
        rng = np.random.default_rng(0)
        symbols = rng.geometric(0.3, size=5000) - 1
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_uniform_large_alphabet(self, coder):
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 500, size=3000)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_quantization_like_stream(self, coder):
        # the typical SZ stream: one dominant central symbol, a spread around it
        rng = np.random.default_rng(2)
        symbols = np.clip(np.rint(rng.normal(1000, 3, size=20000)), 0, 2000).astype(np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_sparse_alphabet_with_gaps(self, coder):
        symbols = np.array([0, 1000, 0, 1000, 5, 0, 1000], dtype=np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_various_integer_dtypes(self, coder):
        for dtype in (np.int16, np.int32, np.uint16, np.int64):
            symbols = np.arange(50, dtype=dtype)
            np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols.astype(np.int64))


class TestCompression:
    def test_skewed_data_compresses_well(self, coder):
        rng = np.random.default_rng(3)
        symbols = np.where(rng.random(50_000) < 0.95, 10, rng.integers(0, 20, 50_000))
        encoded = coder.encode(symbols)
        # ~0.5 bits/symbol entropy; int64 raw would be 400 KB
        assert len(encoded) < 50_000 * 2 / 8 + 1000

    def test_negative_symbols_rejected(self, coder):
        with pytest.raises(ValueError):
            coder.encode(np.array([1, -2, 3]))

    def test_code_lengths_bounded(self, coder):
        # extremely skewed frequencies would build very deep trees without clamping
        rng = np.random.default_rng(4)
        counts = (2 ** np.arange(24)).astype(np.int64)
        symbols = np.repeat(np.arange(24), np.minimum(counts, 5000))
        rng.shuffle(symbols)
        decoded = coder.decode(coder.encode(symbols))
        np.testing.assert_array_equal(np.sort(decoded), np.sort(symbols))

    def test_decode_with_table_alias(self, coder):
        symbols = np.array([1, 2, 3, 1, 2, 1], dtype=np.int64)
        payload = coder.encode(symbols)
        np.testing.assert_array_equal(coder.decode_with_table(payload), symbols)

    def test_max_code_length_constant(self):
        assert 8 <= MAX_CODE_LENGTH <= 24

"""Transport service: encode → transfer → decode of one client's update.

Wraps what used to be ``fl/simulation.py::_ship_update_task`` behind a
:class:`Transport` interface so the round engine can swap the simulated link
for a real one (gRPC, MPI) without touching scheduling or aggregation.  The
task function stays module-level over an explicit picklable argument struct —
the PR-4 contract that lets the ``process`` backend ship it to a GIL-free
worker — and :class:`SimulatedTransport` additionally offers an asyncio path
where the simulated delay becomes an ``await`` instead of a pool-blocking
sleep, so one thread can hold many uplinks in flight at once.

The uncompressed byte count of an update is computed analytically from array
sizes (:func:`repro.utils.serialization.packed_arrays_nbytes`); the historic
path re-encoded the entire state through ``RawUpdateCodec`` per client per
round just to measure ``len()`` of bytes it then threw away.

Two opt-in wire refinements (both bit-identical to the defaults):

* ``streaming=True`` decodes each update through the codec's incremental
  :meth:`~repro.fl.codec.UpdateCodec.stream_decoder`, fed packet by packet on
  the link's analytic arrival schedule, so Eqn. 1's ``t_D`` overlaps ``S'/B``;
  the measured overlap is reported on ``ShipResult.decode_overlap_seconds``.
* On backends with the ``pickles_arguments`` trait, ``ship_batch`` moves each
  task's tensors through a :class:`~repro.utils.parallel.SharedMemoryArena`
  segment instead of pickling the buffers into the task.
"""

from __future__ import annotations

import abc
import asyncio
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.network import NetworkModel
from repro.fl.codec import UpdateCodec
from repro.utils.parallel import (ArenaHandle, ExecutionBackend,
                                  SharedMemoryArena, get_backend)
from repro.utils.serialization import packed_arrays_nbytes

__all__ = ["ShipTask", "ShipResult", "ship_update_task", "Transport",
           "SimulatedTransport", "DEFAULT_PACKET_BYTES"]

from repro.core.pipeline import FedSZReport

#: simulated wire segment size for the streaming decode path; small enough
#: that a multi-chunk Huffman stream spans many packets, large enough that
#: per-packet bookkeeping stays negligible against decode work
DEFAULT_PACKET_BYTES = 64 * 1024


@dataclass
class ShipTask:
    """Explicit picklable argument struct for :func:`ship_update_task`."""

    client_id: int
    state: dict[str, np.ndarray]
    codec: UpdateCodec
    network: NetworkModel
    #: reported transfer time is multiplied by this (1.0 = not a straggler)
    straggler_slowdown: float = 1.0
    #: retain the encoded payload on the result (journaling needs the bytes
    #: back; everyone else keeps memory flat by dropping them)
    keep_payload: bool = False
    #: decode through the codec's incremental stream decoder, paced by the
    #: link's analytic packet schedule, so decode time hides inside transfer
    #: time (bit-identical outputs either way)
    streaming: bool = False
    #: simulated wire segment size used when ``streaming`` is set
    packet_bytes: int = DEFAULT_PACKET_BYTES
    #: when set, ``state`` is empty and the tensors live in a shared-memory
    #: arena segment — the worker attaches instead of unpickling the buffers
    #: (only used on backends with the ``pickles_arguments`` trait)
    state_handle: "ArenaHandle | None" = None


@dataclass
class ShipResult:
    """What one client's encode → transfer → decode stage hands back."""

    client_id: int
    payload_bytes: int
    raw_bytes: int
    encode_seconds: float
    transfer_seconds: float
    decode_seconds: float
    state: dict[str, np.ndarray]
    report: "FedSZReport | None"
    #: the encoded payload itself, only when ``ShipTask.keep_payload`` was set
    payload: "bytes | None" = None
    #: streaming path only: the portion of ``decode_seconds`` that the busy
    #: model places *before* the last byte's arrival — decode work hidden
    #: inside the transfer window (``None`` on the batch decode path)
    decode_overlap_seconds: "float | None" = None


def _encode(task: ShipTask) -> tuple[bytes, "FedSZReport | None", float, int, float]:
    """Encode phase: payload, report, encode wall time, raw bytes, transfer time."""
    start = time.perf_counter()
    payload, report = task.codec.encode_with_report(task.state)
    encode_seconds = time.perf_counter() - start
    # the uncompressed size is a pure function of the arrays' dtypes/shapes
    # and key names — no need to serialize the whole state to measure it
    raw_bytes = packed_arrays_nbytes(task.state)
    transfer_seconds = task.network.transfer_time(len(payload)) * task.straggler_slowdown
    return payload, report, encode_seconds, raw_bytes, transfer_seconds


def _decode(task: ShipTask, payload: bytes) -> tuple[dict[str, np.ndarray], float]:
    """Decode phase: server-side state and decode wall time."""
    start = time.perf_counter()
    state = task.codec.decode(payload)
    return state, time.perf_counter() - start


def _result(task: ShipTask, payload: bytes, report, encode_seconds: float,
            raw_bytes: int, transfer_seconds: float,
            state: dict[str, np.ndarray], decode_seconds: float,
            decode_overlap_seconds: "float | None" = None) -> ShipResult:
    return ShipResult(client_id=task.client_id, payload_bytes=len(payload),
                      raw_bytes=raw_bytes, encode_seconds=encode_seconds,
                      transfer_seconds=transfer_seconds,
                      decode_seconds=decode_seconds, state=state, report=report,
                      payload=payload if task.keep_payload else None,
                      decode_overlap_seconds=decode_overlap_seconds)


def _stream_decode(task: ShipTask, payload: bytes):
    """Streaming decode of one payload against its packet-arrival schedule.

    Generator protocol: yields the simulated delay to wait before each packet
    (only when the link injects real delays — the sync driver sleeps it, the
    asyncio driver awaits it) and *returns* ``(state, decode_seconds,
    overlap_seconds)``.

    The overlap accounting is a busy-time model over the analytic schedule:
    packet ``i`` starts decoding no earlier than its arrival and no earlier
    than packet ``i-1`` finished, and ``finish()`` runs after the last packet.
    ``overlap_seconds`` is the decode compute that fits before the last byte's
    arrival — the part of Eqn. 1's ``t_D`` hidden inside ``S'/B``.  Every
    recorded quantity is analytic or per-call wall time, never a function of
    scheduling, so pooled and async drivers report identical semantics.
    """
    decoder = task.codec.stream_decoder()
    schedule = task.network.packet_arrivals(len(payload), task.packet_bytes,
                                            task.straggler_slowdown)
    view = memoryview(payload)
    busy_end = 0.0
    total = 0.0
    pos = 0
    wall_start = time.perf_counter()
    for end, arrival in schedule:
        if task.network.simulate_delay:
            yield max(0.0, arrival - (time.perf_counter() - wall_start))
        start = time.perf_counter()
        decoder.feed(view[pos:end])
        elapsed = time.perf_counter() - start
        pos = end
        total += elapsed
        busy_end = max(busy_end, arrival) + elapsed
    start = time.perf_counter()
    state, _ = decoder.finish()
    elapsed = time.perf_counter() - start
    total += elapsed
    # decode work the transfer could not hide: everything past the last byte
    residual = busy_end + elapsed - schedule[-1][1]
    return state, total, max(0.0, total - residual)


def _run_stream_decode(task: ShipTask, payload: bytes):
    """Drive :func:`_stream_decode` synchronously (sleeping the delays)."""
    steps = _stream_decode(task, payload)
    try:
        while True:
            delay = next(steps)
            if delay > 0:
                time.sleep(delay)
    except StopIteration as stop:
        return stop.value


async def _run_stream_decode_async(task: ShipTask, payload: bytes):
    """Drive :func:`_stream_decode` on the event loop (awaiting the delays)."""
    steps = _stream_decode(task, payload)
    try:
        while True:
            # awaiting even a zero delay yields, so other uplinks' packets
            # interleave with this decode exactly as on a real wire
            await asyncio.sleep(next(steps))
    except StopIteration as stop:
        return stop.value


def ship_update_task(task: ShipTask) -> ShipResult:
    """Encode, transfer, and decode one client's update.

    Runs per client on the execution backend so that simulated network delays
    (``simulate_delay=True``, the paper's MPI-delay-injection methodology)
    overlap across clients instead of sleeping serially.  Module-level with an
    explicit argument struct so the process backend can ship it to a GIL-free
    worker; per-client compression statistics come from the codec's per-call
    reporting API, so they stay accurate at any worker count on any backend.

    With ``task.streaming`` the decode runs through the codec's incremental
    stream decoder paced by the link's packet schedule — same decoded bytes,
    same recorded ``transfer_seconds``, plus the measured decode/transfer
    overlap.  With ``task.state_handle`` the tensors are read from a
    shared-memory arena instead of the (empty) pickled ``state``.
    """
    if task.state_handle is not None:
        view = task.state_handle.open()
        try:
            resolved = replace(task, state=view.arrays(), state_handle=None)
            result = ship_update_task(resolved)
            del resolved
        finally:
            try:
                view.close()
            except BufferError:
                # a propagating exception's traceback still pins the arena
                # views; the attachment dies with the worker process, and the
                # segment itself is unlinked by its owning transport
                pass
        return result
    payload, report, encode_seconds, raw_bytes, transfer_seconds = _encode(task)
    if task.streaming:
        state, decode_seconds, overlap = _run_stream_decode(task, payload)
        return _result(task, payload, report, encode_seconds, raw_bytes,
                       transfer_seconds, state, decode_seconds, overlap)
    if task.network.simulate_delay:
        time.sleep(transfer_seconds)
    state, decode_seconds = _decode(task, payload)
    return _result(task, payload, report, encode_seconds, raw_bytes,
                   transfer_seconds, state, decode_seconds)


class Transport(abc.ABC):
    """How an encoded update crosses the network to the aggregating server."""

    name: str = "base"

    @abc.abstractmethod
    def ship(self, task: ShipTask) -> ShipResult:
        """Move one client's update end to end; returns the decoded result."""

    def ship_batch(self, tasks: "list[ShipTask]") -> "list[ShipResult]":
        """Ship several updates; default is sequential :meth:`ship` calls."""
        return [self.ship(task) for task in tasks]

    async def ship_async(self, task: ShipTask) -> ShipResult:
        """Asyncio variant; default delegates to the synchronous path."""
        return self.ship(task)


class SimulatedTransport(Transport):
    """The in-process simulated link the paper's methodology models.

    ``ship_batch`` fans tasks over the configured
    :class:`~repro.utils.parallel.ExecutionBackend` pool (the historic round
    engine path, bit-identical at any worker count); :meth:`ship_async` is the
    overlapped-uplink path, where the simulated transfer delay is an
    ``asyncio.sleep`` await — many in-flight uplinks share one thread, and the
    round's wall clock approaches ``Σ codec time + max transfer`` instead of
    the serial sum.  Both paths produce identical :class:`ShipResult` values:
    every recorded quantity is analytic or per-task wall time, never a
    function of scheduling.
    """

    name = "simulated"

    def __init__(self, backend: "str | ExecutionBackend" = "thread",
                 max_workers: "int | None" = 1, streaming: bool = False,
                 packet_bytes: int = DEFAULT_PACKET_BYTES) -> None:
        if packet_bytes < 1:
            raise ValueError("packet_bytes must be >= 1")
        self.backend = get_backend(backend)
        self.max_workers = max_workers
        self.streaming = bool(streaming)
        self.packet_bytes = int(packet_bytes)

    def _configure(self, task: ShipTask) -> ShipTask:
        """Stamp this transport's wire knobs onto a task (task wins if set)."""
        if self.streaming and not task.streaming:
            task = replace(task, streaming=True, packet_bytes=self.packet_bytes)
        return task

    def ship(self, task: ShipTask) -> ShipResult:
        return ship_update_task(self._configure(task))

    def ship_batch(self, tasks: "list[ShipTask]") -> "list[ShipResult]":
        tasks = [self._configure(task) for task in tasks]
        if not self.backend.pickles_arguments:
            return self.backend.map(ship_update_task, tasks, workers=self.max_workers)
        # pickling backend: ship tensor buffers through one shared-memory
        # arena per task instead of serializing them into the task pickle;
        # the transport owns the segments and destroys them once every
        # result (whose decoded state travels back by value) has returned
        arenas: "list[SharedMemoryArena]" = []
        try:
            shipped = []
            for task in tasks:
                arena = SharedMemoryArena(task.state)
                arenas.append(arena)
                shipped.append(replace(task, state={}, state_handle=arena.handle))
            return self.backend.map(ship_update_task, shipped, workers=self.max_workers)
        finally:
            for arena in arenas:
                arena.close()

    async def ship_async(self, task: ShipTask) -> ShipResult:
        task = self._configure(task)
        payload, report, encode_seconds, raw_bytes, transfer_seconds = _encode(task)
        if task.streaming:
            # per-packet awaits: the event loop runs other uplinks between
            # this client's packets, and decode rides inside the gaps
            state, decode_seconds, overlap = \
                await _run_stream_decode_async(task, payload)
            return _result(task, payload, report, encode_seconds, raw_bytes,
                           transfer_seconds, state, decode_seconds, overlap)
        if task.network.simulate_delay:
            # the await is the whole point: the event loop runs other uplinks
            # (their codec work and their delays) while this transfer is in
            # flight, so delays overlap without a worker pool
            await asyncio.sleep(transfer_seconds)
        state, decode_seconds = _decode(task, payload)
        return _result(task, payload, report, encode_seconds, raw_bytes,
                       transfer_seconds, state, decode_seconds)

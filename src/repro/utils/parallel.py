"""Generic thread-pool mapping helpers shared across the code base.

Both the federated round engine (training / encoding / decoding several
clients per round) and the chunked Huffman entropy stage (decoding independent
bitstream chunks) fan work out over a :class:`ThreadPoolExecutor`.  The knobs
are uniform everywhere:

* ``max_workers=1`` — strictly sequential execution, bit-identical to a plain
  ``for`` loop (the deterministic reference the test suite pins the parallel
  paths against).
* ``max_workers=N`` — up to ``N`` items in flight at once.
* ``max_workers=None`` — let the executor pick (``min(32, cpu_count + 4)``).

This module is dependency-free on purpose: it sits below both
``repro.fl`` and ``repro.compressors`` in the layering, so either side can
import it without cycles.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["map_parallel", "resolve_worker_count"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_worker_count(max_workers: int | None, n_items: int) -> int:
    """Effective number of worker threads for ``n_items`` units of work.

    ``None`` resolves to the :class:`ThreadPoolExecutor` default of
    ``min(32, cpu_count + 4)``; the result is always clamped to ``n_items``
    (never spawn idle threads) and to a floor of 1.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    if max_workers is None:
        max_workers = min(32, (os.cpu_count() or 1) + 4)
    return max(1, min(max_workers, n_items))


def map_parallel(func: Callable[[T], R], items: Sequence[T], max_workers: int | None = None) -> list[R]:
    """Apply ``func`` to every item using a thread pool, preserving order.

    With ``max_workers=1`` (or a single item) the call degenerates to a plain
    sequential map, which keeps the behaviour deterministic for tests.  An
    exception raised by any ``func`` call propagates to the caller either way.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_worker_count(max_workers, len(items))
    if workers == 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(func, items))

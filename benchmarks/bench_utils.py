"""Shared workloads, scaling knobs, and result persistence for the benchmarks.

Every benchmark regenerates one of the paper's tables or figures as plain text
(and a JSON record) under ``benchmarks/results/``.  Two scales are supported
via the ``REPRO_BENCH_SCALE`` environment variable:

* ``quick`` (default) — reduced grids and small synthetic datasets so the whole
  suite finishes in a few minutes on a laptop CPU,
* ``full`` — the complete grids the paper reports (hours of CPU time).

The *shape* of every result (who wins, by roughly what factor, where crossovers
fall) is the reproducible quantity at either scale; EXPERIMENTS.md records the
quick-scale numbers next to the paper's.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.data import make_dataset, train_test_split
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Paper models and datasets in the order the tables list them.
PAPER_MODELS = ("alexnet", "mobilenetv2", "resnet50")
PAPER_DATASETS = ("cifar10", "caltech101", "fmnist")


def current_scale() -> str:
    """Current benchmark scale (``quick`` or ``full``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return scale if scale in ("quick", "full") else "quick"


def is_quick() -> bool:
    """True when running the reduced quick-scale grids."""
    return current_scale() == "quick"


def fl_settings() -> dict:
    """Federated-run sizes for the current scale."""
    if is_quick():
        return {
            "n_samples": 480,
            "image_size": 16,
            "n_clients": 4,
            "rounds": 6,
            "batch_size": 32,
            "lr": 0.15,
            "model": "simplecnn",
        }
    return {
        "n_samples": 4096,
        "image_size": 32,
        "n_clients": 4,
        "rounds": 10,
        "batch_size": 32,
        "lr": 0.05,
        "model": "alexnet",
    }


def dataset_channels(dataset: str) -> int:
    """Input channels of the named dataset."""
    return 1 if dataset == "fmnist" else 3


def build_paper_model(name: str, dataset: str = "cifar10", image_size: int = 32, seed: int = 0,
                      **model_kwargs: object):
    """Instantiate one of the paper's models for the named dataset's input shape.

    ``model_kwargs`` are forwarded to the architecture (e.g. ``width`` /
    ``blocks_per_stage`` to rebuild a network at the paper's full size rather
    than this repo's CPU-scaled default).
    """
    num_classes = 101 if dataset == "caltech101" else 10
    return build_model(name, num_classes=num_classes, in_channels=dataset_channels(dataset),
                       image_size=image_size, seed=seed, **model_kwargs)


def trained_like_state(name: str, dataset: str = "cifar10", seed: int = 0,
                       **model_kwargs: object) -> dict[str, np.ndarray]:
    """A model state dict with trained-looking statistics.

    Freshly initialized weights are uniform (He init); trained networks
    concentrate around zero with heavy tails, which is what makes them
    compressible in the paper.  A light multiplicative shaping reproduces that
    without running a long training job.  Biases and BatchNorm running
    statistics are filled with plausible non-zero values so the lossless
    (metadata) partition carries realistic float data as well.
    """
    model = build_paper_model(name, dataset, seed=seed, **model_kwargs)
    rng = np.random.default_rng(seed + 17)
    state = model.state_dict()
    for key, value in state.items():
        if "weight" in key and value.size > 1024:
            shaped = value * np.abs(rng.standard_normal(value.shape)) ** 1.5
            state[key] = shaped.astype(np.float32)
        elif "running_mean" in key:
            state[key] = rng.normal(0.0, 0.3, value.shape).astype(np.float32)
        elif "running_var" in key:
            state[key] = np.abs(rng.normal(1.0, 0.4, value.shape)).astype(np.float32)
        elif "num_batches_tracked" in key:
            state[key] = np.full(value.shape, 100.0, dtype=np.float32)
        elif "bias" in key:
            state[key] = rng.normal(0.0, 0.02, value.shape).astype(np.float32)
    return state


def quick_fl_data(dataset: str = "cifar10", seed: int = 1):
    """Small train/test split for FL benches at the current scale."""
    cfg = fl_settings()
    ds = make_dataset(dataset, n_samples=cfg["n_samples"], image_size=cfg["image_size"], seed=seed)
    return train_test_split(ds, test_fraction=0.25, seed=seed + 1)


def save_results(name: str, table: Table | list[Table], record: ExperimentRecord | None = None) -> None:
    """Write the rendered table(s) and the JSON record under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    tables = table if isinstance(table, list) else [table]
    text = "\n\n".join(t.render() for t in tables) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    if record is not None:
        (RESULTS_DIR / f"{name}.json").write_text(record.to_json() + "\n")
    print()
    print(text)

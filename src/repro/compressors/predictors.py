"""Prediction stages used by the SZ2- and SZ3-style compressors.

All predictors operate on 1-D arrays because FedSZ flattens every model tensor
before compression (Algorithm 1 of the paper).  Three predictor families are
provided:

* :func:`block_mean_predictor` — the blockwise constant predictor used as this
  reproduction's vectorizable stand-in for SZ2's Lorenzo path (the true Lorenzo
  predictor consumes previously *decompressed* neighbours and is inherently
  sequential; a per-block constant predictor preserves the locality idea while
  remaining a single NumPy pass).
* :func:`block_regression_predictor` — SZ2's per-block linear regression on the
  element index.
* :class:`InterpolationPredictor` — SZ3's level-by-level linear/cubic
  interpolation predictor on a dyadic grid; each level predicts the midpoints
  of the previous (already reconstructed) level, so the whole pass is
  vectorized per level while still predicting from reconstructed values.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "block_mean_predictor",
    "block_regression_predictor",
    "block_pad",
    "InterpolationPredictor",
]


def block_pad(data: np.ndarray, block_size: int) -> tuple[np.ndarray, int]:
    """Pad ``data`` with edge values to a multiple of ``block_size``.

    Returns the padded 2-D view of shape ``(n_blocks, block_size)`` and the
    original length so callers can trim after reconstruction.
    """
    data = np.asarray(data, dtype=np.float64).ravel()
    n = data.size
    n_blocks = (n + block_size - 1) // block_size if n else 0
    padded_len = n_blocks * block_size
    if padded_len != n:
        pad_value = data[-1] if n else 0.0
        data = np.concatenate([data, np.full(padded_len - n, pad_value)])
    return data.reshape(n_blocks, block_size), n


def block_mean_predictor(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Predict every element of a block by the block mean.

    Returns ``(predictions, coefficients)`` where coefficients has shape
    ``(n_blocks, 1)`` holding the means (stored in the payload so the decoder
    reproduces the same predictions).
    """
    means = blocks.mean(axis=1, keepdims=True)
    predictions = np.broadcast_to(means, blocks.shape)
    return predictions, means


def block_regression_predictor(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fit ``y = a + b * i`` per block (least squares on the element index).

    Returns ``(predictions, coefficients)`` with coefficients of shape
    ``(n_blocks, 2)`` storing ``(a, b)`` per block.
    """
    n_blocks, block_size = blocks.shape
    idx = np.arange(block_size, dtype=np.float64)
    idx_mean = idx.mean()
    idx_var = float(((idx - idx_mean) ** 2).sum())
    y_mean = blocks.mean(axis=1)
    if idx_var == 0.0:
        slope = np.zeros(n_blocks)
    else:
        slope = ((blocks - y_mean[:, None]) * (idx - idx_mean)[None, :]).sum(axis=1) / idx_var
    intercept = y_mean - slope * idx_mean
    predictions = intercept[:, None] + slope[:, None] * idx[None, :]
    coefficients = np.stack([intercept, slope], axis=1)
    return predictions, coefficients


def predictions_from_regression(coefficients: np.ndarray, block_size: int) -> np.ndarray:
    """Rebuild regression predictions from stored ``(a, b)`` coefficients."""
    idx = np.arange(block_size, dtype=np.float64)
    return coefficients[:, 0:1] + coefficients[:, 1:2] * idx[None, :]


class InterpolationPredictor:
    """SZ3-style dyadic interpolation predictor for 1-D data.

    The data is viewed as a dyadic hierarchy: level 0 holds anchor points with
    stride ``2**n_levels``; each finer level predicts the new midpoints by
    linear interpolation of the two enclosing points of the coarser
    (reconstructed) level.  :meth:`levels` yields, per level, the indices of
    the points introduced at that level and the indices of their left/right
    parents, which both the compressor and decompressor iterate in the same
    order.
    """

    def __init__(self, n: int, max_levels: int = 16) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = int(n)
        levels = 0
        while (1 << (levels + 1)) < max(self.n, 1) and levels < max_levels:
            levels += 1
        self.n_levels = levels
        self.anchor_stride = 1 << levels

    def anchor_indices(self) -> np.ndarray:
        """Indices stored verbatim (the coarsest grid, always includes 0)."""
        if self.n == 0:
            return np.zeros(0, dtype=np.int64)
        return np.arange(0, self.n, self.anchor_stride, dtype=np.int64)

    def levels(self):
        """Yield ``(new_idx, left_idx, right_idx)`` per refinement level.

        When the right parent would fall past the end of the array it does not
        exist on the coarser grid, so the left parent is reused (constant
        prediction at the boundary).
        """
        if self.n == 0:
            return
        stride = self.anchor_stride
        while stride > 1:
            half = stride // 2
            new_idx = np.arange(half, self.n, stride, dtype=np.int64)
            if new_idx.size:
                left_idx = new_idx - half
                right_candidate = new_idx + half
                right_idx = np.where(right_candidate < self.n, right_candidate, left_idx)
                yield new_idx, left_idx, right_idx
            stride = half

    @staticmethod
    def predict(values: np.ndarray, new_idx: np.ndarray, left_idx: np.ndarray,
                right_idx: np.ndarray) -> np.ndarray:
        """Linear interpolation of the midpoints from reconstructed parents."""
        left = values[left_idx]
        right = values[right_idx]
        same = right_idx == left_idx
        # halve-then-add: `0.5 * (left + right)` overflows to inf when both
        # parents sit near the float64 maximum; this form stays finite for
        # every finite input pair
        pred = 0.5 * left + 0.5 * right
        if np.any(same):
            pred = np.where(same, left, pred)
        return pred

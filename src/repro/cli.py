"""Command-line interface for the FedSZ reproduction.

Three subcommands cover the library's main workflows::

    python -m repro compress --model alexnet --bound 1e-2
        Compress one model update with FedSZ and print ratio / runtime / error.

    python -m repro simulate --model simplecnn --rounds 5 --bound 1e-2
        Run a small FedAvg simulation with and without FedSZ and print the
        per-round accuracy and upload volume.

    python -m repro select --model resnet50 --bandwidth 10
        Profile the candidate EBLCs on the model's weights (Problem 1) and
        print the recommended compressor plus the Eqn.-1 crossover bandwidth.

Every command prints plain text to stdout and returns a process exit code of 0
on success, so the CLI is scriptable from shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core import (
    FedSZCompressor,
    FedSZConfig,
    NetworkModel,
    crossover_bandwidth,
    make_client_networks,
    select_compressor,
)
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec
from repro.nn import available_models, build_model, count_parameters
from repro.utils.parallel import available_backends, get_backend
from repro.utils.timer import format_bytes, format_seconds

__all__ = ["main", "build_parser"]


def _participation_value(text: str) -> "float | int":
    """Parse ``--participation``: ``(0, 1]`` floats are fractions, ints > 1 counts."""
    try:
        if text.strip().lstrip("+").isdigit():
            count = int(text)
            if count > 1:
                return count
            value = float(count)
        else:
            value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a fraction in (0, 1] or a client count, got {text!r}") from None
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"participation fraction must be in (0, 1], got {text!r}")
    return value


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """The execution backend every fan-out stage runs on."""
    parser.add_argument("--backend", default=FedSZConfig.backend,
                        choices=available_backends(),
                        help="execution backend for all parallel stages "
                             "(entropy decode, per-tensor pipeline, round "
                             "engine): serial = the sequential reference, "
                             "thread = GIL-sharing pool, process = GIL-free "
                             "worker processes; bitstreams and round results "
                             "are identical across backends")


def _add_entropy_arguments(parser: argparse.ArgumentParser) -> None:
    """Knobs of the SZ2/SZ3 chunked Huffman entropy stage."""
    parser.add_argument("--entropy-chunk", type=int, default=FedSZConfig.entropy_chunk,
                        help="max symbols per independently-decodable Huffman chunk")
    parser.add_argument("--entropy-workers", type=int, default=FedSZConfig.entropy_workers,
                        help="Huffman decode threads (1 = the sequential reference "
                             "decoder, >1 = banded vectorized decoding)")


def _add_plan_arguments(parser: argparse.ArgumentParser) -> None:
    """Knobs of the plan-driven per-tensor compression pipeline."""
    parser.add_argument("--policy", default=FedSZConfig.policy,
                        help="plan policy assigning each lossy tensor its codec and "
                             "bound: uniform, size-adaptive, mixed-codec, or "
                             "profiled (measures the candidate grid and picks the "
                             "Eqn.-1 optimum for the --bandwidth link)")
    parser.add_argument("--pipeline-workers", type=int, default=FedSZConfig.pipeline_workers,
                        help="per-tensor compress/decompress threads (1 = the "
                             "sequential reference path; bitstreams are "
                             "bit-identical at any count)")
    parser.add_argument("--small-tensor-codec", default="szx",
                        help="codec for tensors below the mixed-codec size cutoff "
                             "(only used with --policy mixed-codec)")
    parser.add_argument("--profile-cache", default=None, metavar="PATH",
                        help="persist the profiled policy's measurement cache "
                             "to this JSON file (format in FORMATS.md): warm "
                             "runs reuse measurements until the sampled "
                             "statistics drift; requires --policy profiled")


def _fedsz_config(args: argparse.Namespace, **extra) -> FedSZConfig:
    """Build the FedSZConfig shared by the compress/simulate commands.

    Raises ValueError with a readable message for unknown codec or policy
    names and out-of-range knobs; the command wrappers turn that into a
    one-line CLI error.
    """
    policy_options = dict(extra.pop("policy_options", {}))
    profile_cache = getattr(args, "profile_cache", None)
    if profile_cache is not None and args.policy != "profiled":
        raise ValueError("--profile-cache requires --policy profiled "
                         "(only the profiled policy measures anything)")
    if args.policy == "mixed-codec":
        policy_options.setdefault("small_codec", args.small_tensor_codec)
    elif args.policy == "profiled":
        # profile against the link the command models; the analytic cost model
        # keeps CLI runs reproducible on any host
        policy_options.setdefault("bandwidth_mbps", args.bandwidth)
        policy_options.setdefault("max_bound", args.bound)
        if profile_cache is not None:
            policy_options.setdefault("profile_cache", profile_cache)
    return FedSZConfig(error_bound=args.bound, entropy_chunk=args.entropy_chunk,
                       entropy_workers=args.entropy_workers, policy=args.policy,
                       pipeline_workers=args.pipeline_workers,
                       backend=args.backend,
                       policy_options=policy_options, **extra)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress one model update with FedSZ")
    compress.add_argument("--model", default="alexnet", choices=available_models())
    compress.add_argument("--bound", type=float, default=1e-2, help="relative error bound")
    compress.add_argument("--compressor", default="sz2",
                          help="lossy EBLC for large weight tensors (sz2, sz3, szx, zfp)")
    compress.add_argument("--lossless", default="blosclz", help="lossless codec for metadata")
    compress.add_argument("--bandwidth", type=float, default=10.0,
                          help="uplink Mbps the profiled policy plans against")
    _add_entropy_arguments(compress)
    _add_plan_arguments(compress)
    _add_backend_argument(compress)

    simulate = sub.add_parser("simulate", help="run a small FedAvg simulation")
    simulate.add_argument("--model", default="simplecnn", choices=available_models())
    simulate.add_argument("--dataset", default="cifar10", choices=("cifar10", "fmnist", "caltech101"))
    simulate.add_argument("--rounds", type=int, default=5)
    simulate.add_argument("--clients", type=int, default=4)
    simulate.add_argument("--samples", type=int, default=480)
    simulate.add_argument("--image-size", type=int, default=16)
    simulate.add_argument("--bound", type=float, default=1e-2)
    simulate.add_argument("--bandwidth", type=float, default=10.0, help="uplink Mbps")
    simulate.add_argument("--bandwidth-spread", type=float, default=1.0,
                          help="heterogeneous fleet: per-client bandwidths drawn "
                               "log-uniformly from [bandwidth/spread, "
                               "bandwidth*spread] (1.0 = identical links); with "
                               "--policy profiled every client plans for its own "
                               "link")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--workers", type=int, default=1,
                          help="worker-pool size for per-client train/encode/decode "
                               "on the --backend pool (1 = the bit-reproducible "
                               "sequential path)")
    simulate.add_argument("--participation", type=_participation_value, default=1.0,
                          help="clients sampled per round: fraction in (0, 1] or integer count")
    simulate.add_argument("--straggler", type=float, default=0.0,
                          help="per-round probability that a client straggles (4x slowdown)")
    simulate.add_argument("--dropout", type=float, default=0.0,
                          help="per-round probability that a sampled client drops out")
    simulate.add_argument("--tree-fanout", type=int, default=0,
                          help="aggregate through a tree of this fan-in instead "
                               "of flat FedAvg (0 = flat; >= 2 = tree, "
                               "bit-identical result)")
    simulate.add_argument("--journal-dir", default=None,
                          help="make rounds durable: journal every round to this "
                               "directory (per-codec subdirectories) so an "
                               "interrupted run can be resumed with --resume")
    simulate.add_argument("--resume", action="store_true",
                          help="resume an interrupted run from --journal-dir "
                               "instead of starting fresh")
    simulate.add_argument("--streaming", action="store_true",
                          help="decode updates incrementally as simulated "
                               "packets arrive, overlapping decompression "
                               "with the transfer (bit-identical results)")
    simulate.add_argument("--streaming-encode", action="store_true",
                          help="encode updates incrementally and start the "
                               "simulated transfer at the first ready payload "
                               "piece, overlapping compression with the "
                               "transfer (bit-identical results)")
    simulate.add_argument("--delta", action="store_true",
                          help="ship error-feedback residuals against the "
                               "broadcast state (v5 delta frames) on the "
                               "fedsz half of the comparison: clients with a "
                               "warm reference send state - reference instead "
                               "of the full state, degrading to full-state "
                               "frames after any gap")
    simulate.add_argument("--no-delta-codebooks", action="store_true",
                          help="ablation for --delta: keep delta framing and "
                               "error feedback but rebuild Huffman code "
                               "tables every round instead of reusing "
                               "per-tensor codebooks while drift stays low")
    simulate.add_argument("--aggregate-on-arrival", action="store_true",
                          help="fold each decoded update into the running "
                               "aggregate as its ship completes instead of "
                               "holding every update until the round ends "
                               "(bit-identical results, O(workers) server "
                               "residency)")
    _add_entropy_arguments(simulate)
    _add_plan_arguments(simulate)
    _add_backend_argument(simulate)

    select = sub.add_parser("select", help="profile EBLC candidates on a model's weights")
    select.add_argument("--model", default="resnet50", choices=available_models())
    select.add_argument("--bandwidth", type=float, default=10.0, help="uplink Mbps")
    select.add_argument("--bounds", type=float, nargs="+", default=[1e-2, 1e-3])
    return parser


# ---------------------------------------------------------------------------
def _cmd_compress(args: argparse.Namespace) -> int:
    model = build_model(args.model, num_classes=10, in_channels=3, image_size=32)
    state = model.state_dict()
    try:
        # unknown codec/policy names surface as ValueError when the registries
        # resolve them; keep construction inside the guard for a one-line error
        config = _fedsz_config(args, lossy_compressor=args.compressor,
                               lossless_codec=args.lossless)
        fedsz = FedSZCompressor(config)
    except ValueError as exc:
        print(f"repro compress: error: {exc}", file=sys.stderr)
        return 2
    # one long-lived pool serves the whole roundtrip (pipeline fan-out,
    # Huffman bands, profiler grid) instead of one pool per stage
    with get_backend(config.backend).persistent(config.pipeline_workers):
        payload, report = fedsz.compress_with_report(state)
        restored, decode_report = fedsz.decompress_with_report(payload)

    worst = max((float(np.max(np.abs(restored[k].astype(np.float64) - v.astype(np.float64))))
                 for k, v in state.items() if v.size), default=0.0)
    plan = fedsz.last_plan
    codecs = ", ".join(plan.codecs) if plan is not None and len(plan) else args.compressor
    print(f"model:            {args.model} ({count_parameters(model):,} parameters)")
    print(f"original update:  {format_bytes(report.original_bytes)}")
    print(f"FedSZ bitstream:  {format_bytes(len(payload))}  (ratio {report.ratio:.2f}x)")
    print(f"compress time:    {format_seconds(report.compress_seconds)}")
    print(f"decompress time:  {format_seconds(decode_report.decompress_seconds)}")
    print(f"plan:             {args.policy} policy, codecs: {codecs}")
    profiler = getattr(fedsz.policy, "profiler", None)
    if profiler is not None:
        info = profiler.cache_info()
        print(f"profile cache:    {info['hits']} hits / {info['misses']} misses "
              f"/ {info['drifts']} drifts")
    print(f"max abs error:    {worst:.3e}  (bound {args.bound:g} relative)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    dataset = make_dataset(args.dataset, n_samples=args.samples, image_size=args.image_size,
                           seed=args.seed)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=args.seed + 1)
    in_channels = 1 if args.dataset == "fmnist" else 3
    num_classes = 101 if args.dataset == "caltech101" else 10

    def factory():
        return build_model(args.model, num_classes=num_classes, in_channels=in_channels,
                           image_size=args.image_size, seed=0)

    network = NetworkModel(bandwidth_mbps=args.bandwidth)
    try:
        # codec construction resolves the policy and codec registries, so an
        # unknown name fails here with a one-line error instead of a traceback;
        # a heterogeneous fleet draws seeded per-client links around --bandwidth
        codecs = {"uncompressed": RawUpdateCodec(),
                  "fedsz": FedSZUpdateCodec(_fedsz_config(args))}
        networks = make_client_networks(args.clients, base=network,
                                        bandwidth_spread=args.bandwidth_spread,
                                        seed=args.seed) \
            if args.bandwidth_spread != 1.0 else None
    except ValueError as exc:
        print(f"repro simulate: error: {exc}", file=sys.stderr)
        return 2
    if args.resume and args.journal_dir is None:
        print("repro simulate: error: --resume requires --journal-dir", file=sys.stderr)
        return 2
    results = {}
    last_sims = {}
    for label, codec in codecs.items():
        # the command runs one simulation per codec, so each gets its own
        # journal subdirectory — both halves resume independently
        journal_dir = str(Path(args.journal_dir) / label) \
            if args.journal_dir is not None else None
        try:
            sim = FederatedSimulation(factory, train, test, n_clients=args.clients, codec=codec,
                                      network=network, networks=networks, lr=0.15,
                                      seed=args.seed + 2,
                                      max_workers=args.workers, participation=args.participation,
                                      dropout_prob=args.dropout, straggler_prob=args.straggler,
                                      backend=args.backend, tree_fanout=args.tree_fanout,
                                      journal_dir=journal_dir, resume=args.resume,
                                      streaming=args.streaming,
                                      streaming_encode=args.streaming_encode,
                                      aggregate_on_arrival=args.aggregate_on_arrival,
                                      delta=args.delta and label == "fedsz",
                                      delta_codebooks=not args.no_delta_codebooks)
        except ValueError as exc:
            # round-engine ranges that need cross-flag context (--participation
            # count vs --clients, --workers >= 1, probability ranges) plus
            # journal mismatches (wrong codec/seed/fleet for --resume)
            print(f"repro simulate: error: {exc}", file=sys.stderr)
            return 2
        results[label] = sim.run(args.rounds)
        last_sims[label] = sim
        accs = "  ".join(f"{a:.2%}" for a in results[label].accuracies)
        print(f"{label:>13}: {accs}")

    final_plans = results["fedsz"].rounds[-1].client_plans if results["fedsz"].rounds else {}
    if final_plans and args.bandwidth_spread != 1.0:
        print("\nper-client plans (final round):")
        fedsz_sim = last_sims["fedsz"]
        for cid in sorted(final_plans):
            plan = final_plans[cid]
            link = fedsz_sim.client_networks[cid]
            print(f"  client {cid}: {link.bandwidth_mbps:8.1f} Mbps -> "
                  f"codecs {', '.join(plan.codecs)}")
    profiler = last_sims["fedsz"].codec.profiler
    if profiler is not None:
        info = profiler.cache_info()
        print(f"profile cache:  {info['hits']} hits / {info['misses']} misses "
              f"/ {info['drifts']} drifts")

    raw, fedsz = results["uncompressed"], results["fedsz"]
    print(f"\nfinal accuracy: uncompressed {raw.final_accuracy:.2%} vs fedsz {fedsz.final_accuracy:.2%}")
    print(f"upload volume:  {format_bytes(raw.total_transmitted_bytes)} vs "
          f"{format_bytes(fedsz.total_transmitted_bytes)} "
          f"({raw.total_transmitted_bytes / max(fedsz.total_transmitted_bytes, 1):.2f}x reduction)")
    print(f"comm time @{args.bandwidth:g} Mbps: {format_seconds(raw.total_communication_seconds)} vs "
          f"{format_seconds(fedsz.total_communication_seconds)}")
    if args.streaming_encode:
        for label, result in results.items():
            streamed = [r for r in result.rounds
                        if r.mean_first_byte_seconds is not None]
            if not streamed:
                continue
            first_byte = float(np.mean([r.mean_first_byte_seconds for r in streamed]))
            hidden = float(np.mean([r.mean_encode_overlap_seconds for r in streamed]))
            scratch = max(r.peak_encode_scratch_bytes for r in streamed)
            print(f"encode overlap: {label}: first byte out after "
                  f"{format_seconds(first_byte)}, {format_seconds(hidden)} of "
                  f"encode hidden in the transfer window, peak scratch "
                  f"{format_bytes(scratch)}")
    if args.aggregate_on_arrival:
        residency = max((r.peak_update_residency or 0
                         for result in results.values() for r in result.rounds),
                        default=0)
        print(f"aggregate on arrival: peak resident decoded updates {residency} "
              f"(fleet size {args.clients})")
    if args.delta:
        rounds = fedsz.rounds
        shipped = sum(len(r.delta_clients) for r in rounds)
        degrades = sum(len(r.delta_degrades) for r in rounds)
        per_round = " ".join(str(len(r.delta_clients)) for r in rounds)
        print(f"delta shipping: {shipped} residual ships / {degrades} "
              f"full-state degrades (per round: {per_round})")
        cb = rounds[-1].codebook_cache if rounds else None
        if cb is not None:
            print(f"codebook cache: {cb['reuses']} reuses / {cb['drifts']} "
                  f"drifts / {cb['misses']} misses")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    model = build_model(args.model, num_classes=10, in_channels=3, image_size=32)
    state = model.state_dict()
    weights = np.concatenate([v.ravel() for k, v in state.items()
                              if "weight" in k and v.size > 1024])
    best, grid = select_compressor(weights, error_bounds=args.bounds,
                                   bandwidth_mbps=args.bandwidth)
    print(f"{'compressor':>10}  {'bound':>7}  {'ratio':>7}  {'compress':>10}  {'decompress':>10}  feasible")
    for entry in grid:
        print(f"{entry.compressor:>10}  {entry.error_bound:>7.0e}  {entry.ratio:>6.2f}x  "
              f"{format_seconds(entry.compress_seconds):>10}  "
              f"{format_seconds(entry.decompress_seconds):>10}  {entry.feasible}")
    ratio = best.ratio
    crossover = crossover_bandwidth(best.compress_seconds, best.decompress_seconds,
                                    weights.nbytes, weights.nbytes / ratio)
    print(f"\nrecommended: {best.compressor} at bound {best.error_bound:g} "
          f"(ratio {ratio:.2f}x); compression pays off below ~{crossover:,.0f} Mbps")
    return 0


_COMMANDS = {"compress": _cmd_compress, "simulate": _cmd_simulate, "select": _cmd_select}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())

"""Module base class with PyTorch-style ``state_dict`` semantics.

A :class:`Module` owns parameters (trainable arrays), buffers (non-trainable
state such as BatchNorm running statistics), and child modules.  ``state_dict``
flattens the whole tree into an ordered ``{dotted.name: ndarray}`` mapping —
the exact object FedSZ's Algorithm 1 partitions and compresses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Module", "Sequential"]


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- registration --------------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        """Attach a trainable parameter under ``name``."""
        self._parameters[name] = param
        return param

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        """Attach a non-trainable buffer (e.g. running statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        return self._buffers[name]

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` for this module and every descendant."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, Parameter)`` over the whole tree."""
        for mod_name, module in self.named_modules(prefix):
            for par_name, param in module._parameters.items():
                full = f"{mod_name}.{par_name}" if mod_name else par_name
                yield full, param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` over the whole tree."""
        for mod_name, module in self.named_modules(prefix):
            for buf_name, buf in module._buffers.items():
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                yield full, buf

    def parameters(self) -> list[Parameter]:
        """All parameters as a flat list (optimizer input)."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> list["Module"]:
        """All modules in the tree, including ``self``."""
        return [m for _, m in self.named_modules()]

    # -- state dict ------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Flatten parameters and buffers into ``{name: array copy}``.

        Parameter entries come first within each module, then buffers, matching
        the ordering PyTorch produces for the architectures used in the paper.
        """
        out: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for mod_name, module in self.named_modules():
            for par_name, param in module._parameters.items():
                full = f"{mod_name}.{par_name}" if mod_name else par_name
                out[full] = param.data.copy()
            for buf_name, buf in module._buffers.items():
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                out[full] = buf.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Copy arrays from ``state`` into the matching parameters/buffers."""
        own_params = dict(self.named_parameters())
        own_buffers = {name: (mod, buf_name)
                       for mod_name, mod in self.named_modules()
                       for buf_name in mod._buffers
                       for name in [f"{mod_name}.{buf_name}" if mod_name else buf_name]}
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name in own_params:
                target = own_params[name]
                if target.data.shape != np.shape(value):
                    raise ValueError(f"shape mismatch for {name}: {target.data.shape} vs {np.shape(value)}")
                target.data = np.asarray(value, dtype=np.float32).copy()
                target.grad = np.zeros_like(target.data)
            elif name in own_buffers:
                mod, buf_name = own_buffers[name]
                if mod._buffers[buf_name].shape != np.shape(value):
                    raise ValueError(f"shape mismatch for buffer {name}")
                mod._buffers[buf_name] = np.asarray(value, dtype=np.float32).copy()

    # -- training state ---------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Switch the whole tree between training and evaluation behaviour."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Shortcut for ``train(False)``."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Reset every parameter gradient in the tree."""
        for param in self.parameters():
            param.zero_grad()

    # -- compute ---------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the module output (subclasses override)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad`` (dL/d output) and return dL/d input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for idx, layer in enumerate(layers):
            self._modules[str(idx)] = layer

    def append(self, layer: Module) -> None:
        """Add a layer at the end of the container."""
        self._modules[str(len(self.layers))] = layer
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

"""Tests for the model architectures and their Table III profiles."""

import numpy as np
import pytest

from repro.nn import (
    CrossEntropyLoss,
    SGD,
    available_models,
    build_model,
    count_parameters,
    estimate_flops,
    model_profile,
    state_dict_nbytes,
)

PAPER_MODELS = ["alexnet", "mobilenetv2", "resnet50"]
ALL_MODELS = PAPER_MODELS + ["simplecnn", "mlp"]


class TestConstruction:
    def test_registry_contains_paper_models(self):
        assert set(available_models()) >= set(ALL_MODELS)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("vgg16")

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_forward_output_shape(self, name):
        model = build_model(name, num_classes=7, in_channels=3, image_size=32)
        x = np.random.default_rng(0).standard_normal((2, 3, 32, 32)).astype(np.float32)
        assert model(x).shape == (2, 7)

    @pytest.mark.parametrize("name", ["alexnet", "mobilenetv2", "simplecnn", "mlp"])
    def test_grayscale_28x28_input(self, name):
        model = build_model(name, num_classes=10, in_channels=1, image_size=28)
        x = np.random.default_rng(0).standard_normal((2, 1, 28, 28)).astype(np.float32)
        assert model(x).shape == (2, 10)

    def test_deterministic_construction_with_seed(self):
        a = build_model("simplecnn", seed=3).state_dict()
        b = build_model("simplecnn", seed=3).state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_different_seeds_differ(self):
        a = build_model("simplecnn", seed=1).state_dict()
        b = build_model("simplecnn", seed=2).state_dict()
        assert any(not np.array_equal(a[k], b[k]) for k in a)


class TestBackward:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_backward_produces_input_gradient(self, name):
        model = build_model(name, num_classes=5, in_channels=3, image_size=16)
        x = np.random.default_rng(0).standard_normal((2, 3, 16, 16)).astype(np.float32)
        out = model(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert np.isfinite(grad).all()

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_backward_populates_parameter_gradients(self, name):
        model = build_model(name, num_classes=5, in_channels=3, image_size=16)
        x = np.random.default_rng(1).standard_normal((2, 3, 16, 16)).astype(np.float32)
        y = np.array([0, 1])
        loss_fn = CrossEntropyLoss()
        loss_fn(model(x), y)
        model.zero_grad()
        model.backward(loss_fn.backward())
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) * 0.5

    def test_one_sgd_step_changes_weights(self):
        model = build_model("simplecnn", num_classes=3, image_size=16)
        before = model.state_dict()
        x = np.random.default_rng(2).standard_normal((4, 3, 16, 16)).astype(np.float32)
        loss_fn = CrossEntropyLoss()
        loss_fn(model(x), np.array([0, 1, 2, 0]))
        model.backward(loss_fn.backward())
        SGD(model.parameters(), lr=0.1).step()
        after = model.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before if "weight" in k)


class TestTableIIIProfiles:
    def test_parameter_count_ordering_matches_paper(self):
        counts = {name: count_parameters(build_model(name)) for name in PAPER_MODELS}
        assert counts["alexnet"] > counts["resnet50"] > counts["mobilenetv2"]

    def test_state_size_ordering(self):
        sizes = {name: state_dict_nbytes(build_model(name)) for name in PAPER_MODELS}
        assert sizes["alexnet"] > sizes["resnet50"] > sizes["mobilenetv2"]

    def test_flops_positive_and_resnet_heaviest(self):
        flops = {name: estimate_flops(build_model(name), (3, 32, 32)) for name in PAPER_MODELS}
        assert all(v > 0 for v in flops.values())
        assert flops["resnet50"] > flops["mobilenetv2"]

    def test_model_profile_keys(self):
        profile = model_profile(build_model("mobilenetv2"), (3, 32, 32))
        assert set(profile) == {"parameters", "state_bytes", "flops"}

    def test_mobilenet_has_highest_buffer_share(self):
        # MobileNetV2's many BatchNorm layers make its non-weight share the
        # largest, which is why its lossy-compressible fraction is the lowest
        # in Table III.
        def weight_share(name: str) -> float:
            state = build_model(name).state_dict()
            total = sum(v.size for v in state.values())
            weights = sum(v.size for k, v in state.items() if "weight" in k and v.size > 1024)
            return weights / total

        shares = {name: weight_share(name) for name in PAPER_MODELS}
        assert shares["mobilenetv2"] < shares["resnet50"]
        assert shares["mobilenetv2"] < shares["alexnet"]

    def test_state_dict_mostly_float32(self):
        state = build_model("resnet50").state_dict()
        assert all(v.dtype == np.float32 for v in state.values())

    def test_alexnet_classifier_dominates_parameters(self):
        model = build_model("alexnet")
        classifier_params = sum(p.size for _, p in model.classifier.named_parameters())
        assert classifier_params > 0.5 * count_parameters(model)

"""Update codecs: how a client ``state_dict`` becomes bytes on the wire.

FedSZ is a "last step" in the communication pipeline (Section III-C of the
paper): any serialization scheme can sit behind the same interface.  Two
codecs are provided — :class:`RawUpdateCodec` (the uncompressed baseline, a
plain packed-array serialization standing in for pickled tensors) and
:class:`FedSZUpdateCodec` (the paper's contribution).
"""

from __future__ import annotations

import abc
import time
from collections import OrderedDict

import numpy as np

from repro.core.config import FedSZConfig
from repro.core.network import NetworkModel
from repro.core.pipeline import FedSZCompressor, FedSZReport
from repro.core.plan import CompressionPolicy
from repro.utils.serialization import pack_arrays, unpack_arrays

__all__ = ["UpdateCodec", "UpdateStreamDecoder", "UpdateStreamEncoder",
           "RawUpdateCodec", "FedSZUpdateCodec"]


class UpdateStreamEncoder:
    """Pull-based encoder for one client update's wire bytes.

    :meth:`chunks` yields the update's payload pieces in wire order; their
    concatenation is byte-identical to :meth:`UpdateCodec.encode` of the same
    state dict.  The transport starts the simulated transfer at the first
    piece, so encode overlaps the wire.  This base implementation encodes in
    one piece (bit-identical, no overlap); FedSZ overrides
    :meth:`UpdateCodec.stream_encoder` with the pipeline's incremental
    encoder, whose manifest piece leaves before any tensor is compressed.

    After the generator is exhausted, ``report`` holds the codec's per-call
    :class:`~repro.core.pipeline.FedSZReport` (``None`` for codecs that
    collect none) and ``peak_scratch_bytes`` the encoder's peak scratch
    estimate (0 when untracked).
    """

    def __init__(self, codec: "UpdateCodec") -> None:
        self._codec = codec
        self.report: "FedSZReport | None" = None
        self.peak_scratch_bytes = 0

    def chunks(self, state: dict[str, np.ndarray]):
        """Yield the wire payload pieces for ``state``."""
        payload, self.report = self._codec.encode_with_report(state)
        yield payload


class _FedSZUpdateStreamEncoder(UpdateStreamEncoder):
    """Streams the FedSZ pipeline encoder's pieces straight to the wire."""

    def __init__(self, compressor: FedSZCompressor) -> None:
        self._encoder = compressor.stream_encoder()
        self.report = None
        self.peak_scratch_bytes = 0

    def chunks(self, state: dict[str, np.ndarray]):
        yield from self._encoder.chunks(state)
        self.report = self._encoder.report
        self.peak_scratch_bytes = self._encoder.peak_scratch_bytes


class UpdateStreamDecoder:
    """Push-based decoder for one client update's wire bytes.

    :meth:`feed` accepts payload bytes as they arrive (per simulated packet on
    the coordinator's wire); :meth:`finish` returns the decoded state dict and
    a :class:`~repro.core.pipeline.FedSZReport` (or ``None`` for codecs that
    collect none), exactly matching a batch :meth:`UpdateCodec.decode` of the
    same bytes.  This base implementation buffers and decodes at the end —
    codecs with an incremental path override :meth:`UpdateCodec.stream_decoder`
    to overlap decode with arrival.
    """

    def __init__(self, codec: "UpdateCodec") -> None:
        self._codec = codec
        self._buf = bytearray()
        self._result = None

    @property
    def decode_seconds(self) -> float:
        """Decode time spent so far (all at ``finish`` for the buffered base)."""
        return getattr(self, "_seconds", 0.0)

    def feed(self, data) -> None:
        """Consume arriving wire bytes."""
        if self._result is not None:
            raise ValueError("cannot feed a finished update stream decoder")
        self._buf += memoryview(data)

    def finish(self) -> "tuple[OrderedDict[str, np.ndarray], FedSZReport | None]":
        """Return ``(state_dict, report)`` once the stream is complete."""
        if self._result is None:
            start = time.perf_counter()
            state = self._codec.decode(bytes(self._buf))
            self._seconds = time.perf_counter() - start
            self._result = (state, None)
        return self._result


class _FedSZUpdateStreamDecoder(UpdateStreamDecoder):
    """Streams wire bytes straight into the FedSZ pipeline decoder."""

    def __init__(self, compressor: FedSZCompressor) -> None:
        self._decoder = compressor.stream_decoder()
        self._result = None

    @property
    def decode_seconds(self) -> float:
        return self._decoder.decode_seconds

    def feed(self, data) -> None:
        if self._result is not None:
            raise ValueError("cannot feed a finished update stream decoder")
        self._decoder.feed(data)

    def finish(self) -> "tuple[OrderedDict[str, np.ndarray], FedSZReport]":
        if self._result is None:
            self._result = self._decoder.finish()
        return self._result


class UpdateCodec(abc.ABC):
    """Serialize/deserialize a model state dict for transmission."""

    name: str = "base"

    @abc.abstractmethod
    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        """Turn a state dict into wire bytes."""

    @abc.abstractmethod
    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        """Recover a state dict from wire bytes."""

    def encode_with_report(self, state: dict[str, np.ndarray]) \
            -> tuple[bytes, "FedSZReport | None"]:
        """Encode plus per-call compression statistics (``None`` when the
        codec collects none).  Safe to call from concurrent round workers —
        codecs that compress override this to return a fresh report instead of
        mutating shared state."""
        return self.encode(state), None

    def for_network(self, network: NetworkModel) -> "UpdateCodec":
        """Resolve this codec against one client's link.

        Bandwidth-aware codecs (FedSZ under the ``profiled`` plan policy)
        return a per-link variant so a heterogeneous fleet compresses each
        update for *its own* uplink; everything else returns ``self``
        unchanged.  The round engine calls this once per client.
        """
        return self

    def stream_decoder(self) -> UpdateStreamDecoder:
        """A push-based decoder for one update's wire bytes.

        The transport feeds it simulated packet arrivals so decode overlaps
        transfer.  The base implementation buffers and decodes at the end
        (bit-identical, no overlap); FedSZ overrides it with the pipeline's
        incremental decoder.
        """
        return UpdateStreamDecoder(self)

    def stream_encoder(self) -> UpdateStreamEncoder:
        """A pull-based encoder for one update's wire bytes.

        The transport drains it to start the simulated transfer at the first
        ready piece so encode overlaps the wire.  The base implementation
        emits the whole payload in one piece (bit-identical, no overlap);
        FedSZ overrides it with the pipeline's incremental encoder.
        """
        return UpdateStreamEncoder(self)

    @property
    def profiler(self) -> "object | None":
        """The :class:`~repro.core.profiling.CodecProfiler` behind this codec's
        plan policy, or ``None`` when plans are not profiler-driven.  The
        coordinator reads its cache counters into each ``RoundRecord``."""
        return None


class RawUpdateCodec(UpdateCodec):
    """Uncompressed baseline: packed float32 tensors, no reduction."""

    name = "uncompressed"

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return pack_arrays(dict(state))

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(unpack_arrays(payload))


class FedSZUpdateCodec(UpdateCodec):
    """FedSZ compression of client updates (the paper's scheme).

    ``policy`` (an instance or registry name) overrides the plan policy the
    config names — the hook :meth:`for_network` uses to hand each client of a
    heterogeneous fleet a per-link variant of a bandwidth-aware policy.
    """

    name = "fedsz"

    def __init__(self, config: FedSZConfig | None = None,
                 policy: "CompressionPolicy | str | None" = None) -> None:
        self.config = config or FedSZConfig()
        self.compressor = FedSZCompressor(self.config, policy=policy)

    def for_network(self, network: NetworkModel) -> "FedSZUpdateCodec":
        """A codec whose plan policy is resolved against ``network``.

        Returns ``self`` when the policy is link-agnostic (every policy except
        ``profiled``); otherwise a new codec sharing this one's config and the
        policy's profiler cache, so each distinct update is profiled once and
        re-planned per link.
        """
        resolved = self.compressor.policy.for_network(network)
        if resolved is self.compressor.policy:
            return self
        return FedSZUpdateCodec(self.config, policy=resolved)

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return self.compressor.compress_state_dict(state)

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return self.compressor.decompress_state_dict(payload)

    def encode_with_report(self, state: dict[str, np.ndarray]) \
            -> tuple[bytes, FedSZReport]:
        """Encode one update and return its per-call :class:`FedSZReport`."""
        return self.compressor.compress_with_report(state)

    def stream_decoder(self) -> _FedSZUpdateStreamDecoder:
        """An incremental decoder running the streaming FedSZ pipeline."""
        return _FedSZUpdateStreamDecoder(self.compressor)

    def stream_encoder(self) -> _FedSZUpdateStreamEncoder:
        """An incremental encoder running the streaming FedSZ pipeline."""
        return _FedSZUpdateStreamEncoder(self.compressor)

    @property
    def profiler(self) -> "object | None":
        """The plan policy's shared :class:`CodecProfiler`, if it has one."""
        return getattr(self.compressor.policy, "profiler", None)

    @property
    def last_report(self) -> FedSZReport | None:
        """Compression statistics of the most recent :meth:`encode` call.

        Single-slot convenience: after a parallel round it holds one arbitrary
        client; prefer :meth:`encode_with_report` (or the round record's
        ``client_reports``) for accurate per-client statistics.
        """
        return self.compressor.last_report

"""Reproduction of FedSZ: error-bounded lossy compression for FL communications.

The package is organised bottom-up:

* :mod:`repro.utils` — bit I/O, timing, RNG, serialization helpers,
* :mod:`repro.compressors` — SZ2/SZ3/SZx/ZFP-style error-bounded lossy
  compressors and the lossless codecs,
* :mod:`repro.nn` — a NumPy neural-network substrate with PyTorch-like
  ``state_dict`` semantics and the paper's (scaled) model architectures,
* :mod:`repro.data` — synthetic datasets, federated partitioning, loaders,
* :mod:`repro.core` — the FedSZ pipeline itself (Algorithm 1 / Figure 1),
* :mod:`repro.fl` — FedAvg clients/server, round orchestration, scaling models,
* :mod:`repro.privacy` — compression-error distribution analysis (Figure 10).

Quickstart::

    from repro.core import FedSZCompressor, FedSZConfig
    from repro.nn import build_model

    model = build_model("alexnet")
    fedsz = FedSZCompressor(FedSZConfig(error_bound=1e-2))
    payload = fedsz.compress_state_dict(model.state_dict())
    restored = fedsz.decompress_state_dict(payload)
"""

from repro.core import FedSZCompressor, FedSZConfig

__version__ = "1.0.0"

__all__ = ["FedSZCompressor", "FedSZConfig", "__version__"]

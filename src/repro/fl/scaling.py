"""Weak- and strong-scaling models (Figure 9).

The paper scales an MPI deployment from 2 to 128 cores on a cluster while
throttling the network to 10 Mbps.  The reproduction models the same quantities
analytically from measured per-client costs:

* ``train_seconds`` — local training time of one client for one epoch,
* ``encode_seconds`` / ``decode_seconds`` — codec runtime per update,
* ``update_bytes`` — wire size of one update,
* the server ingests all client updates over a single shared link of
  ``bandwidth_mbps`` (this serialization is what makes the weak-scaling curve
  grow with the client count, Figure 9a).

Weak scaling assigns one client per core; strong scaling fixes the client count
(127 in the paper) and divides the clients across the cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import communication_time

__all__ = ["ScalingResult", "simulate_weak_scaling", "simulate_strong_scaling", "scaling_speedups"]


@dataclass
class ScalingResult:
    """Epoch time per client for one core count in a scaling sweep."""

    cores: int
    clients: int
    epoch_seconds: float
    compute_seconds: float
    communication_seconds: float


def scaling_speedups(results: list["ScalingResult"]) -> list[float]:
    """Speedup of every sweep point relative to the first (smallest core count)."""
    if not results:
        return []
    baseline = results[0].epoch_seconds
    return [baseline / r.epoch_seconds if r.epoch_seconds else float("inf") for r in results]


def _per_client_compute(train_seconds: float, encode_seconds: float,
                        decode_seconds: float) -> float:
    return train_seconds + encode_seconds + decode_seconds


def simulate_weak_scaling(core_counts: list[int], train_seconds: float, encode_seconds: float,
                          decode_seconds: float, update_bytes: float,
                          bandwidth_mbps: float = 10.0) -> list[ScalingResult]:
    """One client per core; the shared server link serializes all uploads."""
    results: list[ScalingResult] = []
    for cores in core_counts:
        clients = cores
        compute = _per_client_compute(train_seconds, encode_seconds, decode_seconds)
        comm = clients * communication_time(update_bytes, bandwidth_mbps)
        results.append(ScalingResult(cores=cores, clients=clients,
                                     epoch_seconds=compute + comm,
                                     compute_seconds=compute,
                                     communication_seconds=comm))
    return results


def simulate_strong_scaling(core_counts: list[int], n_clients: int, train_seconds: float,
                            encode_seconds: float, decode_seconds: float, update_bytes: float,
                            bandwidth_mbps: float = 10.0) -> list[ScalingResult]:
    """Fixed client population split across the cores (paper: 127 clients)."""
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    results: list[ScalingResult] = []
    for cores in core_counts:
        clients_per_core = -(-n_clients // cores)  # ceiling division
        compute = clients_per_core * _per_client_compute(train_seconds, encode_seconds, decode_seconds)
        comm = n_clients * communication_time(update_bytes, bandwidth_mbps)
        results.append(ScalingResult(cores=cores, clients=n_clients,
                                     epoch_seconds=compute + comm,
                                     compute_seconds=compute,
                                     communication_seconds=comm))
    return results

"""Streaming decode: bytes-in-flight vs wall-clock on a simulated uplink.

Two drills over one compressed model update on a 2 Mbps simulated link:

* **bytes-in-flight** — ship the update through the streaming decode path at
  several packet sizes and report, per size, when decode *can* start (first
  packet arrival) against when the full transfer completes, plus the decode
  time the consumer managed to hide inside the transfer window
  (``ShipResult.decode_overlap_seconds``).  The analytic invariant — decode
  starts strictly before the transfer finishes whenever the payload spans more
  than one packet — is asserted unconditionally.
* **wall-clock** — re-ship with ``simulate_delay=True`` so packet arrivals are
  real sleeps, batch vs streaming: the streaming ship decodes during the
  sleeps, so only the residual tail lands after the last packet.  The
  wall-clock speedup assertion is gated on ``os.cpu_count() > 1``; shared
  single-core hosts time sleeps too coarsely to compare reliably.
* **encode overlap** — the producer-side mirror: ship with
  ``streaming_encode=True`` at the same packet sizes and report when the first
  simulated byte leaves (``ShipResult.first_byte_seconds``) against when the
  encode completes, plus the encode time hidden inside the transfer window
  (``ShipResult.encode_overlap_seconds``) and the producer's peak staging
  scratch.  Asserted unconditionally: the first byte leaves strictly before
  the encode finishes, the hidden encode time is nonzero, and the streamed
  payload is byte-identical to the batch encoder's.

All drills require the streamed bytes/state to match the batch path
bit-for-bit.

Entry point: ``PYTHONPATH=src python benchmarks/bench_streaming.py
[--backend process] [--smoke]`` — ``--smoke`` is the correctness-only CI
drill (no persistence, no timing assertion).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import save_results, trained_like_state
from repro.core import NetworkModel
from repro.core.config import FedSZConfig
from repro.fl.codec import FedSZUpdateCodec
from repro.fl.coordinator.transport import (ShipTask, SimulatedTransport,
                                            ship_update_task)
from repro.metrics import ExperimentRecord, Table

BANDWIDTH_MBPS = 2.0
PACKET_SIZES = (2048, 8192, 32 * 1024)
SEED = 29


def _update_state() -> dict[str, np.ndarray]:
    # mobilenetv2 at the repo's CPU scale: ~330 KiB of trained-looking floats,
    # compressing to ~75 KiB — several packets at every size in the sweep,
    # with enough decode work (~tens of ms) for overlap to be visible
    return trained_like_state("mobilenetv2", seed=SEED)


def _assert_states_match(streamed, reference) -> None:
    assert list(streamed) == list(reference), "streamed tensor order diverged"
    for key in reference:
        assert streamed[key].dtype == reference[key].dtype
        assert np.array_equal(streamed[key], reference[key]), \
            f"streamed tensor {key!r} is not bit-identical to the batch decode"


# ---------------------------------------------------------------------------
def _run_bytes_in_flight_drill(state, codec, backend: str):
    """Packet-size sweep: decode start vs transfer end, overlap per size."""
    network = NetworkModel(bandwidth_mbps=BANDWIDTH_MBPS)
    task = ShipTask(client_id=0, state=state, codec=codec, network=network)
    batch = ship_update_task(task)

    rows = []
    for packet_bytes in PACKET_SIZES:
        transport = SimulatedTransport(backend=backend, streaming=True,
                                       packet_bytes=packet_bytes)
        result = transport.ship(task)
        _assert_states_match(result.state, batch.state)
        assert result.transfer_seconds == batch.transfer_seconds, \
            "streaming must not change the recorded transfer time"

        schedule = network.packet_arrivals(result.payload_bytes, packet_bytes)
        decode_start, transfer_end = schedule[0][1], schedule[-1][1]
        if len(schedule) > 1:
            # the whole point of streaming: decode begins before the wire is done
            assert decode_start < transfer_end, \
                (f"decode start {decode_start:.4f}s not before transfer end "
                 f"{transfer_end:.4f}s at packet_bytes={packet_bytes}")
        overlap = result.decode_overlap_seconds or 0.0
        rows.append((packet_bytes, result.payload_bytes, len(schedule),
                     decode_start, transfer_end, result.decode_seconds,
                     overlap))
    return batch, rows


def _run_encode_overlap_drill(state, codec, backend: str):
    """Packet-size sweep on the producer side: first byte out vs encode end."""
    network = NetworkModel(bandwidth_mbps=BANDWIDTH_MBPS)
    task = ShipTask(client_id=0, state=state, codec=codec, network=network,
                    keep_payload=True)
    batch = ship_update_task(task)

    rows = []
    for packet_bytes in PACKET_SIZES:
        transport = SimulatedTransport(backend=backend, streaming_encode=True,
                                       packet_bytes=packet_bytes)
        result = transport.ship(task)
        assert result.payload == batch.payload, \
            (f"streamed-encode payload is not byte-identical to the batch "
             f"encoder at packet_bytes={packet_bytes}")
        _assert_states_match(result.state, batch.state)
        # the whole point of the encode path: the first simulated byte is on
        # the wire while later container entries are still compressing, and a
        # nonzero slice of t_C hides inside the transfer window
        assert result.first_byte_seconds is not None
        assert result.first_byte_seconds < result.encode_seconds, \
            (f"first byte at {result.first_byte_seconds:.4f}s did not leave "
             f"before encode completed at {result.encode_seconds:.4f}s")
        assert result.encode_overlap_seconds > 0.0, \
            "no encode time was hidden inside the transfer window"
        rows.append((packet_bytes, result.payload_bytes,
                     result.first_byte_seconds, result.encode_seconds,
                     result.encode_overlap_seconds,
                     result.encode_scratch_bytes))
    return rows


def _run_wall_clock_drill(state, codec, backend: str):
    """Batch vs streaming ship on a real-sleep link: wall clock comparison."""
    # high enough bandwidth that the drill stays fast, low enough that the
    # transfer window is much longer than the decode work it must hide
    network = NetworkModel(bandwidth_mbps=5.0, latency_s=0.01,
                           simulate_delay=True)
    task = ShipTask(client_id=0, state=state, codec=codec, network=network)

    walls, results = {}, {}
    for label, streaming in (("batch", False), ("streaming", True)):
        transport = SimulatedTransport(backend=backend, streaming=streaming,
                                       packet_bytes=16 * 1024)
        start = time.perf_counter()
        results[label] = transport.ship(task)
        walls[label] = time.perf_counter() - start
    _assert_states_match(results["streaming"].state, results["batch"].state)
    return walls, results


# ---------------------------------------------------------------------------
def _check_and_report(backend: str, persist: bool, assert_speedup: bool) -> int:
    codec = FedSZUpdateCodec(FedSZConfig())
    state = _update_state()
    raw_bytes = sum(int(np.asarray(v).nbytes) for v in state.values())

    batch, flight_rows = _run_bytes_in_flight_drill(state, codec, backend)
    encode_rows = _run_encode_overlap_drill(state, codec, backend)
    walls, wall_results = _run_wall_clock_drill(state, codec, backend)

    host_cores = os.cpu_count() or 1
    table = Table(f"Streaming decode ({backend} backend, {host_cores} core"
                  f"{'s' if host_cores != 1 else ''}) - "
                  f"{raw_bytes / 1024:.0f} KiB update, "
                  f"{BANDWIDTH_MBPS:g} Mbps simulated uplink",
                  ["packet bytes", "payload", "packets", "decode start (s)",
                   "transfer end (s)", "decode (s)", "overlapped (s)"])
    record = ExperimentRecord("streaming",
                              "incremental decode overlapped with the simulated transfer")
    record.add(backend=backend, host_cores=host_cores, raw_bytes=raw_bytes,
               payload_bytes=batch.payload_bytes)
    for packet_bytes, payload, packets, start, end, decode, overlap in flight_rows:
        table.add_row(str(packet_bytes), str(payload), str(packets),
                      f"{start:.4f}", f"{end:.4f}", f"{decode * 1e3:.2f}ms",
                      f"{overlap * 1e3:.2f}ms")
        record.add(drill="bytes-in-flight", packet_bytes=packet_bytes,
                   packets=packets, decode_start_s=start, transfer_end_s=end,
                   decode_seconds=decode, decode_overlap_seconds=overlap)

    encode_table = Table("Streaming encode - first byte out vs encode end "
                         "(producer-gated wire)",
                         ["packet bytes", "payload", "first byte (s)",
                          "encode (s)", "overlapped (s)", "scratch"])
    for packet_bytes, payload, first_byte, encode, overlap, scratch in encode_rows:
        encode_table.add_row(str(packet_bytes), str(payload),
                             f"{first_byte:.4f}", f"{encode:.4f}",
                             f"{overlap * 1e3:.2f}ms",
                             f"{scratch / 1024:.0f} KiB")
        record.add(drill="encode-overlap", packet_bytes=packet_bytes,
                   first_byte_seconds=first_byte, encode_seconds=encode,
                   encode_overlap_seconds=overlap,
                   encode_scratch_bytes=scratch)

    wall_table = Table("Wall clock - real-sleep link, batch vs streaming ship",
                       ["path", "wall (s)", "decode (s)", "overlapped (s)"])
    for label in ("batch", "streaming"):
        result = wall_results[label]
        overlap = result.decode_overlap_seconds
        wall_table.add_row(label, f"{walls[label]:.3f}",
                           f"{result.decode_seconds * 1e3:.2f}ms",
                           "-" if overlap is None else f"{overlap * 1e3:.2f}ms")
        record.add(drill="wall-clock", path=label, wall_seconds=walls[label],
                   decode_seconds=result.decode_seconds)

    if persist:
        save_results("streaming", [table, encode_table, wall_table], record)
    else:
        print()
        print(table.render())
        print()
        print(encode_table.render())
        print()
        print(wall_table.render())

    # streaming hides decode inside the sleeps, so its wall clock must come in
    # under batch (transfer then decode); unreliable to time on one core
    if assert_speedup and host_cores > 1:
        assert walls["streaming"] < walls["batch"], \
            (f"streaming {walls['streaming']:.3f}s not faster than "
             f"batch {walls['batch']:.3f}s")
    return 0


def bench_streaming(benchmark):
    """pytest-benchmark harness (thread backend, persists results)."""
    benchmark.pedantic(
        lambda: _check_and_report("thread", persist=True, assert_speedup=True),
        rounds=1, iterations=1)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend behind the transport")
    parser.add_argument("--smoke", action="store_true",
                        help="correctness-only drill: no timing assertion, "
                             "results are not persisted (CI mode)")
    args = parser.parse_args(argv)
    return _check_and_report(args.backend, persist=not args.smoke,
                             assert_speedup=not args.smoke)


if __name__ == "__main__":
    sys.exit(main())

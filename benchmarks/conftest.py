"""Pytest configuration for the benchmark suite.

Adds the benchmarks directory to ``sys.path`` so the ``bench_utils`` helper
module can be imported by every benchmark file regardless of the invocation
directory.
"""

from __future__ import annotations

import sys
from pathlib import Path

_BENCH_DIR = str(Path(__file__).resolve().parent)
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

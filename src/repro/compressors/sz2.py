"""SZ2-style error-bounded lossy compressor.

The real SZ2 (Liang et al., 2018) processes data in small blocks, predicts each
value with either a Lorenzo predictor or a per-block linear regression, chooses
the better predictor per block, quantizes the prediction error against the
error bound, Huffman-encodes the quantization codes, and finishes with a
lossless pass (Zstd).

This reproduction keeps the same pipeline with one documented substitution: the
sequential Lorenzo predictor (which consumes previously *decompressed*
neighbours) is replaced by a per-block constant (mean) predictor so the whole
compressor is a handful of vectorized NumPy passes.  The hybrid
mean-vs-regression selection, the per-element error-bound guarantee, the
Huffman stage, and the final lossless stage are all faithful to SZ2's design.

Payload body layout (after the :class:`~repro.compressors.base.LossyCompressor`
header)::

    u32   block size
    u64   number of blocks
    u32   quantizer radius
    bytes selector bitmap (1 bit per block: 0 = mean predictor, 1 = regression)
    f32[] predictor coefficients (1 per mean block, 2 per regression block)
    u64   Huffman stream length, Huffman-coded quantization codes
    u64   outlier count, f64[] verbatim outliers

The entire body is then passed through the configured lossless backend.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import ErrorBound, ErrorBoundMode, LossyCompressor
from repro.compressors.codebook import entropy_encode
from repro.compressors.huffman import DEFAULT_CHUNK_SYMBOLS, HuffmanCoder
from repro.compressors.lossless import LosslessCodec, get_lossless
from repro.compressors.predictors import (
    block_mean_predictor,
    block_pad,
    block_regression_predictor,
    predictions_from_regression,
)
from repro.compressors.quantizer import LinearQuantizer
from repro.compressors.streaming import SZStreamDecoder, SZStreamEncoder
from repro.utils.bitstream import StreamBuffer

__all__ = ["SZ2Compressor"]


class SZ2Compressor(LossyCompressor):
    """Blockwise hybrid-prediction error-bounded compressor (SZ2 style)."""

    name = "sz2"

    def __init__(self, error_bound: ErrorBound | float = 1e-2,
                 mode: ErrorBoundMode | str = ErrorBoundMode.REL,
                 block_size: int = 128, quantizer_radius: int = 32768,
                 lossless_backend: str | LosslessCodec = "zlib",
                 entropy_chunk: int = DEFAULT_CHUNK_SYMBOLS,
                 entropy_workers: int | None = 1,
                 entropy_backend: str = "thread") -> None:
        super().__init__(error_bound, mode)
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = int(block_size)
        self.quantizer = LinearQuantizer(quantizer_radius)
        # entropy_chunk caps the symbols per Huffman chunk; entropy_workers=1
        # is the sequential reference decoder, >1 the banded vectorized one on
        # the named execution backend (serial / thread / process).
        self.huffman = HuffmanCoder(chunk_size=entropy_chunk, max_workers=entropy_workers,
                                    backend=entropy_backend)
        if isinstance(lossless_backend, LosslessCodec):
            self.lossless = lossless_backend
        else:
            self.lossless = get_lossless(lossless_backend, level=1) if lossless_backend == "zlib" \
                else get_lossless(lossless_backend)

    # ------------------------------------------------------------------
    def _compress_float1d(self, data: np.ndarray, abs_bound: float) -> bytes:
        prefix, codes, suffix = self._body_parts(data, abs_bound)
        if codes is None:
            return self.lossless.compress(b"".join(prefix + suffix))
        huff = entropy_encode(self.huffman, codes, self._codebook)
        body = b"".join(prefix) + struct.pack("<Q", len(huff)) + huff + b"".join(suffix)
        return self.lossless.compress(body)

    def _body_parts(self, data: np.ndarray, abs_bound: float
                    ) -> "tuple[list[bytes], np.ndarray | None, list[bytes]]":
        """Split the plaintext body into (pre-Huffman pieces, quantization
        codes, post-Huffman pieces).

        Shared by the batch :meth:`_compress_float1d` and the streaming
        :class:`~repro.compressors.streaming.SZStreamEncoder`, which entropy-
        codes the returned symbols through a
        :class:`~repro.compressors.huffman.ChunkBandProducer` so both paths
        produce byte-identical bodies.  ``codes is None`` marks the
        empty-array escape (no embedded Huffman stream).
        """
        if data.size == 0:
            return [struct.pack("<IQI", self.block_size, 0, self.quantizer.radius)], None, []

        blocks, original_len = block_pad(data, self.block_size)
        n_blocks = blocks.shape[0]

        # Values near the float64 extremes overflow the float32 coefficient
        # cast and the SSE accumulation to inf; that only deselects the
        # affected predictor (and the quantizer's outlier escape covers the
        # residuals), so the overflow is expected rather than a fault.
        with np.errstate(over="ignore", invalid="ignore"):
            mean_pred, mean_coef = block_mean_predictor(blocks)
            reg_pred, reg_coef = block_regression_predictor(blocks)

            # Cast coefficients to float32 *before* forming predictions so the
            # decoder (which only sees float32 coefficients) reproduces the
            # exact same predictions and the error bound survives
            # serialization.
            mean_coef32 = mean_coef.astype(np.float32)
            reg_coef32 = reg_coef.astype(np.float32)
            mean_pred = np.broadcast_to(mean_coef32.astype(np.float64), blocks.shape)
            reg_pred = predictions_from_regression(reg_coef32.astype(np.float64), self.block_size)

            mean_sse = ((blocks - mean_pred) ** 2).sum(axis=1)
            reg_sse = ((blocks - reg_pred) ** 2).sum(axis=1)
            use_regression = reg_sse < mean_sse

        predictions = np.where(use_regression[:, None], reg_pred, mean_pred)
        quant = self.quantizer.quantize(blocks.ravel(), predictions.ravel(), abs_bound)

        # Coefficients are stored in block order: one float for mean blocks,
        # two floats for regression blocks.
        coef_chunks: list[np.ndarray] = []
        for i in range(n_blocks):
            if use_regression[i]:
                coef_chunks.append(reg_coef32[i])
            else:
                coef_chunks.append(mean_coef32[i])
        coefficients = np.concatenate(coef_chunks).astype(np.float32) if coef_chunks else np.zeros(0, np.float32)

        selector_bits = np.packbits(use_regression.astype(np.uint8))

        prefix = [struct.pack("<IQI", self.block_size, n_blocks, self.quantizer.radius),
                  struct.pack("<Q", original_len),
                  struct.pack("<Q", selector_bits.size) + selector_bits.tobytes(),
                  struct.pack("<Q", coefficients.size) + coefficients.tobytes()]
        suffix = [LinearQuantizer.pack_outliers(quant.outliers)]
        return prefix, quant.codes, suffix

    # ------------------------------------------------------------------
    def _decompress_float1d(self, body: bytes, count: int, abs_bound: float,
                            dtype: np.dtype) -> np.ndarray:
        return self._decode_plain_body(self.lossless.decompress(body), count,
                                       abs_bound, dtype)

    def stream_decoder(self) -> SZStreamDecoder:
        """Incremental decoder that overlaps the Huffman stage with arrival."""
        return SZStreamDecoder(self)

    def stream_encoder(self) -> SZStreamEncoder:
        """Incremental encoder that emits the body as the Huffman stage codes."""
        return SZStreamEncoder(self)

    def _huffman_span(self, plain: "StreamBuffer") -> "tuple[int, int] | None":
        """Locate the embedded Huffman stream in a plaintext body prefix.

        Returns ``(start, length)`` once the pre-Huffman fields have arrived,
        ``None`` while more bytes are needed.  Length 0 means the body has no
        Huffman stream (the empty-array escape).  Field *validation* is not
        duplicated here — a nonsensical length simply keeps the span
        unresolved and the batch parser raises the canonical error at finish.
        """
        if not plain.has(16):
            return None
        _, n_blocks, _ = struct.unpack("<IQI", plain.view(0, 16))
        if n_blocks == 0:
            return 16, 0
        offset = 24  # past <IQI> and original_len
        if not plain.has(8, offset):
            return None
        (sel_len,) = struct.unpack("<Q", plain.view(offset, offset + 8))
        offset += 8 + sel_len
        if not plain.has(8, offset):
            return None
        (coef_count,) = struct.unpack("<Q", plain.view(offset, offset + 8))
        offset += 8 + 4 * coef_count
        if not plain.has(8, offset):
            return None
        (huff_len,) = struct.unpack("<Q", plain.view(offset, offset + 8))
        return offset + 8, huff_len

    def _decode_plain_body(self, body: bytes, count: int, abs_bound: float,
                           dtype: np.dtype,
                           codes: "np.ndarray | None" = None) -> np.ndarray:
        """Reconstruct from the decompressed body.

        ``codes`` carries pre-decoded Huffman symbols from the streaming
        consumer; ``None`` (the batch path) decodes them here.  Both sources
        run the same kernels, so the output is bit-identical either way.
        """
        block_size, n_blocks, radius = struct.unpack_from("<IQI", body, 0)
        offset = 16
        if n_blocks == 0:
            return np.zeros(count, dtype=np.float64)
        (original_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        (sel_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        selector_bits = np.frombuffer(body, dtype=np.uint8, count=sel_len, offset=offset)
        offset += sel_len
        use_regression = np.unpackbits(selector_bits)[:n_blocks].astype(bool)
        (coef_count,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        coefficients = np.frombuffer(body, dtype=np.float32, count=coef_count, offset=offset)
        offset += 4 * coef_count
        (huff_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        if codes is None:
            codes = self.huffman.decode(body[offset : offset + huff_len])
        offset += huff_len
        outliers, offset = LinearQuantizer.unpack_outliers(body, offset)

        # Rebuild per-block predictions from the stored coefficients.
        predictions = np.empty((n_blocks, block_size), dtype=np.float64)
        coef_offsets = np.zeros(n_blocks, dtype=np.int64)
        sizes = np.where(use_regression, 2, 1)
        coef_offsets[1:] = np.cumsum(sizes)[:-1]

        mean_blocks = np.flatnonzero(~use_regression)
        if mean_blocks.size:
            means = coefficients[coef_offsets[mean_blocks]].astype(np.float64)
            predictions[mean_blocks] = means[:, None]
        reg_blocks = np.flatnonzero(use_regression)
        if reg_blocks.size:
            intercepts = coefficients[coef_offsets[reg_blocks]].astype(np.float64)
            slopes = coefficients[coef_offsets[reg_blocks] + 1].astype(np.float64)
            idx = np.arange(block_size, dtype=np.float64)
            predictions[reg_blocks] = intercepts[:, None] + slopes[:, None] * idx[None, :]

        quantizer = LinearQuantizer(radius)
        values = quantizer.dequantize(codes, outliers, predictions.ravel(), abs_bound)
        return values[:original_len]

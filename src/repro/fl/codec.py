"""Update codecs: how a client ``state_dict`` becomes bytes on the wire.

FedSZ is a "last step" in the communication pipeline (Section III-C of the
paper): any serialization scheme can sit behind the same interface.  Two
codecs are provided — :class:`RawUpdateCodec` (the uncompressed baseline, a
plain packed-array serialization standing in for pickled tensors) and
:class:`FedSZUpdateCodec` (the paper's contribution).
"""

from __future__ import annotations

import abc
from collections import OrderedDict

import numpy as np

from repro.core.config import FedSZConfig
from repro.core.network import NetworkModel
from repro.core.pipeline import FedSZCompressor, FedSZReport
from repro.core.plan import CompressionPolicy
from repro.utils.serialization import pack_arrays, unpack_arrays

__all__ = ["UpdateCodec", "RawUpdateCodec", "FedSZUpdateCodec"]


class UpdateCodec(abc.ABC):
    """Serialize/deserialize a model state dict for transmission."""

    name: str = "base"

    @abc.abstractmethod
    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        """Turn a state dict into wire bytes."""

    @abc.abstractmethod
    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        """Recover a state dict from wire bytes."""

    def encode_with_report(self, state: dict[str, np.ndarray]) \
            -> tuple[bytes, "FedSZReport | None"]:
        """Encode plus per-call compression statistics (``None`` when the
        codec collects none).  Safe to call from concurrent round workers —
        codecs that compress override this to return a fresh report instead of
        mutating shared state."""
        return self.encode(state), None

    def for_network(self, network: NetworkModel) -> "UpdateCodec":
        """Resolve this codec against one client's link.

        Bandwidth-aware codecs (FedSZ under the ``profiled`` plan policy)
        return a per-link variant so a heterogeneous fleet compresses each
        update for *its own* uplink; everything else returns ``self``
        unchanged.  The round engine calls this once per client.
        """
        return self


class RawUpdateCodec(UpdateCodec):
    """Uncompressed baseline: packed float32 tensors, no reduction."""

    name = "uncompressed"

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return pack_arrays(dict(state))

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(unpack_arrays(payload))


class FedSZUpdateCodec(UpdateCodec):
    """FedSZ compression of client updates (the paper's scheme).

    ``policy`` (an instance or registry name) overrides the plan policy the
    config names — the hook :meth:`for_network` uses to hand each client of a
    heterogeneous fleet a per-link variant of a bandwidth-aware policy.
    """

    name = "fedsz"

    def __init__(self, config: FedSZConfig | None = None,
                 policy: "CompressionPolicy | str | None" = None) -> None:
        self.config = config or FedSZConfig()
        self.compressor = FedSZCompressor(self.config, policy=policy)

    def for_network(self, network: NetworkModel) -> "FedSZUpdateCodec":
        """A codec whose plan policy is resolved against ``network``.

        Returns ``self`` when the policy is link-agnostic (every policy except
        ``profiled``); otherwise a new codec sharing this one's config and the
        policy's profiler cache, so each distinct update is profiled once and
        re-planned per link.
        """
        resolved = self.compressor.policy.for_network(network)
        if resolved is self.compressor.policy:
            return self
        return FedSZUpdateCodec(self.config, policy=resolved)

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return self.compressor.compress_state_dict(state)

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return self.compressor.decompress_state_dict(payload)

    def encode_with_report(self, state: dict[str, np.ndarray]) \
            -> tuple[bytes, FedSZReport]:
        """Encode one update and return its per-call :class:`FedSZReport`."""
        return self.compressor.compress_with_report(state)

    @property
    def last_report(self) -> FedSZReport | None:
        """Compression statistics of the most recent :meth:`encode` call.

        Single-slot convenience: after a parallel round it holds one arbitrary
        client; prefer :meth:`encode_with_report` (or the round record's
        ``client_reports``) for accurate per-client statistics.
        """
        return self.compressor.last_report

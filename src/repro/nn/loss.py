"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax

__all__ = ["CrossEntropyLoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns dL/dlogits so the
    caller can feed it straight into ``model.backward``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.int64).ravel()
        if logits.shape[0] != targets.size:
            raise ValueError("batch size mismatch between logits and targets")
        logp = log_softmax(logits, axis=1)
        self._probs = softmax(logits, axis=1)
        self._targets = targets
        return float(-logp[np.arange(targets.size), targets].mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n, num_classes = self._probs.shape
        grad = (self._probs - one_hot(self._targets, num_classes)) / n
        return grad.astype(np.float64)

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)

"""Vectorized array operations backing the layer implementations.

The convolution layers use the classic im2col/col2im formulation so both the
forward and backward passes reduce to dense matrix products, which keeps the
CPU-only training loops inside NumPy's BLAS.
"""

from __future__ import annotations

import numpy as np

__all__ = ["im2col", "col2im", "conv_output_size", "softmax", "log_softmax", "one_hot"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(f"non-positive conv output size for input={size}, kernel={kernel}, "
                         f"stride={stride}, padding={padding}")
    return out


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into columns (N, C*kh*kw, L).

    ``L`` is the number of sliding-window positions ``H_out * W_out``.
    """
    kh, kw = kernel
    n, c, h, w = x.shape
    h_out = conv_output_size(h, kh, stride, padding)
    w_out = conv_output_size(w, kw, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, H_out, W_out, kh, kw)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, h_out * w_out)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int], kernel: tuple[int, int],
           stride: int, padding: int) -> np.ndarray:
    """Fold columns back into an image, summing overlapping contributions."""
    kh, kw = kernel
    n, c, h, w = x_shape
    h_out = conv_output_size(h, kh, stride, padding)
    w_out = conv_output_size(w, kw, stride, padding)
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, h_out, w_out)
    for i in range(kh):
        i_end = i + stride * h_out
        for j in range(kw):
            j_end = j + stride * w_out
            x_padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if padding:
        return x_padded[:, :, padding:padding + h, padding:padding + w]
    return x_padded


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into float32 rows."""
    labels = np.asarray(labels, dtype=np.int64).ravel()
    out = np.zeros((labels.size, num_classes), dtype=np.float32)
    out[np.arange(labels.size), labels] = 1.0
    return out

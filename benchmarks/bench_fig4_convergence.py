"""Figure 4: accuracy convergence per communication round for each EBLC.

Runs FedAvg with the update codec set to uncompressed, FedSZ-SZ2, FedSZ-SZ3,
and FedSZ-ZFP (the same set the paper plots) and reports the per-round
validation accuracy series.  At quick scale a small CNN and a reduced synthetic
CIFAR-10 are used; ``REPRO_BENCH_SCALE=full`` switches to AlexNet-scale runs.
"""

from __future__ import annotations

import numpy as np

from bench_utils import fl_settings, quick_fl_data, save_results
from repro.core import FedSZConfig
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model

CODECS = {
    "Uncompressed": lambda: RawUpdateCodec(),
    "FedSZ-SZ2": lambda: FedSZUpdateCodec(FedSZConfig(lossy_compressor="sz2", error_bound=1e-2)),
    "FedSZ-SZ3": lambda: FedSZUpdateCodec(FedSZConfig(lossy_compressor="sz3", error_bound=1e-2)),
    "FedSZ-ZFP": lambda: FedSZUpdateCodec(FedSZConfig(lossy_compressor="zfp", error_bound=1e-2)),
    "FedSZ-SZx": lambda: FedSZUpdateCodec(FedSZConfig(lossy_compressor="szx", error_bound=1e-2)),
}


def bench_fig4_convergence(benchmark):
    cfg = fl_settings()
    train, test = quick_fl_data("cifar10", seed=4)

    def factory():
        return build_model(cfg["model"], num_classes=10, in_channels=3,
                           image_size=cfg["image_size"], seed=0)

    def run():
        series = {}
        for label, make_codec in CODECS.items():
            sim = FederatedSimulation(factory, train, test, n_clients=cfg["n_clients"],
                                      codec=make_codec(), lr=cfg["lr"],
                                      batch_size=cfg["batch_size"], seed=5)
            result = sim.run(cfg["rounds"])
            series[label] = result.accuracies
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Figure 4 - accuracy convergence per round (CIFAR-10)",
                  ["codec"] + [f"round {i}" for i in range(cfg["rounds"])])
    record = ExperimentRecord("fig4", "accuracy convergence comparison across EBLCs")
    for label, accs in series.items():
        table.add_row(label, *[f"{a:.2%}" for a in accs])
        record.add(codec=label, accuracies=accs)
    save_results("fig4_convergence", table, record)

    # Paper finding: the EBLC curves track the uncompressed curve closely.
    final_raw = series["Uncompressed"][-1]
    for label in ("FedSZ-SZ2", "FedSZ-SZ3", "FedSZ-ZFP"):
        assert abs(series[label][-1] - final_raw) < 0.2, f"{label} diverged from uncompressed"
    # All runs must actually learn something.
    assert final_raw > series["Uncompressed"][0]

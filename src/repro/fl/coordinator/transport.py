"""Transport service: encode → transfer → decode of one client's update.

Wraps what used to be ``fl/simulation.py::_ship_update_task`` behind a
:class:`Transport` interface so the round engine can swap the simulated link
for a real one (gRPC, MPI) without touching scheduling or aggregation.  The
task function stays module-level over an explicit picklable argument struct —
the PR-4 contract that lets the ``process`` backend ship it to a GIL-free
worker — and :class:`SimulatedTransport` additionally offers an asyncio path
where the simulated delay becomes an ``await`` instead of a pool-blocking
sleep, so one thread can hold many uplinks in flight at once.

The uncompressed byte count of an update is computed analytically from array
sizes (:func:`repro.utils.serialization.packed_arrays_nbytes`); the historic
path re-encoded the entire state through ``RawUpdateCodec`` per client per
round just to measure ``len()`` of bytes it then threw away.

Three opt-in wire refinements (all bit-identical to the defaults):

* ``streaming=True`` decodes each update through the codec's incremental
  :meth:`~repro.fl.codec.UpdateCodec.stream_decoder`, fed packet by packet on
  the link's analytic arrival schedule, so Eqn. 1's ``t_D`` overlaps ``S'/B``;
  the measured overlap is reported on ``ShipResult.decode_overlap_seconds``.
* ``streaming_encode=True`` encodes through the codec's incremental
  :meth:`~repro.fl.codec.UpdateCodec.stream_encoder` and starts the simulated
  transfer at the *first ready piece* instead of at payload completion: the
  analytic packet schedule is re-timed behind the producer (a packet leaves
  once the wire is free *and* its bytes exist), so Eqn. 1's ``t_C`` overlaps
  ``S'/B``.  The hidden encode time is reported on
  ``ShipResult.encode_overlap_seconds`` (alongside the producer's first-piece
  latency and peak emission scratch); the recorded ``transfer_seconds`` stays
  the analytic wire time, so the deterministic fields are unchanged.
* On backends with the ``pickles_arguments`` trait, ``ship_batch`` moves each
  task's tensors through a :class:`~repro.utils.parallel.SharedMemoryArena`
  segment instead of pickling the buffers into the task.
"""

from __future__ import annotations

import abc
import asyncio
import bisect
import itertools
import os
import time
from concurrent.futures import as_completed
from dataclasses import dataclass, replace

import numpy as np

from repro.core.network import NetworkModel
from repro.fl.codec import UpdateCodec
from repro.fl.coordinator.residency import (install_reference,
                                            resident_reference)
from repro.utils.parallel import (ArenaHandle, ExecutionBackend,
                                  SharedMemoryArena, get_backend)
from repro.utils.serialization import packed_arrays_nbytes

__all__ = ["ShipTask", "ShipResult", "ship_update_task", "Transport",
           "SimulatedTransport", "DEFAULT_PACKET_BYTES"]

from repro.core.pipeline import FedSZReport

#: simulated wire segment size for the streaming decode path; small enough
#: that a multi-chunk Huffman stream spans many packets, large enough that
#: per-packet bookkeeping stays negligible against decode work
DEFAULT_PACKET_BYTES = 64 * 1024

#: distinguishes each transport's hoisted-reference registry token (ids can
#: be reused by the allocator; a counter cannot)
_REF_COUNTER = itertools.count()


@dataclass
class ShipTask:
    """Explicit picklable argument struct for :func:`ship_update_task`."""

    client_id: int
    state: dict[str, np.ndarray]
    codec: UpdateCodec
    network: NetworkModel
    #: reported transfer time is multiplied by this (1.0 = not a straggler)
    straggler_slowdown: float = 1.0
    #: retain the encoded payload on the result (journaling needs the bytes
    #: back; everyone else keeps memory flat by dropping them)
    keep_payload: bool = False
    #: decode through the codec's incremental stream decoder, paced by the
    #: link's analytic packet schedule, so decode time hides inside transfer
    #: time (bit-identical outputs either way)
    streaming: bool = False
    #: encode through the codec's incremental stream encoder and start the
    #: simulated transfer at the first ready piece, so encode time hides
    #: inside transfer time (bit-identical outputs either way)
    streaming_encode: bool = False
    #: simulated wire segment size used when ``streaming`` is set
    packet_bytes: int = DEFAULT_PACKET_BYTES
    #: when set, ``state`` is empty and the tensors live in a shared-memory
    #: arena segment — the worker attaches instead of unpickling the buffers
    #: (only used on backends with the ``pickles_arguments`` trait)
    state_handle: "ArenaHandle | None" = None
    #: when set, ``codec`` is a delta codec pickled *without* its reference
    #: state; the reference rides this shared arena (one segment per round,
    #: not per task) and the worker re-attaches it before encode/decode
    reference_handle: "ArenaHandle | None" = None
    #: the ``(token, generation)`` key of the hoisted reference in the
    #: worker-resident registry (see ``residency.install_reference``) — the
    #: first task to run in a worker materializes the arena there, the rest
    #: of the round resolves locally
    reference_token: "tuple[str, int] | None" = None


@dataclass
class ShipResult:
    """What one client's encode → transfer → decode stage hands back."""

    client_id: int
    payload_bytes: int
    raw_bytes: int
    encode_seconds: float
    transfer_seconds: float
    decode_seconds: float
    state: dict[str, np.ndarray]
    report: "FedSZReport | None"
    #: the encoded payload itself, only when ``ShipTask.keep_payload`` was set
    payload: "bytes | None" = None
    #: streaming path only: the portion of ``decode_seconds`` that the busy
    #: model places *before* the last byte's arrival — decode work hidden
    #: inside the transfer window (``None`` on the batch decode path)
    decode_overlap_seconds: "float | None" = None
    #: streaming-encode path only: encode work hidden inside the transfer
    #: window — the sequential ``encode + transfer`` span minus the overlapped
    #: wire completion under the producer-gated packet schedule (``None`` on
    #: the batch encode path)
    encode_overlap_seconds: "float | None" = None
    #: streaming-encode path only: seconds until the encoder's first payload
    #: piece was ready to leave (the stream's first-byte-out latency)
    first_byte_seconds: "float | None" = None
    #: streaming-encode path only: the encoder's analytic peak emission
    #: scratch estimate in bytes (0 when the codec does not track it)
    encode_scratch_bytes: int = 0


def _encode(task: ShipTask) -> tuple[bytes, "FedSZReport | None", float, int, float]:
    """Encode phase: payload, report, encode wall time, raw bytes, transfer time."""
    start = time.perf_counter()
    payload, report = task.codec.encode_with_report(task.state)
    encode_seconds = time.perf_counter() - start
    # the uncompressed size is a pure function of the arrays' dtypes/shapes
    # and key names — no need to serialize the whole state to measure it
    raw_bytes = packed_arrays_nbytes(task.state)
    transfer_seconds = task.network.transfer_time(len(payload)) * task.straggler_slowdown
    return payload, report, encode_seconds, raw_bytes, transfer_seconds


@dataclass
class _StreamedEncode:
    """What :func:`_stream_encode` measures beyond the batch encode phase."""

    payload: bytes
    report: "FedSZReport | None"
    encode_seconds: float
    raw_bytes: int
    transfer_seconds: float
    #: cumulative payload byte offset at the end of each producer piece
    piece_ends: "list[int]"
    #: cumulative encode seconds when each piece became available
    piece_ready: "list[float]"
    first_byte_seconds: float
    scratch_bytes: int


def _stream_encode(task: ShipTask) -> _StreamedEncode:
    """Encode phase through the codec's incremental stream encoder.

    The concatenated pieces are byte-identical to the batch
    :func:`_encode` payload (the codec's contract), so every downstream
    quantity derived from the payload is unchanged; what streaming adds is
    the per-piece availability times the wire model is gated on.
    """
    encoder = task.codec.stream_encoder()
    pieces: "list[bytes]" = []
    ends: "list[int]" = []
    ready: "list[float]" = []
    total = 0
    start = time.perf_counter()
    for piece in encoder.chunks(task.state):
        if not piece:
            continue
        now = time.perf_counter() - start
        pieces.append(piece)
        total += len(piece)
        ends.append(total)
        ready.append(now)
    encode_seconds = time.perf_counter() - start
    payload = b"".join(pieces)
    raw_bytes = packed_arrays_nbytes(task.state)
    transfer_seconds = task.network.transfer_time(len(payload)) * task.straggler_slowdown
    return _StreamedEncode(payload=payload, report=encoder.report,
                           encode_seconds=encode_seconds, raw_bytes=raw_bytes,
                           transfer_seconds=transfer_seconds, piece_ends=ends,
                           piece_ready=ready,
                           first_byte_seconds=ready[0] if ready else 0.0,
                           scratch_bytes=encoder.peak_scratch_bytes)


def _gated_schedule(schedule: "list[tuple[int, float]]", piece_ends: "list[int]",
                    piece_ready: "list[float]") -> "list[tuple[int, float]]":
    """Re-time an analytic packet schedule behind the encode producer.

    A wire busy model with time zero at encode start: packet ``i`` keeps its
    analytic wire duration but starts no earlier than the wire is free *and*
    no earlier than the producer piece containing its last byte was ready.
    With an instant producer (every ready time 0) the gated schedule equals
    the analytic one, so the last gated arrival minus the analytic transfer
    time is exactly the encode time the wire could not hide.
    """
    gated: "list[tuple[int, float]]" = []
    wire_free = 0.0
    prev = 0.0
    for end, arrival in schedule:
        duration = arrival - prev
        prev = arrival
        ready = 0.0
        if end > 0 and piece_ends:
            idx = min(bisect.bisect_left(piece_ends, end), len(piece_ends) - 1)
            ready = piece_ready[idx]
        wire_free = max(wire_free, ready) + duration
        gated.append((end, wire_free))
    return gated


def _decode(task: ShipTask, payload: bytes) -> tuple[dict[str, np.ndarray], float]:
    """Decode phase: server-side state and decode wall time."""
    start = time.perf_counter()
    state = task.codec.decode(payload)
    return state, time.perf_counter() - start


def _result(task: ShipTask, payload: bytes, report, encode_seconds: float,
            raw_bytes: int, transfer_seconds: float,
            state: dict[str, np.ndarray], decode_seconds: float,
            decode_overlap_seconds: "float | None" = None,
            encode_overlap_seconds: "float | None" = None,
            first_byte_seconds: "float | None" = None,
            encode_scratch_bytes: int = 0) -> ShipResult:
    return ShipResult(client_id=task.client_id, payload_bytes=len(payload),
                      raw_bytes=raw_bytes, encode_seconds=encode_seconds,
                      transfer_seconds=transfer_seconds,
                      decode_seconds=decode_seconds, state=state, report=report,
                      payload=payload if task.keep_payload else None,
                      decode_overlap_seconds=decode_overlap_seconds,
                      encode_overlap_seconds=encode_overlap_seconds,
                      first_byte_seconds=first_byte_seconds,
                      encode_scratch_bytes=encode_scratch_bytes)


def _stream_decode(task: ShipTask, payload: bytes,
                   schedule: "list[tuple[int, float]] | None" = None,
                   elapsed: float = 0.0):
    """Streaming decode of one payload against its packet-arrival schedule.

    Generator protocol: yields the simulated delay to wait before each packet
    (only when the link injects real delays — the sync driver sleeps it, the
    asyncio driver awaits it) and *returns* ``(state, decode_seconds,
    overlap_seconds)``.

    The overlap accounting is a busy-time model over the analytic schedule:
    packet ``i`` starts decoding no earlier than its arrival and no earlier
    than packet ``i-1`` finished, and ``finish()`` runs after the last packet.
    ``overlap_seconds`` is the decode compute that fits before the last byte's
    arrival — the part of Eqn. 1's ``t_D`` hidden inside ``S'/B``.  Every
    recorded quantity is analytic or per-call wall time, never a function of
    scheduling, so pooled and async drivers report identical semantics.

    ``schedule`` overrides the link's analytic arrivals (the streaming-encode
    path passes its producer-gated schedule, whose time zero is encode start);
    ``elapsed`` is how much of the schedule's clock has already passed in wall
    time when this generator starts (the encode wall time on that path).
    """
    decoder = task.codec.stream_decoder()
    if schedule is None:
        schedule = task.network.packet_arrivals(len(payload), task.packet_bytes,
                                                task.straggler_slowdown)
    view = memoryview(payload)
    busy_end = 0.0
    total = 0.0
    pos = 0
    wall_start = time.perf_counter() - elapsed
    for end, arrival in schedule:
        if task.network.simulate_delay:
            yield max(0.0, arrival - (time.perf_counter() - wall_start))
        start = time.perf_counter()
        decoder.feed(view[pos:end])
        elapsed = time.perf_counter() - start
        pos = end
        total += elapsed
        busy_end = max(busy_end, arrival) + elapsed
    start = time.perf_counter()
    state, _ = decoder.finish()
    elapsed = time.perf_counter() - start
    total += elapsed
    # decode work the transfer could not hide: everything past the last byte
    residual = busy_end + elapsed - schedule[-1][1]
    return state, total, max(0.0, total - residual)


def _run_stream_decode(task: ShipTask, payload: bytes,
                       schedule: "list[tuple[int, float]] | None" = None,
                       elapsed: float = 0.0):
    """Drive :func:`_stream_decode` synchronously (sleeping the delays)."""
    steps = _stream_decode(task, payload, schedule, elapsed)
    try:
        while True:
            delay = next(steps)
            if delay > 0:
                time.sleep(delay)
    except StopIteration as stop:
        return stop.value


async def _run_stream_decode_async(task: ShipTask, payload: bytes,
                                   schedule: "list[tuple[int, float]] | None" = None,
                                   elapsed: float = 0.0):
    """Drive :func:`_stream_decode` on the event loop (awaiting the delays)."""
    steps = _stream_decode(task, payload, schedule, elapsed)
    try:
        while True:
            # awaiting even a zero delay yields, so other uplinks' packets
            # interleave with this decode exactly as on a real wire
            await asyncio.sleep(next(steps))
    except StopIteration as stop:
        return stop.value


def ship_update_task(task: ShipTask) -> ShipResult:
    """Encode, transfer, and decode one client's update.

    Runs per client on the execution backend so that simulated network delays
    (``simulate_delay=True``, the paper's MPI-delay-injection methodology)
    overlap across clients instead of sleeping serially.  Module-level with an
    explicit argument struct so the process backend can ship it to a GIL-free
    worker; per-client compression statistics come from the codec's per-call
    reporting API, so they stay accurate at any worker count on any backend.

    With ``task.streaming`` the decode runs through the codec's incremental
    stream decoder paced by the link's packet schedule — same decoded bytes,
    same recorded ``transfer_seconds``, plus the measured decode/transfer
    overlap.  With ``task.streaming_encode`` the encode runs through the
    codec's incremental stream encoder and the packet schedule is re-timed
    behind the producer — same payload bytes, same recorded
    ``transfer_seconds``, plus the measured encode/transfer overlap (and the
    two compose: a producer-gated schedule feeds the stream decoder).  With
    ``task.state_handle`` the tensors are read from a shared-memory arena
    instead of the (empty) pickled ``state``; with ``task.reference_token``
    the delta codec's reference state is resolved from the worker-resident
    registry (materializing it from ``task.reference_handle`` on first use).
    """
    if task.reference_token is not None:
        token, generation = task.reference_token
        try:
            reference = resident_reference(token, generation)
        except LookupError:
            view = task.reference_handle.open()
            try:
                # own copies: the resident reference outlives the arena view
                reference = {name: np.array(array)
                             for name, array in view.arrays().items()}
            finally:
                try:
                    view.close()
                except BufferError:
                    pass  # see the state_handle close note below
            install_reference(token, generation, reference)
        task.codec.attach_reference(reference)
        return ship_update_task(replace(task, reference_handle=None,
                                        reference_token=None))
    if task.state_handle is not None:
        view = task.state_handle.open()
        try:
            resolved = replace(task, state=view.arrays(), state_handle=None)
            result = ship_update_task(resolved)
            del resolved
        finally:
            try:
                view.close()
            except BufferError:
                # a propagating exception's traceback still pins the arena
                # views; the attachment dies with the worker process, and the
                # segment itself is unlinked by its owning transport
                pass
        return result
    if task.streaming_encode:
        enc, schedule, completion, encode_overlap = _stream_encode_phase(task)
        if task.streaming:
            state, decode_seconds, overlap = _run_stream_decode(
                task, enc.payload, schedule, elapsed=enc.encode_seconds)
            return _result(task, enc.payload, enc.report, enc.encode_seconds,
                           enc.raw_bytes, enc.transfer_seconds, state,
                           decode_seconds, overlap, encode_overlap,
                           enc.first_byte_seconds, enc.scratch_bytes)
        if task.network.simulate_delay:
            # encode wall time already elapsed; only the remaining wire time
            # of the overlapped span is simulated
            time.sleep(max(0.0, completion - enc.encode_seconds))
        state, decode_seconds = _decode(task, enc.payload)
        return _result(task, enc.payload, enc.report, enc.encode_seconds,
                       enc.raw_bytes, enc.transfer_seconds, state,
                       decode_seconds, None, encode_overlap,
                       enc.first_byte_seconds, enc.scratch_bytes)
    payload, report, encode_seconds, raw_bytes, transfer_seconds = _encode(task)
    if task.streaming:
        state, decode_seconds, overlap = _run_stream_decode(task, payload)
        return _result(task, payload, report, encode_seconds, raw_bytes,
                       transfer_seconds, state, decode_seconds, overlap)
    if task.network.simulate_delay:
        time.sleep(transfer_seconds)
    state, decode_seconds = _decode(task, payload)
    return _result(task, payload, report, encode_seconds, raw_bytes,
                   transfer_seconds, state, decode_seconds)


def _stream_encode_phase(task: ShipTask):
    """Streaming-encode phase shared by the pooled and asyncio drivers.

    Returns ``(measurements, gated_schedule, wire_completion,
    encode_overlap_seconds)``.  The overlap is the sequential
    ``encode + transfer`` span minus the overlapped completion — the part of
    Eqn. 1's ``t_C`` the wire hid — and is 0 by construction when nothing
    overlaps (a single-packet payload gates on the last piece).
    """
    enc = _stream_encode(task)
    schedule = _gated_schedule(
        task.network.packet_arrivals(len(enc.payload), task.packet_bytes,
                                     task.straggler_slowdown),
        enc.piece_ends, enc.piece_ready)
    completion = schedule[-1][1]
    overlap = max(0.0, enc.encode_seconds + enc.transfer_seconds - completion)
    return enc, schedule, completion, overlap


class Transport(abc.ABC):
    """How an encoded update crosses the network to the aggregating server."""

    name: str = "base"

    @abc.abstractmethod
    def ship(self, task: ShipTask) -> ShipResult:
        """Move one client's update end to end; returns the decoded result."""

    def ship_batch(self, tasks: "list[ShipTask]") -> "list[ShipResult]":
        """Ship several updates; default is sequential :meth:`ship` calls."""
        return [self.ship(task) for task in tasks]

    def ship_iter(self, tasks: "list[ShipTask]"):
        """Yield ``(task_index, result)`` pairs as ships complete.

        The coordinator's aggregate-on-arrival path consumes this to fold each
        decoded update into the running aggregate (and release its buffers)
        the moment its ship lands, so peak resident decoded updates is bounded
        by the transport's concurrency, not the round's fan-in.  Results may
        surface out of task order on concurrent transports; each carries the
        same values it would in :meth:`ship_batch` (deterministic fields never
        depend on scheduling).  Default: sequential, in task order.
        """
        for index, task in enumerate(tasks):
            yield index, self.ship(task)

    async def ship_async(self, task: ShipTask) -> ShipResult:
        """Asyncio variant; default delegates to the synchronous path."""
        return self.ship(task)


class SimulatedTransport(Transport):
    """The in-process simulated link the paper's methodology models.

    ``ship_batch`` fans tasks over the configured
    :class:`~repro.utils.parallel.ExecutionBackend` pool (the historic round
    engine path, bit-identical at any worker count); :meth:`ship_async` is the
    overlapped-uplink path, where the simulated transfer delay is an
    ``asyncio.sleep`` await — many in-flight uplinks share one thread, and the
    round's wall clock approaches ``Σ codec time + max transfer`` instead of
    the serial sum.  Both paths produce identical :class:`ShipResult` values:
    every recorded quantity is analytic or per-task wall time, never a
    function of scheduling.
    """

    name = "simulated"

    def __init__(self, backend: "str | ExecutionBackend" = "thread",
                 max_workers: "int | None" = 1, streaming: bool = False,
                 packet_bytes: int = DEFAULT_PACKET_BYTES,
                 streaming_encode: bool = False) -> None:
        if packet_bytes < 1:
            raise ValueError("packet_bytes must be >= 1")
        self.backend = get_backend(backend)
        self.max_workers = max_workers
        self.streaming = bool(streaming)
        self.streaming_encode = bool(streaming_encode)
        self.packet_bytes = int(packet_bytes)
        # stable registry token for hoisted delta references: workers key
        # their resident copy on it, so each round's install replaces the last
        self._ref_token = f"delta-ref-{os.getpid()}-{next(_REF_COUNTER)}"

    def _hoist_reference(self, task: ShipTask, ref_map: dict,
                         arenas: "list[SharedMemoryArena]") -> ShipTask:
        """Strip a delta codec's reference into a shared arena (pickling path).

        The reference state is identical across a round's tasks (the round's
        broadcast), so one arena per distinct reference replaces ``n_clients``
        pickled copies of the model.  Non-delta codecs pass through untouched.
        """
        reference = getattr(task.codec, "_reference", None)
        if reference is None or not hasattr(task.codec, "detached"):
            return task
        key = id(reference)
        if key not in ref_map:
            arena = SharedMemoryArena(reference)
            arenas.append(arena)
            ref_map[key] = (arena.handle,
                            (f"{self._ref_token}.{len(ref_map)}",
                             int(task.codec._generation)))
        handle, token = ref_map[key]
        return replace(task, codec=task.codec.detached(),
                       reference_handle=handle, reference_token=token)

    def _configure(self, task: ShipTask) -> ShipTask:
        """Stamp this transport's wire knobs onto a task (task wins if set)."""
        if self.streaming and not task.streaming:
            task = replace(task, streaming=True, packet_bytes=self.packet_bytes)
        if self.streaming_encode and not task.streaming_encode:
            task = replace(task, streaming_encode=True,
                           packet_bytes=self.packet_bytes)
        return task

    def ship(self, task: ShipTask) -> ShipResult:
        return ship_update_task(self._configure(task))

    def ship_batch(self, tasks: "list[ShipTask]") -> "list[ShipResult]":
        tasks = [self._configure(task) for task in tasks]
        if not self.backend.pickles_arguments:
            return self.backend.map(ship_update_task, tasks, workers=self.max_workers)
        # pickling backend: ship tensor buffers through one shared-memory
        # arena per task instead of serializing them into the task pickle;
        # the transport owns the segments and destroys them once every
        # result (whose decoded state travels back by value) has returned
        arenas: "list[SharedMemoryArena]" = []
        ref_map: dict = {}
        try:
            shipped = []
            for task in tasks:
                task = self._hoist_reference(task, ref_map, arenas)
                arena = SharedMemoryArena(task.state)
                arenas.append(arena)
                shipped.append(replace(task, state={}, state_handle=arena.handle))
            return self.backend.map(ship_update_task, shipped, workers=self.max_workers)
        finally:
            for arena in arenas:
                arena.close()

    def ship_iter(self, tasks: "list[ShipTask]"):
        """Yield ``(task_index, result)`` in completion order over the pool.

        Same per-result values as :meth:`ship_batch` — only the order in which
        they surface (and therefore the caller's peak resident set) differs.
        Each pickling-backend arena is destroyed as soon as its own result
        returns, so arena residency tracks the in-flight window too.
        """
        tasks = [self._configure(task) for task in tasks]
        if not tasks:
            return
        workers = self.backend.resolve_workers(self.max_workers, len(tasks))
        if workers <= 1:
            # inline degrade: strict task order, one update resident at a time
            for index, task in enumerate(tasks):
                yield index, ship_update_task(task)
            return
        arenas: "dict[int, SharedMemoryArena]" = {}
        ref_arenas: "list[SharedMemoryArena]" = []
        ref_map: dict = {}
        with self.backend.executor(self.max_workers, n_items=len(tasks)) as pool:
            try:
                indexed = {}
                for index, task in enumerate(tasks):
                    if self.backend.pickles_arguments:
                        task = self._hoist_reference(task, ref_map, ref_arenas)
                        arena = SharedMemoryArena(task.state)
                        arenas[index] = arena
                        task = replace(task, state={}, state_handle=arena.handle)
                    indexed[pool.submit(ship_update_task, task)] = index
                for future in as_completed(indexed):
                    index = indexed[future]
                    arena = arenas.pop(index, None)
                    if arena is not None:
                        arena.close()
                    yield index, future.result()
            finally:
                for arena in arenas.values():
                    arena.close()
                # reference arenas are shared across tasks — destroyed only
                # once every ship of the round has surfaced
                for arena in ref_arenas:
                    arena.close()

    async def ship_async(self, task: ShipTask) -> ShipResult:
        task = self._configure(task)
        if task.streaming_encode:
            enc, schedule, completion, encode_overlap = _stream_encode_phase(task)
            if task.streaming:
                state, decode_seconds, overlap = await _run_stream_decode_async(
                    task, enc.payload, schedule, elapsed=enc.encode_seconds)
                return _result(task, enc.payload, enc.report, enc.encode_seconds,
                               enc.raw_bytes, enc.transfer_seconds, state,
                               decode_seconds, overlap, encode_overlap,
                               enc.first_byte_seconds, enc.scratch_bytes)
            if task.network.simulate_delay:
                # only the wire time the encode did not hide is awaited; the
                # event loop runs other uplinks meanwhile
                await asyncio.sleep(max(0.0, completion - enc.encode_seconds))
            state, decode_seconds = _decode(task, enc.payload)
            return _result(task, enc.payload, enc.report, enc.encode_seconds,
                           enc.raw_bytes, enc.transfer_seconds, state,
                           decode_seconds, None, encode_overlap,
                           enc.first_byte_seconds, enc.scratch_bytes)
        payload, report, encode_seconds, raw_bytes, transfer_seconds = _encode(task)
        if task.streaming:
            # per-packet awaits: the event loop runs other uplinks between
            # this client's packets, and decode rides inside the gaps
            state, decode_seconds, overlap = \
                await _run_stream_decode_async(task, payload)
            return _result(task, payload, report, encode_seconds, raw_bytes,
                           transfer_seconds, state, decode_seconds, overlap)
        if task.network.simulate_delay:
            # the await is the whole point: the event loop runs other uplinks
            # (their codec work and their delays) while this transfer is in
            # flight, so delays overlap without a worker pool
            await asyncio.sleep(transfer_seconds)
        state, decode_seconds = _decode(task, payload)
        return _result(task, payload, report, encode_seconds, raw_bytes,
                       transfer_seconds, state, decode_seconds)

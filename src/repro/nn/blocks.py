"""Composite blocks used by the ResNet50 and MobileNetV2 architectures.

Both blocks implement explicit backward passes that route the gradient through
the residual branch and the shortcut and sum the two contributions, exactly as
autograd would.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, ReLU, ReLU6
from repro.nn.module import Module, Sequential

__all__ = ["Bottleneck", "InvertedResidual", "ConvBNReLU"]


class ConvBNReLU(Sequential):
    """Conv → BatchNorm → ReLU(6) unit, the workhorse of both architectures."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, groups: int = 1, relu6: bool = False,
                 rng: np.random.Generator | None = None) -> None:
        padding = (kernel_size - 1) // 2
        super().__init__(
            Conv2d(in_channels, out_channels, kernel_size, stride=stride, padding=padding,
                   groups=groups, bias=False, rng=rng),
            BatchNorm2d(out_channels),
            ReLU6() if relu6 else ReLU(),
        )


class Bottleneck(Module):
    """ResNet bottleneck: 1x1 reduce → 3x3 → 1x1 expand with identity shortcut."""

    expansion = 4

    def __init__(self, in_channels: int, mid_channels: int, stride: int = 1,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        out_channels = mid_channels * self.expansion
        self.conv1 = Conv2d(in_channels, mid_channels, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(mid_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(mid_channels, mid_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(mid_channels)
        self.relu2 = ReLU()
        self.conv3 = Conv2d(mid_channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu_out = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample: Sequential | None = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.downsample = None
        self.out_channels = out_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = self.downsample(x) if self.downsample is not None else x
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.relu2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu_out(out + identity)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu_out.backward(grad)
        # the addition fans the gradient out to both branches unchanged
        grad_branch = self.bn3.backward(grad)
        grad_branch = self.conv3.backward(grad_branch)
        grad_branch = self.relu2.backward(grad_branch)
        grad_branch = self.bn2.backward(grad_branch)
        grad_branch = self.conv2.backward(grad_branch)
        grad_branch = self.relu1.backward(grad_branch)
        grad_branch = self.bn1.backward(grad_branch)
        grad_branch = self.conv1.backward(grad_branch)
        grad_shortcut = self.downsample.backward(grad) if self.downsample is not None else grad
        return grad_branch + grad_shortcut


class InvertedResidual(Module):
    """MobileNetV2 inverted residual: 1x1 expand → depthwise 3x3 → 1x1 project."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 expand_ratio: int = 4, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        layers: list[Module] = []
        if expand_ratio != 1:
            layers.append(ConvBNReLU(in_channels, hidden, kernel_size=1, relu6=True, rng=rng))
        layers.append(ConvBNReLU(hidden, hidden, kernel_size=3, stride=stride, groups=hidden,
                                 relu6=True, rng=rng))
        layers.append(Conv2d(hidden, out_channels, 1, bias=False, rng=rng))
        layers.append(BatchNorm2d(out_channels))
        self.block = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.block(x)
        return out + x if self.use_residual else out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad_branch = self.block.backward(grad)
        return grad_branch + grad if self.use_residual else grad_branch

"""Property-based roundtrip tests for the binary serialization helpers.

Hypothesis drives :func:`pack_arrays`/:func:`unpack_arrays` and
:func:`pack_bytes_dict`/:func:`unpack_bytes_dict` across the full dtype and
shape space the FedSZ pipeline can produce: 0-d arrays, empty arrays and
dicts, non-contiguous views, Fortran-ordered inputs, and every float/int
dtype.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.serialization import (
    pack_arrays,
    pack_bytes_dict,
    unpack_arrays,
    unpack_bytes_dict,
)

ALL_DTYPES = [
    np.float16, np.float32, np.float64,
    np.int8, np.int16, np.int32, np.int64,
    np.uint8, np.uint16, np.uint32, np.uint64,
]

array_strategy = hnp.arrays(
    dtype=st.sampled_from(ALL_DTYPES),
    shape=hnp.array_shapes(min_dims=0, max_dims=4, min_side=0, max_side=6),
)

keys = st.text(min_size=0, max_size=30)


def _assert_same(out: dict, data: dict) -> None:
    assert list(out) == list(data)
    for key in data:
        expected = np.asarray(data[key])
        np.testing.assert_array_equal(out[key], expected)
        assert out[key].dtype == expected.dtype
        assert out[key].shape == expected.shape


class TestArraysProperty:
    @settings(max_examples=120, deadline=None)
    @given(arrays=st.dictionaries(keys, array_strategy, max_size=5))
    def test_roundtrip_any_dtype_and_shape(self, arrays):
        _assert_same(unpack_arrays(pack_arrays(arrays)), arrays)

    @settings(max_examples=60, deadline=None)
    @given(data=hnp.arrays(dtype=st.sampled_from(ALL_DTYPES),
                           shape=hnp.array_shapes(min_dims=2, max_dims=3,
                                                  min_side=1, max_side=8)))
    def test_roundtrip_fortran_order(self, data):
        fortran = np.asfortranarray(data)
        out = unpack_arrays(pack_arrays({"f": fortran}))["f"]
        np.testing.assert_array_equal(out, fortran)
        assert out.shape == fortran.shape and out.dtype == fortran.dtype

    @settings(max_examples=60, deadline=None)
    @given(data=hnp.arrays(dtype=st.sampled_from(ALL_DTYPES),
                           shape=st.tuples(st.integers(2, 12), st.integers(2, 12))))
    def test_roundtrip_non_contiguous_views(self, data):
        views = {"strided": data[::2, ::2], "reversed": data[::-1], "column": data[:, 0]}
        _assert_same(unpack_arrays(pack_arrays(views)), views)

    def test_empty_dict(self):
        assert unpack_arrays(pack_arrays({})) == {}

    def test_zero_d_arrays_keep_shape(self):
        for dtype in ALL_DTYPES:
            out = unpack_arrays(pack_arrays({"s": np.array(3, dtype=dtype)}))["s"]
            assert out.shape == () and out.dtype == np.dtype(dtype)
            assert out == np.array(3, dtype=dtype)

    def test_empty_arrays_keep_shape(self):
        data = {"a": np.zeros((0,), np.float32), "b": np.zeros((3, 0, 2), np.int64)}
        _assert_same(unpack_arrays(pack_arrays(data)), data)

    def test_float_specials_roundtrip(self):
        data = {"specials": np.array([np.nan, np.inf, -np.inf, -0.0, 5e-324, 1e308])}
        out = unpack_arrays(pack_arrays(data))["specials"]
        np.testing.assert_array_equal(out, data["specials"])  # NaN-aware equality


class TestBytesDictProperty:
    @settings(max_examples=120, deadline=None)
    @given(entries=st.dictionaries(keys, st.binary(max_size=200), max_size=8))
    def test_roundtrip_preserves_entries_and_order(self, entries):
        out = unpack_bytes_dict(pack_bytes_dict(entries))
        assert out == entries
        assert list(out) == list(entries)

    @settings(max_examples=60, deadline=None)
    @given(key=st.text(min_size=1, max_size=60), value=st.binary(max_size=64))
    def test_single_entry_roundtrip(self, key, value):
        assert unpack_bytes_dict(pack_bytes_dict({key: value})) == {key: value}

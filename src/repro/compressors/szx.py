"""SZx-style ultrafast error-bounded lossy compressor.

SZx (Yu et al., HPDC'22) trades compression ratio for speed: the data is split
into fixed-size blocks; a block whose value spread fits inside the error bound
becomes a *constant block* storing only its midpoint, and the remaining blocks
store their values with truncated precision via cheap bit-wise operations.

This reproduction keeps both mechanisms and stays fully vectorized:

* constant blocks: ``(max - min) / 2 <= eps`` → store the float64 midpoint;
* non-constant blocks: values are offset by the global minimum of the
  non-constant data and uniformly quantized with step ``2 * eps``; a single
  shared bit width (the smallest width that covers the largest code) is used so
  the bit-packing is one :func:`numpy.packbits` call.  This is the "bit-wise
  truncation" stage expressed against a fixed-point representation.

Both paths honour the per-element absolute error bound.  The paper observed
SZx destroying model accuracy in their FL runs; our reimplementation preserves
the bound, so that particular finding does not reproduce (see EXPERIMENTS.md),
but the speed-vs-ratio positioning does.

Payload body layout::

    u32   block size
    u64   element count
    u8    bit width for non-constant values (255 = verbatim float64 escape)
    f64   offset (minimum of non-constant values)
    bytes constant-block bitmap
    f64[] constant block midpoints
    u64   packed-bits length, packed quantized values
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import ErrorBound, ErrorBoundMode, LossyCompressor
from repro.compressors.predictors import block_pad

__all__ = ["SZxCompressor"]

#: reserved bit-width flag: non-constant values stored verbatim as float64
#: (taken when the requested bound would need > 44-bit quantization codes,
#: where float64 quotient rounding could itself break the guarantee)
_VERBATIM_WIDTH = 255


class SZxCompressor(LossyCompressor):
    """Constant-block + fixed-point truncation compressor (SZx style)."""

    name = "szx"

    def __init__(self, error_bound: ErrorBound | float = 1e-2,
                 mode: ErrorBoundMode | str = ErrorBoundMode.REL,
                 block_size: int = 128) -> None:
        super().__init__(error_bound, mode)
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = int(block_size)

    # ------------------------------------------------------------------
    def _compress_float1d(self, data: np.ndarray, abs_bound: float) -> bytes:
        n = data.size
        if n == 0:
            return struct.pack("<IQBd", self.block_size, 0, 0, 0.0)

        blocks, original_len = block_pad(data, self.block_size)
        n_blocks = blocks.shape[0]
        block_min = blocks.min(axis=1)
        block_max = blocks.max(axis=1)
        with np.errstate(over="ignore"):
            # max - min overflows to inf for mixed-sign near-float64-max
            # blocks; inf > 2*bound simply routes them to the non-constant
            # path (whose verbatim escape keeps the bound)
            constant = (block_max - block_min) <= 2.0 * abs_bound
            # midpoints are kept in float64: float32 rounding could push the
            # reconstruction error just past a tight absolute bound.  Computed
            # as min + spread/2 (never `(max + min) / 2`, whose sum overflows
            # to inf for near-float64-max magnitudes) the result always lies
            # in [min, max] and stays finite for constant blocks.
            midpoints = block_min + 0.5 * (block_max - block_min)

        nonconst_values = blocks[~constant].ravel()
        if nonconst_values.size:
            offset_value = float(nonconst_values.min())
            with np.errstate(over="ignore", invalid="ignore"):
                code_floats = np.floor((nonconst_values - offset_value) / (2.0 * abs_bound) + 0.5)
            # Beyond ~2^44 the float64 quotient itself carries more rounding
            # error than the bound allows (and a uint64 cast would overflow
            # silently past 2^64): escape to verbatim float64 storage, flagged
            # by the reserved width 255.
            if not np.all(np.isfinite(code_floats)) or float(code_floats.max()) >= 2.0 ** 44:
                width = _VERBATIM_WIDTH
                packed = np.frombuffer(nonconst_values.astype(np.float64).tobytes(), dtype=np.uint8)
            else:
                codes = code_floats.astype(np.uint64)
                max_code = int(codes.max()) if codes.size else 0
                width = max(int(max_code).bit_length(), 1)
                shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
                bits = ((codes[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
                packed = np.packbits(bits.ravel())
        else:
            offset_value = 0.0
            width = 0
            packed = np.zeros(0, dtype=np.uint8)

        bitmap = np.packbits(constant.astype(np.uint8))
        const_mid = midpoints[constant]

        body = struct.pack("<IQBd", self.block_size, original_len, width, offset_value)
        body += struct.pack("<Q", n_blocks)
        body += struct.pack("<Q", bitmap.size) + bitmap.tobytes()
        body += struct.pack("<Q", const_mid.size) + const_mid.tobytes()
        body += struct.pack("<Q", packed.size) + packed.tobytes()
        return body

    # ------------------------------------------------------------------
    def _decompress_float1d(self, body: bytes, count: int, abs_bound: float,
                            dtype: np.dtype) -> np.ndarray:
        block_size, original_len, width, offset_value = struct.unpack_from("<IQBd", body, 0)
        offset = struct.calcsize("<IQBd")
        if original_len == 0:
            return np.zeros(count, dtype=np.float64)
        if width > 64 and width != _VERBATIM_WIDTH:
            # a shift count past 63 would silently wrap in numpy's uint64 ops
            raise ValueError(f"corrupt SZx payload: bit width {width}")
        (n_blocks,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        (bitmap_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        bitmap = np.frombuffer(body, dtype=np.uint8, count=bitmap_len, offset=offset)
        offset += bitmap_len
        constant = np.unpackbits(bitmap)[:n_blocks].astype(bool)
        (mid_count,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        midpoints = np.frombuffer(body, dtype=np.float64, count=mid_count, offset=offset)
        offset += 8 * mid_count
        (packed_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        packed = np.frombuffer(body, dtype=np.uint8, count=packed_len, offset=offset)

        values = np.empty((n_blocks, block_size), dtype=np.float64)
        if mid_count:
            values[constant] = midpoints[:, None]
        n_nonconst = int((~constant).sum())
        if n_nonconst:
            total = n_nonconst * block_size
            if width == _VERBATIM_WIDTH:
                decoded = np.frombuffer(packed.tobytes(), dtype=np.float64, count=total)
            else:
                bits = np.unpackbits(packed)[: total * width].reshape(total, width)
                weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
                codes = (bits.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)
                decoded = offset_value + codes.astype(np.float64) * 2.0 * abs_bound
            values[~constant] = decoded.reshape(n_nonconst, block_size)
        return values.ravel()[:original_len]

"""Shared fixtures for the FedSZ reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_dataset, train_test_split
from repro.nn import build_model


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def weight_like(rng: np.random.Generator) -> np.ndarray:
    """Spiky float32 array with the statistics of trained model weights."""
    data = rng.normal(0.0, 0.05, size=20_000)
    spikes = rng.choice(20_000, size=200, replace=False)
    data[spikes] += rng.normal(0.0, 0.5, size=200)
    return data.astype(np.float32)


@pytest.fixture
def smooth_signal() -> np.ndarray:
    """Smooth scientific-style signal (highly compressible)."""
    x = np.linspace(0, 6 * np.pi, 8_192)
    return (np.sin(x) + 0.3 * np.cos(3 * x)).astype(np.float32)


@pytest.fixture
def small_model():
    """Small CNN whose state dict has both large weights and metadata."""
    return build_model("simplecnn", num_classes=4, in_channels=3, image_size=16)


@pytest.fixture
def small_state(small_model):
    """State dict of the small CNN."""
    return small_model.state_dict()


@pytest.fixture
def tiny_dataset():
    """Tiny synthetic CIFAR-like dataset (fast to train on)."""
    return make_dataset("cifar10", n_samples=240, image_size=16, seed=7)


@pytest.fixture
def tiny_split(tiny_dataset):
    """Train/test split of the tiny dataset."""
    return train_test_split(tiny_dataset, test_fraction=0.25, seed=3)

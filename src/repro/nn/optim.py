"""Optimizers.

FedAvg performs local SGD on every client (Section VI-A of the paper), so SGD
with optional momentum and weight decay is the only optimizer the reproduction
needs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with momentum and L2 weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update to every parameter from its accumulated gradient."""
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= (self.lr * update).astype(np.float32)

    def zero_grad(self) -> None:
        """Reset every tracked parameter's gradient."""
        for param in self.parameters:
            param.zero_grad()

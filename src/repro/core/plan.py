"""Per-tensor compression plans and the pluggable policy registry.

FedSZ's evaluation (Tables I and V) shows the EBLC tradeoff is per-workload:
SZx is by far the fastest while SZ2/SZ3 win on ratio, and the paper's
future-work section proposes tuning the compression hyper-parameters per
tensor.  This module is that tuning layer:

* :class:`TensorPlan` — one lossy tensor's full compression decision: codec
  registry name, error bound, bound mode, and codec-specific options,
* :class:`CompressionPlan` — the ordered per-tensor plans for one state dict,
  with a compact wire form (:func:`pack_plan` / :func:`unpack_plan`) that the
  pipeline embeds in the version-4 bitstream manifest so mixed-codec streams
  are self-describing,
* :class:`CompressionPolicy` — the strategy interface mapping the lossy
  partition to a plan, with per-name overrides applied uniformly, and a
  registry (:func:`register_policy` / :func:`get_policy`) mirroring the codec
  registries:

  - ``uniform`` — one codec, one bound for every tensor (the paper's
    Algorithm 1 and the historic pipeline behaviour),
  - ``size-adaptive`` — per-tensor bounds shrunk on small, high-leverage
    tensors (absorbs :class:`AdaptiveBoundPolicy`),
  - ``mixed-codec`` — a fast codec (SZx by default) below an element-count
    cutoff, a high-ratio codec above it,
  - ``profiled`` — measured Pareto selection per link bandwidth (Problems 1
    and 2, Section IV); lives in :mod:`repro.core.profiling` and is
    registered here through a lazy factory.

Policies may attach machine-readable *provenance* — why each tensor got its
plan — under the reserved :data:`PLAN_PROVENANCE_KEY` options key; the
pipeline strips it before constructing codecs, so it rides the manifest's plan
summary without affecting the bitstream payloads (documented in FORMATS.md).

Layering: this module sits *below* :mod:`repro.core.pipeline` (which consumes
plans) and imports only the compressor base types, so policies never create
import cycles.
"""

from __future__ import annotations

import abc
import json
import math
import struct
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.compressors.base import ErrorBoundMode

__all__ = [
    "PLAN_PROVENANCE_KEY",
    "TensorPlan",
    "CompressionPlan",
    "pack_plan",
    "unpack_plan",
    "CompressionPolicy",
    "UniformPolicy",
    "AdaptiveBoundPolicy",
    "SizeAdaptivePolicy",
    "MixedCodecPolicy",
    "available_policies",
    "get_policy",
    "register_policy",
]

#: Bound-mode wire codes (u8 in the manifest plan block).
_MODE_CODES = {ErrorBoundMode.ABS: 0, ErrorBoundMode.REL: 1}
_CODE_MODES = {code: mode for mode, code in _MODE_CODES.items()}

#: Reserved ``TensorPlan.options`` key carrying policy provenance metadata.
#: Every other options key is forwarded to the codec factory; this one is
#: stripped by the pipeline before codec construction, so policies can record
#: *why* a tensor got its plan (the profiled policy's modeled times, Eqn.-1
#: verdict, ...) in the manifest's plan summary without perturbing payloads.
PLAN_PROVENANCE_KEY = "__provenance__"


@dataclass(frozen=True)
class TensorPlan:
    """The complete compression decision for one lossy tensor.

    ``options`` are forwarded to the codec factory and must be
    JSON-serializable (they ride along in the manifest's plan summary).
    """

    name: str
    codec: str
    error_bound: float
    mode: ErrorBoundMode = ErrorBoundMode.REL
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("TensorPlan needs a non-empty tensor name")
        if not self.codec:
            raise ValueError(f"TensorPlan for {self.name!r} needs a codec name")
        if not (isinstance(self.error_bound, (int, float))
                and math.isfinite(self.error_bound) and self.error_bound > 0):
            raise ValueError(f"TensorPlan for {self.name!r} needs a positive finite "
                             f"error bound, got {self.error_bound!r}")
        if isinstance(self.mode, str):
            object.__setattr__(self, "mode", ErrorBoundMode(self.mode))
        object.__setattr__(self, "error_bound", float(self.error_bound))
        object.__setattr__(self, "options", dict(self.options))
        try:
            json.dumps(self.options, sort_keys=True)
        except TypeError as exc:
            # fail at plan construction with the tensor named, not midway
            # through a compress inside pack_plan
            raise ValueError(f"TensorPlan options for {self.name!r} must be "
                             f"JSON-serializable: {exc}") from exc

    def evolve(self, **changes: object) -> "TensorPlan":
        """Copy of this plan with ``changes`` applied (validated again)."""
        return replace(self, **changes)


class CompressionPlan:
    """Ordered per-tensor plans for one state dict's lossy partition."""

    def __init__(self, entries: "Mapping[str, TensorPlan] | None" = None) -> None:
        self.entries: "OrderedDict[str, TensorPlan]" = OrderedDict()
        for name, plan in (entries or {}).items():
            if name != plan.name:
                raise ValueError(f"plan keyed {name!r} describes tensor {plan.name!r}")
            self.entries[name] = plan

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TensorPlan]:
        return iter(self.entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __getitem__(self, name: str) -> TensorPlan:
        return self.entries[name]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CompressionPlan) and self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompressionPlan({list(self.entries.values())!r})"

    @property
    def tensor_names(self) -> list[str]:
        """Planned tensor names in bitstream order."""
        return list(self.entries)

    @property
    def codecs(self) -> list[str]:
        """Sorted distinct codec names the plan uses."""
        return sorted({plan.codec for plan in self})

    def bounds(self) -> "OrderedDict[str, float]":
        """Per-tensor error-bound values (the historic ``last_bounds`` shape)."""
        return OrderedDict((name, plan.error_bound) for name, plan in self.entries.items())


# ---------------------------------------------------------------------------
# Wire form: the plan summary block embedded in the v4 manifest.
# ---------------------------------------------------------------------------

def _plan_corrupt(detail: str) -> ValueError:
    return ValueError(f"corrupt FedSZ plan summary: {detail}")


def _require(buf: bytes, offset: int, needed: int, what: str) -> None:
    if needed < 0 or offset + needed > len(buf):
        raise _plan_corrupt(f"{what} needs {needed} bytes at offset {offset}, "
                            f"but only {max(len(buf) - offset, 0)} remain")


def pack_plan(plan: CompressionPlan) -> bytes:
    """Serialize ``plan`` into the manifest's plan-summary block.

    Layout (little-endian)::

        u32  number of entries
        per entry:
          u16 + utf-8   tensor name
          u8  + ascii   codec registry name
          f64           error-bound value
          u8            bound mode (0 = abs, 1 = rel)
          u16 + utf-8   codec options as canonical JSON ("" when empty)
    """
    out = [struct.pack("<I", len(plan))]
    for entry in plan:
        name = entry.name.encode("utf-8")
        try:
            codec = entry.codec.encode("ascii")
        except UnicodeEncodeError:
            raise ValueError(f"codec name {entry.codec!r} of {entry.name!r} "
                             f"cannot be serialized (must be ASCII)") from None
        options = json.dumps(entry.options, sort_keys=True,
                             separators=(",", ":")).encode("utf-8") \
            if entry.options else b""
        if len(name) > 0xFFFF:
            raise ValueError(f"tensor name too long to serialize: {entry.name[:32]!r}...")
        if len(codec) > 0xFF:
            raise ValueError(f"codec name too long to serialize: {entry.codec!r}")
        if len(options) > 0xFFFF:
            raise ValueError(f"options of {entry.name!r} too large to serialize")
        out.append(struct.pack("<H", len(name)) + name)
        out.append(struct.pack("<B", len(codec)) + codec)
        out.append(struct.pack("<dB", entry.error_bound, _MODE_CODES[entry.mode]))
        out.append(struct.pack("<H", len(options)) + options)
    return b"".join(out)


def unpack_plan(buf: bytes, offset: int = 0) -> tuple[CompressionPlan, int]:
    """Parse a plan-summary block; returns the plan and the next offset.

    Every declared length is bounds-checked and every field validated, so a
    truncated or corrupted block raises :class:`ValueError` (never
    ``struct.error`` / ``UnicodeDecodeError`` / ``KeyError``).
    """
    _require(buf, offset, 4, "entry count")
    (count,) = struct.unpack_from("<I", buf, offset)
    offset += 4
    entries: "OrderedDict[str, TensorPlan]" = OrderedDict()
    for i in range(count):
        _require(buf, offset, 2, f"name length of entry {i}")
        (name_len,) = struct.unpack_from("<H", buf, offset)
        offset += 2
        _require(buf, offset, name_len, f"name of entry {i}")
        try:
            name = buf[offset:offset + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _plan_corrupt(f"entry {i} name is not valid UTF-8") from exc
        offset += name_len

        _require(buf, offset, 1, f"codec length of entry {i}")
        codec_len = buf[offset]
        offset += 1
        _require(buf, offset, codec_len, f"codec of entry {i}")
        try:
            codec = buf[offset:offset + codec_len].decode("ascii")
        except UnicodeDecodeError as exc:
            raise _plan_corrupt(f"entry {i} codec is not valid ASCII") from exc
        offset += codec_len

        _require(buf, offset, 9, f"bound of entry {i}")
        bound, mode_code = struct.unpack_from("<dB", buf, offset)
        offset += 9
        if mode_code not in _CODE_MODES:
            raise _plan_corrupt(f"entry {i} has unknown bound-mode code {mode_code}")

        _require(buf, offset, 2, f"options length of entry {i}")
        (opt_len,) = struct.unpack_from("<H", buf, offset)
        offset += 2
        _require(buf, offset, opt_len, f"options of entry {i}")
        options: dict = {}
        if opt_len:
            try:
                options = json.loads(buf[offset:offset + opt_len].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _plan_corrupt(f"entry {i} options are not valid JSON") from exc
            if not isinstance(options, dict):
                raise _plan_corrupt(f"entry {i} options are not a JSON object")
        offset += opt_len

        if name in entries:
            raise _plan_corrupt(f"duplicate plan entry for tensor {name!r}")
        try:
            entries[name] = TensorPlan(name, codec, bound, _CODE_MODES[mode_code], options)
        except ValueError as exc:
            raise _plan_corrupt(f"entry {i} ({name!r}) is invalid: {exc}") from exc
    return CompressionPlan(entries), offset


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

_OVERRIDABLE_FIELDS = frozenset({"codec", "error_bound", "mode", "options"})


def _require_registered_codec(codec: str, where: str) -> None:
    """Eagerly resolve a policy-configured codec name against the registry.

    A typo'd codec must fail where the policy is constructed (the CLI renders
    that as a one-line error), not midway through compressing a state dict —
    and never silently, as it would when no tensor happens to select it.
    """
    from repro.compressors.registry import available_lossy

    if codec not in available_lossy():
        raise ValueError(f"unknown lossy compressor {codec!r} in {where}; "
                         f"available: {available_lossy()}")


def _require_positive_bound(value: "float | None", where: str) -> None:
    """Eagerly validate a policy-configured bound value (``None`` = deferred
    to the pipeline config, which validates its own ``error_bound``)."""
    if value is None:
        return
    if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
        raise ValueError(f"{where} must be a positive finite error bound, "
                         f"got {value!r}")


class CompressionPolicy(abc.ABC):
    """Maps a lossy partition to a :class:`CompressionPlan`.

    ``overrides`` is a per-tensor-name escape hatch available on every policy:
    ``{"classifier.weight": {"codec": "sz3", "error_bound": 1e-4}}`` pins that
    tensor's plan fields regardless of what the policy decided.
    """

    #: registry name; subclasses override
    name: str = "base"

    def __init__(self, overrides: "Mapping[str, Mapping[str, object]] | None" = None) -> None:
        self.overrides = {name: dict(changes) for name, changes in (overrides or {}).items()}
        for name, changes in self.overrides.items():
            unknown = set(changes) - _OVERRIDABLE_FIELDS
            if unknown:
                raise ValueError(
                    f"override for {name!r} sets unknown plan fields {sorted(unknown)}; "
                    f"allowed: {sorted(_OVERRIDABLE_FIELDS)}")
            codec = changes.get("codec")
            if codec is not None:
                _require_registered_codec(codec, f"override for {name!r}")

    def _prepare(self, tensors: "Mapping[str, np.ndarray]", config,
                 delta: bool = False) -> object:
        """Whole-partition pre-pass; its result is handed to every
        :meth:`_plan_tensor` call.  Kept off ``self`` so one policy instance
        can build plans from several round-engine threads at once.

        ``delta`` marks the tensors as cross-round residuals (the delta
        codec's wire dicts) rather than raw state — content-profiling
        policies separate the two populations; everyone else ignores it.
        """
        return None

    def for_network(self, network) -> "CompressionPolicy":
        """Resolve this policy against one client's link.

        Bandwidth-aware policies (``profiled``) return a variant bound to
        ``network`` — the hook the round engine uses to give every client of a
        heterogeneous fleet its own per-link plan.  The default is a no-op:
        most policies decide independently of the link.
        """
        return self

    @abc.abstractmethod
    def _plan_tensor(self, name: str, array: np.ndarray, config,
                     context: object) -> TensorPlan:
        """The policy's decision for one tensor (before overrides)."""

    def build_plan(self, tensors: "Mapping[str, np.ndarray]", config,
                   delta: bool = False) -> CompressionPlan:
        """Plan every tensor of the lossy partition, then apply overrides.

        Overrides naming tensors absent from the partition raise — a typo'd
        name silently shipping the tensor at the default plan would defeat
        the override's purpose.  ``delta`` flags residual-tensor input (see
        :meth:`_prepare`).
        """
        unmatched = sorted(set(self.overrides) - set(tensors))
        if unmatched:
            raise ValueError(
                f"plan overrides name tensors absent from the lossy partition: "
                f"{unmatched}; lossy tensors: {sorted(tensors)}")
        tensors = OrderedDict((name, np.asarray(array)) for name, array in tensors.items())
        context = self._prepare(tensors, config, delta)
        entries: "OrderedDict[str, TensorPlan]" = OrderedDict()
        for name, array in tensors.items():
            plan = self._plan_tensor(name, array, config, context)
            changes = self.overrides.get(name)
            if changes:
                plan = plan.evolve(**changes)
            entries[name] = plan
        return CompressionPlan(entries)


class UniformPolicy(CompressionPolicy):
    """One codec, one bound for every tensor — the paper's Algorithm 1."""

    name = "uniform"

    def _plan_tensor(self, name: str, array: np.ndarray, config,
                     context: object) -> TensorPlan:
        return TensorPlan(name, config.lossy_compressor, config.error_bound,
                          config.error_mode)


@dataclass
class AdaptiveBoundPolicy:
    """Maps tensor names/shapes to per-tensor relative error bounds.

    Tensors are ranked by their share of the parameter count: the largest
    tensor keeps the base bound and smaller tensors get bounds shrunk by
    ``(size / largest_size) ** size_exponent`` (clamped at ``min_bound``), so
    small, high-leverage tensors are perturbed least.  This is the bound math
    behind the ``size-adaptive`` plan policy; it remains usable standalone.
    """

    base_bound: float = 1e-2
    min_bound: float = 1e-4
    #: exponent on the relative tensor size; 0 disables size-based adaptation
    size_exponent: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.min_bound <= self.base_bound:
            raise ValueError("need 0 < min_bound <= base_bound")
        if self.size_exponent < 0:
            raise ValueError("size_exponent must be non-negative")

    def bounds_for(self, tensors: "Mapping[str, np.ndarray]") -> "OrderedDict[str, float]":
        """Per-tensor relative bounds for the lossy partition ``tensors``.

        The largest tensor keeps the base bound; smaller tensors get bounds
        shrunk by ``(size / largest_size) ** size_exponent`` (clamped at
        ``min_bound``), so the tensors whose individual elements matter most
        are perturbed least.
        """
        if not tensors:
            return OrderedDict()
        largest = max(v.size for v in tensors.values())
        bounds: "OrderedDict[str, float]" = OrderedDict()
        for name, value in tensors.items():
            share = value.size / largest if largest else 1.0
            scale = share ** self.size_exponent if self.size_exponent else 1.0
            bounds[name] = float(np.clip(self.base_bound * scale, self.min_bound, self.base_bound))
        return bounds


class SizeAdaptivePolicy(CompressionPolicy):
    """Per-tensor bounds from :class:`AdaptiveBoundPolicy`, one codec.

    ``base_bound=None`` tracks the pipeline config's ``error_bound`` so the
    policy composes with any operating point without re-stating it.
    """

    name = "size-adaptive"

    def __init__(self, base_bound: float | None = None, min_bound: float = 1e-4,
                 size_exponent: float = 0.5,
                 overrides: "Mapping[str, Mapping[str, object]] | None" = None) -> None:
        super().__init__(overrides)
        self.base_bound = base_bound
        self.min_bound = float(min_bound)
        self.size_exponent = float(size_exponent)
        _require_positive_bound(base_bound, "size-adaptive base_bound")
        _require_positive_bound(self.min_bound, "size-adaptive min_bound")
        if self.size_exponent < 0:
            raise ValueError("size_exponent must be non-negative")
        if base_bound is not None:
            # the full relationship (min <= base) is checkable eagerly too
            AdaptiveBoundPolicy(base_bound, min(self.min_bound, base_bound),
                                self.size_exponent)

    def _bound_policy(self, config) -> AdaptiveBoundPolicy:
        base = self.base_bound if self.base_bound is not None else config.error_bound
        return AdaptiveBoundPolicy(base, min(self.min_bound, base), self.size_exponent)

    def _prepare(self, tensors: "Mapping[str, np.ndarray]", config,
                 delta: bool = False) -> object:
        # bounds depend on the whole partition (relative tensor sizes)
        return self._bound_policy(config).bounds_for(tensors)

    def _plan_tensor(self, name: str, array: np.ndarray, config,
                     context: object) -> TensorPlan:
        return TensorPlan(name, config.lossy_compressor, context[name],
                          config.error_mode)


class MixedCodecPolicy(CompressionPolicy):
    """Fast codec below an element-count cutoff, high-ratio codec above it.

    The paper's Table I tradeoff in plan form: SZx's throughput advantage
    matters most on the many small tensors where per-tensor overhead dominates,
    while SZ2/SZ3's ratio advantage compounds on the few large tensors that
    hold most of the bytes.  ``large_codec=None`` tracks the config's
    ``lossy_compressor``.
    """

    name = "mixed-codec"

    def __init__(self, small_codec: str = "szx", large_codec: str | None = None,
                 size_cutoff: int = 1 << 16,
                 small_bound: float | None = None, large_bound: float | None = None,
                 overrides: "Mapping[str, Mapping[str, object]] | None" = None) -> None:
        super().__init__(overrides)
        if size_cutoff < 0:
            raise ValueError("size_cutoff must be non-negative")
        if not small_codec:
            raise ValueError("small_codec must be a codec name")
        _require_registered_codec(small_codec, "mixed-codec small tier")
        if large_codec is not None:
            _require_registered_codec(large_codec, "mixed-codec large tier")
        _require_positive_bound(small_bound, "mixed-codec small_bound")
        _require_positive_bound(large_bound, "mixed-codec large_bound")
        self.small_codec = str(small_codec)
        self.large_codec = str(large_codec) if large_codec is not None else None
        self.size_cutoff = int(size_cutoff)
        self.small_bound = small_bound
        self.large_bound = large_bound

    def _plan_tensor(self, name: str, array: np.ndarray, config,
                     context: object) -> TensorPlan:
        small = array.size < self.size_cutoff
        codec = self.small_codec if small \
            else (self.large_codec or config.lossy_compressor)
        bound = (self.small_bound if small else self.large_bound)
        if bound is None:
            bound = config.error_bound
        return TensorPlan(name, codec, bound, config.error_mode)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _profiled_policy_factory(**kwargs: object) -> CompressionPolicy:
    """Lazy factory for the ``profiled`` policy.

    :mod:`repro.core.profiling` sits above this module (it imports the codec
    registry and the network model), so the registry resolves it on first use
    instead of importing it here and closing a cycle.
    """
    from repro.core.profiling import ProfiledPolicy

    return ProfiledPolicy(**kwargs)


_POLICIES: dict[str, Callable[..., CompressionPolicy]] = {
    UniformPolicy.name: UniformPolicy,
    SizeAdaptivePolicy.name: SizeAdaptivePolicy,
    MixedCodecPolicy.name: MixedCodecPolicy,
    "profiled": _profiled_policy_factory,
}


def available_policies() -> list[str]:
    """Names of the registered plan policies."""
    return sorted(_POLICIES)


def register_policy(name: str, factory: Callable[..., CompressionPolicy],
                    overwrite: bool = False) -> None:
    """Register a new plan-policy factory under ``name``."""
    if name in _POLICIES and not overwrite:
        raise ValueError(f"plan policy {name!r} already registered")
    _POLICIES[name] = factory


def get_policy(name: str, **kwargs: object) -> CompressionPolicy:
    """Instantiate a plan policy by registry name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown plan policy {name!r}; "
                         f"available: {available_policies()}") from None
    return factory(**kwargs)

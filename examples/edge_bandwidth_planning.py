"""Deciding whether (and how) to compress on a bandwidth-constrained edge device.

The paper's motivating scenario is an edge client (autonomous vehicle,
Raspberry-Pi-class gateway) that must upload a model update over a slow,
variable wide-area link.  This example walks through the decision procedure the
paper formalizes, then drives it end to end on a simulated heterogeneous fleet:

1. profile the candidate error-bounded compressors on the actual update
   (Problem 1, Eqn. 2),
2. evaluate Eqn. (1) over a range of bandwidths to find where compression stops
   paying off (Figure 8's crossover),
3. print a recommendation per bandwidth,
4. run one federated round over an 8-client fleet whose uplinks span two
   orders of magnitude, with the ``profiled`` plan policy resolving each
   client's per-tensor plan against *its own* link — the slow clients ship
   aggressively-compressed updates while the fast ones fall back to the
   lossless ``verbatim`` tier, all in the same round.

Run with::

    python examples/edge_bandwidth_planning.py [--model resnet50]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import (
    DeviceProfile,
    FedSZConfig,
    NetworkModel,
    communication_time,
    compression_is_worthwhile,
    crossover_bandwidth,
    make_client_networks,
    select_compressor,
)
from repro.core.plan import PLAN_PROVENANCE_KEY
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec
from repro.nn import build_model
from repro.utils.timer import format_bytes, format_seconds

BANDWIDTHS = (1, 10, 50, 100, 500, 1000, 10_000)
FLEET_SIZE = 8


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet50", help="model whose update is being shipped")
    parser.add_argument("--bound", type=float, default=1e-2, help="relative error bound")
    parser.add_argument("--base-bandwidth", type=float, default=50.0,
                        help="median fleet uplink in Mbps")
    parser.add_argument("--bandwidth-spread", type=float, default=30.0,
                        help="fleet heterogeneity: uplinks span "
                             "[base/spread, base*spread]")
    return parser.parse_args()


def fleet_round(args: argparse.Namespace) -> None:
    """One federated round with per-link profiled plans on an 8-client fleet."""
    dataset = make_dataset("cifar10", n_samples=480, image_size=16, seed=7)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=3)

    def factory():
        return build_model("simplecnn", num_classes=10, in_channels=3,
                           image_size=16, seed=0)

    networks = make_client_networks(FLEET_SIZE,
                                    base=NetworkModel(bandwidth_mbps=args.base_bandwidth),
                                    bandwidth_spread=args.bandwidth_spread, seed=11)
    config = FedSZConfig(error_bound=args.bound, policy="profiled",
                         policy_options={"bandwidth_mbps": args.base_bandwidth,
                                         "max_bound": args.bound})
    sim = FederatedSimulation(factory, train, test, n_clients=FLEET_SIZE,
                              codec=FedSZUpdateCodec(config), networks=networks,
                              lr=0.15, seed=5)
    record = sim.run_round(0)

    print(f"  {'client':>6}  {'uplink':>12}  {'plan (codec mix)':<24}  "
          f"{'ratio':>7}  {'modeled':>9}  {'raw':>9}")
    for cid in record.participants:
        plan = record.client_plans[cid]
        report = record.client_reports[cid]
        counts: dict[str, int] = {}
        modeled = raw = 0.0
        for entry in plan:
            counts[entry.codec] = counts.get(entry.codec, 0) + 1
            provenance = entry.options[PLAN_PROVENANCE_KEY]
            modeled += provenance["modeled_seconds"]
            raw += provenance["uncompressed_seconds"]
        mix = " + ".join(f"{n}x{codec}" for codec, n in sorted(counts.items()))
        print(f"  {cid:>6}  {networks[cid].bandwidth_mbps:>8.1f} Mbps  {mix:<24}  "
              f"{report.ratio:>6.2f}x  {format_seconds(modeled):>9}  "
              f"{format_seconds(raw):>9}")
    distinct = {tuple((e.codec, e.error_bound) for e in record.client_plans[cid])
                for cid in record.participants}
    print(f"  -> {len(distinct)} distinct plans across {len(record.participants)} "
          f"clients; round accuracy {record.accuracy:.2%}, "
          f"{format_bytes(record.transmitted_bytes)} uploaded "
          f"({record.compression_ratio:.2f}x vs raw)")


def main() -> None:
    args = parse_args()
    model = build_model(args.model, num_classes=10, in_channels=3, image_size=32)
    state = model.state_dict()
    weights = np.concatenate([v.ravel() for k, v in state.items()
                              if "weight" in k and v.size > 1024])
    pi5 = DeviceProfile()

    print(f"update: {args.model}, {format_bytes(weights.nbytes)} of lossy-compressible weights\n")

    print("step 1 - profile the candidate compressors (Problem 1):")
    best, grid = select_compressor(weights, candidates=("sz2", "sz3", "szx", "zfp"),
                                   error_bounds=(args.bound,), bandwidth_mbps=10.0,
                                   device=pi5)
    for entry in grid:
        print(f"  {entry.compressor:4s}  ratio {entry.ratio:6.2f}x  "
              f"compress {format_seconds(entry.compress_seconds)}  "
              f"decompress {format_seconds(entry.decompress_seconds)}  "
              f"feasible={entry.feasible}")
    print(f"  -> selected: {best.compressor} (ratio {best.ratio:.2f}x; timings "
          f"already {pi5.name}-scaled)\n")

    compressed_bytes = weights.nbytes / best.ratio
    overhead = best.compress_seconds + best.decompress_seconds
    crossover = crossover_bandwidth(overhead, 0.0, weights.nbytes, compressed_bytes)
    print(f"step 2 - Eqn. (1) crossover with Pi-5-scaled overhead: {crossover:,.0f} Mbps\n")

    print("step 3 - recommendation per uplink bandwidth:")
    for bandwidth in BANDWIDTHS:
        plain = communication_time(weights.nbytes, bandwidth)
        with_fedsz = overhead + communication_time(compressed_bytes, bandwidth)
        decision = "compress with FedSZ" if compression_is_worthwhile(
            overhead, 0.0, weights.nbytes, compressed_bytes, bandwidth) else "send uncompressed"
        print(f"  {bandwidth:>6,} Mbps: raw {format_seconds(plain):>9}  "
              f"FedSZ {format_seconds(with_fedsz):>9}  ->  {decision}")

    print(f"\nstep 4 - one round over a heterogeneous {FLEET_SIZE}-client fleet "
          f"(profiled policy, per-link plans):")
    fleet_round(args)


if __name__ == "__main__":
    main()

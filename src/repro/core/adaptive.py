"""Per-tensor adaptive error bounds (the paper's first future-work direction).

Section VIII-B proposes tuning the compression hyper-parameters to mitigate the
accuracy loss compression introduces.  A single global relative bound treats a
16-element BatchNorm-adjacent projection and a million-element FC layer the
same way, even though a perturbation of the former moves the network's output
far more per element.  :class:`AdaptiveBoundPolicy` assigns every lossy tensor
its own relative bound:

* tensors are ranked by their share of the parameter count: the largest tensor
  keeps the base bound and smaller tensors get bounds shrunk by
  ``(size / largest_size) ** size_exponent``, so small, high-leverage tensors
  are perturbed least,
* bounds are clamped to ``[min_bound, base_bound]`` so no tensor is ever
  compressed more aggressively than the user's requested operating point.

:class:`AdaptiveFedSZCompressor` plugs the policy into the standard pipeline;
its bitstream stays self-describing because every per-tensor payload already
records the absolute bound it used.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.compressors.registry import get_lossy
from repro.core.config import FedSZConfig
from repro.core.pipeline import FedSZCompressor, lossy_kwargs_from_config

__all__ = ["AdaptiveBoundPolicy", "AdaptiveFedSZCompressor"]


@dataclass
class AdaptiveBoundPolicy:
    """Maps tensor names/shapes to per-tensor relative error bounds."""

    base_bound: float = 1e-2
    min_bound: float = 1e-4
    #: exponent on the relative tensor size; 0 disables size-based adaptation
    size_exponent: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.min_bound <= self.base_bound:
            raise ValueError("need 0 < min_bound <= base_bound")
        if self.size_exponent < 0:
            raise ValueError("size_exponent must be non-negative")

    def bounds_for(self, tensors: dict[str, np.ndarray]) -> "OrderedDict[str, float]":
        """Per-tensor relative bounds for the lossy partition ``tensors``.

        The largest tensor keeps the base bound; smaller tensors get bounds
        shrunk by ``(size / largest_size) ** size_exponent`` (clamped at
        ``min_bound``), so the tensors whose individual elements matter most
        are perturbed least.
        """
        if not tensors:
            return OrderedDict()
        largest = max(v.size for v in tensors.values())
        bounds: "OrderedDict[str, float]" = OrderedDict()
        for name, value in tensors.items():
            share = value.size / largest if largest else 1.0
            scale = share ** self.size_exponent if self.size_exponent else 1.0
            bounds[name] = float(np.clip(self.base_bound * scale, self.min_bound, self.base_bound))
        return bounds


class AdaptiveFedSZCompressor(FedSZCompressor):
    """FedSZ pipeline that compresses each lossy tensor with its own bound."""

    def __init__(self, config: FedSZConfig | None = None,
                 policy: AdaptiveBoundPolicy | None = None) -> None:
        config = config or FedSZConfig()
        super().__init__(config)
        self.policy = policy or AdaptiveBoundPolicy(base_bound=config.error_bound)
        self.last_bounds: "OrderedDict[str, float]" = OrderedDict()

    def compress_state_dict(self, state: dict[str, np.ndarray]) -> bytes:
        partition = self.partition(state)
        self.last_bounds = self.policy.bounds_for(dict(partition.lossy))

        # Temporarily swap the lossy compressor per tensor by overriding the
        # single-compressor parent with a dispatching wrapper.
        original_lossy = self.lossy

        class _Dispatching:
            def __init__(self, outer: "AdaptiveFedSZCompressor") -> None:
                self._outer = outer
                self._iter = iter(outer.last_bounds.items())

            def compress(self, array: np.ndarray) -> bytes:
                name, bound = next(self._iter)
                compressor = get_lossy(self._outer.config.lossy_compressor,
                                       error_bound=bound, mode=self._outer.config.error_mode,
                                       **lossy_kwargs_from_config(self._outer.config))
                return compressor.compress(array)

            def decompress(self, payload: bytes) -> np.ndarray:  # pragma: no cover - unused here
                return original_lossy.decompress(payload)

        self.lossy = _Dispatching(self)  # type: ignore[assignment]
        try:
            return super().compress_state_dict(state)
        finally:
            self.lossy = original_lossy

"""Ablation: the Algorithm-1 partition threshold.

Sweeps the minimum-element-count threshold that decides whether a weight tensor
is lossy-compressed and reports the end-to-end compression ratio and the number
of tensors routed to each partition.  The design point the paper uses (a small
threshold around 1 KiB of elements) captures nearly all the ratio; raising the
threshold towards "never lossy" degrades to the lossless-only baseline.
"""

from __future__ import annotations

import numpy as np

from bench_utils import save_results, trained_like_state
from repro.core import FedSZCompressor, FedSZConfig, partition_state_dict
from repro.metrics import ExperimentRecord, Table

THRESHOLDS = (0, 256, 1024, 4096, 65536, 10**9)


def bench_ablation_threshold(benchmark):
    state = trained_like_state("resnet50", seed=2)

    def run():
        rows = []
        for threshold in THRESHOLDS:
            config = FedSZConfig(error_bound=1e-2, threshold=threshold)
            partition = partition_state_dict(state, config)
            fedsz = FedSZCompressor(config)
            payload = fedsz.compress_state_dict(state)
            rows.append({
                "threshold": threshold,
                "lossy_tensors": len(partition.lossy),
                "lossless_tensors": len(partition.lossless),
                "lossy_fraction": partition.lossy_fraction,
                "ratio": fedsz.last_report.ratio,
                "compressed_bytes": len(payload),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Ablation - partition threshold sweep (ResNet50, SZ2 @1e-2)",
                  ["threshold (elements)", "# lossy tensors", "# lossless tensors",
                   "lossy byte fraction", "update ratio"])
    record = ExperimentRecord("ablation_threshold", "partition threshold sweep")
    for row in rows:
        table.add_row(row["threshold"], row["lossy_tensors"], row["lossless_tensors"],
                      f"{row['lossy_fraction']:.2%}", f"{row['ratio']:.2f}x")
        record.add(**row)
    save_results("ablation_threshold", table, record)

    by_threshold = {r["threshold"]: r for r in rows}
    # A huge threshold disables lossy compression entirely and loses most of the ratio.
    assert by_threshold[10**9]["lossy_tensors"] == 0
    assert by_threshold[1024]["ratio"] > by_threshold[10**9]["ratio"] * 1.5
    # The default threshold keeps nearly all of the threshold-0 ratio.
    assert by_threshold[1024]["ratio"] > 0.9 * by_threshold[0]["ratio"]
    # More permissive thresholds route monotonically more tensors to the lossy side.
    lossy_counts = [by_threshold[t]["lossy_tensors"] for t in THRESHOLDS]
    assert lossy_counts == sorted(lossy_counts, reverse=True)

"""Streaming wire path: packet schedules, transport overlap, and the round
engine with ``streaming=True``.

The determinism contract under test: switching the transport to the streaming
decode path (pooled or asyncio-overlapped, any backend) changes *when* decode
work happens, never *what* is decoded or any analytically recorded quantity.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.config import FedSZConfig
from repro.core.network import NetworkModel
from repro.data.datasets import make_dataset
from repro.fl.codec import FedSZUpdateCodec, RawUpdateCodec
from repro.fl.coordinator.transport import (DEFAULT_PACKET_BYTES, ShipTask,
                                            SimulatedTransport,
                                            ship_update_task)
from repro.fl.simulation import FederatedSimulation
from repro.nn import build_model


def _state(seed: int = 12) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {"w": rng.normal(0, 1, (32, 64)).astype(np.float32),
            "b": rng.normal(0, 1, 32).astype(np.float32)}


def _task(codec, network, **kwargs) -> ShipTask:
    return ShipTask(client_id=0, state=_state(), codec=codec, network=network,
                    **kwargs)


class TestPacketArrivals:
    def test_last_arrival_equals_transfer_time(self):
        net = NetworkModel(bandwidth_mbps=7.0, latency_s=0.02)
        for size, packet, slowdown in [(1, 64, 1.0), (64, 64, 1.0),
                                       (65, 64, 2.5), (1 << 20, 4096, 1.0)]:
            schedule = net.packet_arrivals(size, packet, slowdown)
            assert schedule[-1][0] == size
            assert schedule[-1][1] == net.transfer_time(size) * slowdown

    def test_monotone_prefixes_and_arrivals(self):
        net = NetworkModel(bandwidth_mbps=3.0, latency_s=0.001)
        schedule = net.packet_arrivals(10_000, 999)
        ends = [end for end, _ in schedule]
        times = [at for _, at in schedule]
        assert ends == sorted(set(ends)) and times == sorted(times)
        assert all(0 < b - a <= 999 for a, b in zip([0] + ends[:-1], ends))

    def test_empty_payload_still_arrives(self):
        net = NetworkModel(bandwidth_mbps=5.0, latency_s=0.5)
        assert net.packet_arrivals(0, 1024) == [(0, 0.5)]

    def test_packet_bytes_validated(self):
        with pytest.raises(ValueError, match="packet_bytes"):
            NetworkModel().packet_arrivals(100, 0)


class TestStreamingShip:
    @pytest.mark.parametrize("codec_factory", [RawUpdateCodec,
                                               lambda: FedSZUpdateCodec(FedSZConfig())])
    def test_streaming_matches_batch(self, codec_factory):
        codec = codec_factory()
        net = NetworkModel(bandwidth_mbps=4.0, latency_s=0.01)
        batch = ship_update_task(_task(codec, net))
        stream = ship_update_task(_task(codec, net, streaming=True,
                                        packet_bytes=2048))
        assert list(stream.state) == list(batch.state)
        for key in batch.state:
            np.testing.assert_array_equal(stream.state[key], batch.state[key])
            assert stream.state[key].dtype == batch.state[key].dtype
        # analytically recorded quantities are scheduling-independent
        assert stream.transfer_seconds == batch.transfer_seconds
        assert stream.payload_bytes == batch.payload_bytes
        assert stream.raw_bytes == batch.raw_bytes

    def test_overlap_reported_only_when_streaming(self):
        codec = FedSZUpdateCodec(FedSZConfig())
        net = NetworkModel(bandwidth_mbps=4.0)
        batch = ship_update_task(_task(codec, net))
        stream = ship_update_task(_task(codec, net, streaming=True,
                                        packet_bytes=1024))
        assert batch.decode_overlap_seconds is None
        assert stream.decode_overlap_seconds is not None
        assert 0.0 <= stream.decode_overlap_seconds <= stream.decode_seconds + 1e-9

    def test_straggler_slowdown_scales_schedule_and_transfer(self):
        codec = RawUpdateCodec()
        net = NetworkModel(bandwidth_mbps=4.0, latency_s=0.02)
        plain = ship_update_task(_task(codec, net, streaming=True))
        slowed = ship_update_task(_task(codec, net, streaming=True,
                                        straggler_slowdown=3.0))
        assert slowed.transfer_seconds == pytest.approx(3.0 * plain.transfer_seconds)

    def test_async_streaming_matches_sync(self):
        codec = FedSZUpdateCodec(FedSZConfig())
        net = NetworkModel(bandwidth_mbps=4.0)
        transport = SimulatedTransport(backend="serial", streaming=True,
                                       packet_bytes=4096)
        sync_result = transport.ship(_task(codec, net))
        async_result = asyncio.run(transport.ship_async(_task(codec, net)))
        for key in sync_result.state:
            np.testing.assert_array_equal(async_result.state[key],
                                          sync_result.state[key])
        assert async_result.transfer_seconds == sync_result.transfer_seconds
        assert async_result.decode_overlap_seconds is not None

    def test_simulated_delay_streams_in_real_time(self):
        # a real-sleep link must still produce identical bytes when streamed
        codec = RawUpdateCodec()
        net = NetworkModel(bandwidth_mbps=2000.0, latency_s=0.001,
                           simulate_delay=True)
        batch = ship_update_task(_task(codec, net))
        stream = ship_update_task(_task(codec, net, streaming=True,
                                        packet_bytes=8192))
        for key in batch.state:
            np.testing.assert_array_equal(stream.state[key], batch.state[key])
        assert stream.transfer_seconds == batch.transfer_seconds


class TestTransportKnobs:
    def test_transport_stamps_streaming_onto_tasks(self):
        transport = SimulatedTransport(backend="serial", streaming=True,
                                       packet_bytes=1234)
        stamped = transport._configure(_task(RawUpdateCodec(), NetworkModel()))
        assert stamped.streaming and stamped.packet_bytes == 1234
        off = SimulatedTransport(backend="serial")
        plain = off._configure(_task(RawUpdateCodec(), NetworkModel()))
        assert not plain.streaming and plain.packet_bytes == DEFAULT_PACKET_BYTES

    def test_task_level_setting_wins_over_transport(self):
        transport = SimulatedTransport(backend="serial", streaming=True,
                                       packet_bytes=1234)
        task = _task(RawUpdateCodec(), NetworkModel(), streaming=True,
                     packet_bytes=555)
        assert transport._configure(task).packet_bytes == 555

    def test_invalid_packet_bytes_rejected(self):
        with pytest.raises(ValueError, match="packet_bytes"):
            SimulatedTransport(packet_bytes=0)


class TestArenaShipBatch:
    """ship_batch on a pickling backend moves tensors through shared memory;
    results must match the in-process reference exactly."""

    @pytest.mark.parametrize("streaming", [False, True])
    def test_process_backend_matches_serial(self, streaming):
        codec = FedSZUpdateCodec(FedSZConfig())
        net = NetworkModel(bandwidth_mbps=4.0)
        tasks = [ShipTask(client_id=i, state=_state(seed=i), codec=codec,
                          network=net) for i in range(3)]
        serial = SimulatedTransport(backend="serial",
                                    streaming=streaming).ship_batch(tasks)
        pooled = SimulatedTransport(backend="process", max_workers=2,
                                    streaming=streaming).ship_batch(tasks)
        assert [r.client_id for r in pooled] == [r.client_id for r in serial]
        for a, b in zip(serial, pooled):
            assert list(a.state) == list(b.state)
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])
            assert a.payload_bytes == b.payload_bytes
            assert a.transfer_seconds == b.transfer_seconds


class TestSimulationStreaming:
    @pytest.fixture(scope="class")
    def fl_data(self):
        train = make_dataset("cifar10", n_samples=192, seed=21)
        test = make_dataset("cifar10", n_samples=48, seed=22)
        return train, test

    def _run(self, fl_data, **kwargs):
        train, test = fl_data

        def factory():
            return build_model("mlp", num_classes=10, in_channels=3,
                               image_size=32, seed=0)

        codec = FedSZUpdateCodec(FedSZConfig())
        sim = FederatedSimulation(factory, train, test, n_clients=3,
                                  codec=codec,
                                  network=NetworkModel(bandwidth_mbps=5.0),
                                  seed=17, batch_size=32,
                                  straggler_prob=0.3, **kwargs)
        result = sim.run(2)
        return result, sim.server.global_state()

    @staticmethod
    def _fields(result):
        return [(r.accuracy, r.uncompressed_bytes, r.transmitted_bytes,
                 r.communication_seconds, tuple(r.client_losses),
                 tuple(r.participants), tuple(r.straggler_clients))
                for r in result.rounds]

    @pytest.mark.parametrize("kwargs", [
        {"streaming": True},
        {"streaming": True, "overlap": "async"},
        {"streaming": True, "backend": "process", "max_workers": 2},
    ], ids=["pool", "async", "process-arena"])
    def test_streaming_rounds_bit_identical(self, fl_data, kwargs):
        reference, ref_state = self._run(fl_data)
        got, got_state = self._run(fl_data, **kwargs)
        assert self._fields(got) == self._fields(reference)
        for key in ref_state:
            np.testing.assert_array_equal(got_state[key], ref_state[key])

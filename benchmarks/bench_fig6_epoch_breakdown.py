"""Figure 6: client runtime per epoch broken into training / validation / compression.

Times one local training epoch, one validation pass, and one FedSZ
compress+decompress per model and reports the share of the epoch spent on
compression — the paper's headline number is a <5% average overhead (17% in
the worst case, AlexNet on CIFAR-10).
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import PAPER_MODELS, is_quick, save_results
from repro.core import FedSZCompressor, FedSZConfig
from repro.data import make_dataset, train_test_split
from repro.fl import FLClient
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model


def bench_fig6_epoch_breakdown(benchmark):
    image_size = 16 if is_quick() else 32
    dataset = make_dataset("cifar10", n_samples=320 if is_quick() else 2048,
                           image_size=image_size, seed=31)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=32)

    def run():
        rows = []
        for model_name in PAPER_MODELS:
            model = build_model(model_name, num_classes=10, in_channels=3,
                                image_size=image_size, seed=0)
            client = FLClient(0, model, train, batch_size=32, lr=0.05)
            update = client.train_local(epochs=1)

            start = time.perf_counter()
            client.evaluate(test)
            validation_s = time.perf_counter() - start

            fedsz = FedSZCompressor(FedSZConfig(error_bound=1e-2))
            payload = fedsz.compress_state_dict(update.state)
            fedsz.decompress_state_dict(payload)
            report = fedsz.last_report
            compression_s = report.compress_seconds + report.decompress_seconds

            total = update.train_seconds + validation_s + compression_s
            rows.append({
                "model": model_name,
                "train_s": update.train_seconds,
                "validation_s": validation_s,
                "compression_s": compression_s,
                "total_s": total,
                "compression_share": compression_s / total,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Figure 6 - client epoch time breakdown (CIFAR-10, FedSZ @1e-2)",
                  ["model", "train", "validate", "compress+decompress", "total",
                   "compression share"])
    record = ExperimentRecord("fig6", "epoch time breakdown incl. FedSZ overhead")
    for row in rows:
        table.add_row(row["model"], f"{row['train_s']:.2f}s", f"{row['validation_s']:.2f}s",
                      f"{row['compression_s']:.2f}s", f"{row['total_s']:.2f}s",
                      f"{row['compression_share']:.1%}")
        record.add(**row)
    save_results("fig6_epoch_breakdown", table, record)

    # Paper finding: compression overhead is a modest share of the epoch
    # (average <5%, worst case 17%).  The pure-Python compressors are slower
    # relative to C, so the reproduced budget allows up to 40%.
    shares = [r["compression_share"] for r in rows]
    assert max(shares) < 0.60
    assert float(np.mean(shares)) < 0.40
    # training dominates the epoch for every model
    for row in rows:
        assert row["train_s"] > row["compression_s"]

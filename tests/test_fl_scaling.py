"""Tests for the weak/strong scaling models (Figure 9)."""

import pytest

from repro.fl import (
    scaling_speedups,
    simulate_strong_scaling,
    simulate_weak_scaling,
)

CORES = [2, 4, 8, 16, 32, 64, 128]
# FedSZ-like per-client costs: 2.4 MB update compressed ~6x, 1 s training
FEDSZ = dict(train_seconds=1.0, encode_seconds=0.2, decode_seconds=0.1, update_bytes=0.4e6)
RAW = dict(train_seconds=1.0, encode_seconds=0.0, decode_seconds=0.0, update_bytes=2.4e6)


class TestWeakScaling:
    def test_epoch_time_grows_with_clients(self):
        results = simulate_weak_scaling(CORES, **FEDSZ, bandwidth_mbps=10.0)
        times = [r.epoch_seconds for r in results]
        assert times == sorted(times)
        assert results[-1].clients == 128

    def test_fedsz_beats_uncompressed_at_10mbps(self):
        fedsz = simulate_weak_scaling(CORES, **FEDSZ, bandwidth_mbps=10.0)
        raw = simulate_weak_scaling(CORES, **RAW, bandwidth_mbps=10.0)
        for f, r in zip(fedsz, raw):
            assert f.epoch_seconds < r.epoch_seconds

    def test_communication_dominates_at_scale(self):
        results = simulate_weak_scaling(CORES, **RAW, bandwidth_mbps=10.0)
        last = results[-1]
        assert last.communication_seconds > last.compute_seconds

    def test_compute_constant_across_sweep(self):
        results = simulate_weak_scaling(CORES, **FEDSZ, bandwidth_mbps=10.0)
        assert len({round(r.compute_seconds, 9) for r in results}) == 1


class TestStrongScaling:
    def test_epoch_time_decreases_with_cores(self):
        results = simulate_strong_scaling(CORES, n_clients=127, **FEDSZ, bandwidth_mbps=10.0)
        times = [r.epoch_seconds for r in results]
        assert times == sorted(times, reverse=True)

    def test_speedup_grows_then_saturates(self):
        results = simulate_strong_scaling(CORES, n_clients=127, **FEDSZ, bandwidth_mbps=10.0)
        speedups = scaling_speedups(results)
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > 1.5
        # saturation: far from ideal 64x because the shared link serializes uploads
        assert speedups[-1] < 64

    def test_clients_fixed(self):
        results = simulate_strong_scaling(CORES, n_clients=127, **FEDSZ)
        assert all(r.clients == 127 for r in results)

    def test_invalid_client_count(self):
        with pytest.raises(ValueError):
            simulate_strong_scaling(CORES, n_clients=0, **FEDSZ)

    def test_fedsz_speedup_at_least_uncompressed(self):
        # compression shrinks the serialized communication term, so FedSZ's
        # strong-scaling curve saturates later (higher achievable speedup)
        fedsz = scaling_speedups(simulate_strong_scaling(CORES, n_clients=127, **FEDSZ))
        raw = scaling_speedups(simulate_strong_scaling(CORES, n_clients=127, **RAW))
        assert fedsz[-1] >= raw[-1]


class TestSpeedups:
    def test_empty_results(self):
        assert scaling_speedups([]) == []

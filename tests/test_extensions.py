"""Tests for the extension features: adaptive bounds, DP codec, parallel training."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveBoundPolicy,
    AdaptiveFedSZCompressor,
    FedSZCompressor,
    FedSZConfig,
)
from repro.data import partition_dataset
from repro.fl import FLClient, fedavg_aggregate, map_parallel, train_clients_parallel
from repro.nn import build_model
from repro.privacy import DPFedSZConfig, DPFedSZUpdateCodec


class TestAdaptiveBoundPolicy:
    def test_largest_tensor_keeps_base_bound(self):
        policy = AdaptiveBoundPolicy(base_bound=1e-2, min_bound=1e-4)
        tensors = {"big.weight": np.zeros(100_000, dtype=np.float32),
                   "small.weight": np.zeros(2_000, dtype=np.float32)}
        bounds = policy.bounds_for(tensors)
        assert bounds["big.weight"] == pytest.approx(1e-2)
        assert bounds["small.weight"] < 1e-2

    def test_bounds_clamped_to_min(self):
        policy = AdaptiveBoundPolicy(base_bound=1e-2, min_bound=5e-3, size_exponent=5.0)
        tensors = {"big.weight": np.zeros(10_000), "tiny.weight": np.zeros(8)}
        bounds = policy.bounds_for(tensors)
        assert bounds["tiny.weight"] == pytest.approx(5e-3)

    def test_zero_exponent_disables_adaptation(self):
        policy = AdaptiveBoundPolicy(base_bound=1e-2, size_exponent=0.0)
        tensors = {"a.weight": np.zeros(10), "b.weight": np.zeros(10_000)}
        bounds = list(policy.bounds_for(tensors).values())
        assert all(b == pytest.approx(1e-2) for b in bounds)

    def test_empty_input(self):
        assert AdaptiveBoundPolicy().bounds_for({}) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBoundPolicy(base_bound=1e-3, min_bound=1e-2)
        with pytest.raises(ValueError):
            AdaptiveBoundPolicy(size_exponent=-1)


class TestAdaptiveFedSZCompressor:
    def test_roundtrip_and_error_tighter_on_small_tensors(self, small_state):
        config = FedSZConfig(error_bound=1e-1, threshold=64)
        adaptive = AdaptiveFedSZCompressor(config, AdaptiveBoundPolicy(base_bound=1e-1, min_bound=1e-3))
        payload = adaptive.compress_state_dict(small_state)
        recon = adaptive.decompress_state_dict(payload)
        assert set(recon) == set(small_state)
        assert adaptive.last_bounds, "policy bounds were not recorded"

        partition = adaptive.partition(small_state)
        sizes = {k: v.size for k, v in partition.lossy.items()}
        largest = max(sizes, key=sizes.get)
        smallest = min(sizes, key=sizes.get)
        if largest != smallest:
            assert adaptive.last_bounds[smallest] <= adaptive.last_bounds[largest]
            # the smaller tensor is reconstructed proportionally more accurately
            for name, bound in adaptive.last_bounds.items():
                original = small_state[name].astype(np.float64)
                rng_val = float(original.max() - original.min()) or 1.0
                err = float(np.max(np.abs(recon[name].astype(np.float64) - original)))
                assert err <= bound * rng_val * (1 + 1e-6) + 1e-9

    def test_adaptive_payload_at_least_as_accurate_as_uniform(self, small_state):
        config = FedSZConfig(error_bound=1e-1, threshold=64)
        uniform = FedSZCompressor(config)
        adaptive = AdaptiveFedSZCompressor(config)
        uniform_recon, _ = uniform.roundtrip(small_state)
        adaptive_recon = adaptive.decompress_state_dict(adaptive.compress_state_dict(small_state))

        def total_error(recon):
            return sum(float(np.abs(recon[k].astype(np.float64) - small_state[k].astype(np.float64)).sum())
                       for k in small_state)

        assert total_error(adaptive_recon) <= total_error(uniform_recon) * 1.01


class TestDPFedSZCodec:
    def test_roundtrip_structure(self, small_state):
        codec = DPFedSZUpdateCodec(FedSZConfig(error_bound=1e-2),
                                   DPFedSZConfig(epsilon=1.0, clip_norm=1.0, seed=0))
        recon = codec.decode(codec.encode(small_state))
        assert set(recon) == set(small_state)
        for key in small_state:
            assert recon[key].shape == small_state[key].shape

    def test_noise_scale_matches_mechanism(self):
        codec = DPFedSZUpdateCodec(dp_config=DPFedSZConfig(epsilon=0.5, clip_norm=2.0))
        assert codec.noise_scale == pytest.approx(2 * 2.0 / 0.5)

    def test_smaller_epsilon_means_more_noise(self, small_state):
        def perturbation(epsilon):
            codec = DPFedSZUpdateCodec(FedSZConfig(error_bound=1e-3),
                                       DPFedSZConfig(epsilon=epsilon, clip_norm=1.0, seed=1))
            recon = codec.decode(codec.encode(small_state))
            return sum(float(np.abs(recon[k].astype(np.float64) - small_state[k].astype(np.float64)).mean())
                       for k in small_state if "weight" in k)

        assert perturbation(0.1) > perturbation(10.0)

    def test_metadata_left_untouched(self, small_state):
        codec = DPFedSZUpdateCodec(FedSZConfig(error_bound=1e-2),
                                   DPFedSZConfig(epsilon=1.0, seed=2))
        recon = codec.decode(codec.encode(small_state))
        # biases are in the lossless partition: no noise, bit-exact
        for key in small_state:
            if "bias" in key:
                np.testing.assert_array_equal(recon[key], small_state[key])

    def test_compression_still_effective(self, small_state):
        codec = DPFedSZUpdateCodec(FedSZConfig(error_bound=1e-2),
                                   DPFedSZConfig(epsilon=1.0, seed=3))
        payload = codec.encode(small_state)
        original = sum(v.nbytes for v in small_state.values())
        assert len(payload) < original
        assert codec.last_report is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DPFedSZConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            DPFedSZConfig(clip_norm=-1.0)


class TestParallelTraining:
    def test_map_parallel_preserves_order(self):
        assert map_parallel(lambda x: x * x, [1, 2, 3, 4], max_workers=3) == [1, 4, 9, 16]

    def test_map_parallel_empty_and_validation(self):
        assert map_parallel(lambda x: x, []) == []
        with pytest.raises(ValueError):
            map_parallel(lambda x: x, [1], max_workers=0)

    def test_parallel_matches_sequential_aggregate(self, tiny_dataset):
        shards = partition_dataset(tiny_dataset, 3, seed=0)

        def make_clients():
            return [FLClient(i, build_model("simplecnn", num_classes=10, image_size=16, seed=0),
                             shard, lr=0.1, seed=i) for i, shard in enumerate(shards)]

        reference_state = build_model("simplecnn", num_classes=10, image_size=16, seed=0).state_dict()

        sequential = train_clients_parallel(make_clients(), reference_state, epochs=1, max_workers=1)
        parallel = train_clients_parallel(make_clients(), reference_state, epochs=1, max_workers=3)

        agg_seq = fedavg_aggregate([u.state for u in sequential], [u.num_samples for u in sequential])
        agg_par = fedavg_aggregate([u.state for u in parallel], [u.num_samples for u in parallel])
        for key in agg_seq:
            np.testing.assert_allclose(agg_seq[key], agg_par[key], atol=1e-5)

    def test_updates_carry_client_ids(self, tiny_dataset):
        shards = partition_dataset(tiny_dataset, 2, seed=1)
        clients = [FLClient(i, build_model("mlp", num_classes=10, image_size=16, seed=0),
                            shard, lr=0.05, seed=i) for i, shard in enumerate(shards)]
        state = clients[0].model.state_dict()
        updates = train_clients_parallel(clients, state, epochs=1, max_workers=2)
        assert [u.client_id for u in updates] == [0, 1]
        assert all(u.train_seconds > 0 for u in updates)

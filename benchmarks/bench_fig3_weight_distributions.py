"""Figure 3: weight distributions of AlexNet, MobileNetV2, ResNet50.

Regenerates the per-model weight histograms as summary statistics (dynamic
range, standard deviation, kurtosis, central-bin mass), confirming that all
three distributions are centred on zero but have different dynamic ranges —
the property that motivates relative (rather than absolute) error bounds in
Section V-D1.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from bench_utils import PAPER_MODELS, save_results, trained_like_state
from repro.metrics import ExperimentRecord, Table


def _flat_weights(model: str) -> np.ndarray:
    state = trained_like_state(model)
    return np.concatenate([v.ravel() for k, v in state.items() if "weight" in k and v.size > 1024])


def bench_fig3_weight_distributions(benchmark):
    def run():
        rows = []
        for model in PAPER_MODELS:
            weights = _flat_weights(model).astype(np.float64)
            hist, edges = np.histogram(weights, bins=41)
            central = hist[len(hist) // 2 - 1 : len(hist) // 2 + 2].sum() / weights.size
            rows.append({
                "model": model,
                "n_weights": int(weights.size),
                "min": float(weights.min()),
                "max": float(weights.max()),
                "std": float(weights.std()),
                "kurtosis": float(stats.kurtosis(weights)),
                "central_mass": float(central),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Figure 3 - weight distribution statistics",
                  ["model", "#weights", "range", "std", "excess kurtosis", "mass near 0"])
    record = ExperimentRecord("fig3", "pretrained-style weight distributions per model")
    for row in rows:
        table.add_row(row["model"], row["n_weights"],
                      f"[{row['min']:+.3f}, {row['max']:+.3f}]",
                      f"{row['std']:.4f}", f"{row['kurtosis']:.2f}", f"{row['central_mass']:.2%}")
        record.add(**row)
    save_results("fig3_weight_distributions", table, record)

    # Figure 3's qualitative content: every model is centred on zero but the
    # dynamic ranges differ between architectures.
    ranges = [row["max"] - row["min"] for row in rows]
    assert all(abs(row["min"] + row["max"]) < (row["max"] - row["min"]) for row in rows)
    assert max(ranges) / min(ranges) > 1.1

"""Figure 9: weak and strong scaling of FedSZ vs uncompressed at 10 Mbps.

Measures per-client costs (local training time, FedSZ encode/decode time,
update sizes) once on a real client, then evaluates the scaling models from
``repro.fl.scaling`` across 2-128 cores — the same quantities Figure 9 plots.
"""

from __future__ import annotations

import numpy as np

from bench_utils import fl_settings, is_quick, quick_fl_data, save_results
from repro.core import FedSZConfig
from repro.fl import (
    FLClient,
    FedSZUpdateCodec,
    RawUpdateCodec,
    scaling_speedups,
    simulate_strong_scaling,
    simulate_weak_scaling,
)
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model

CORES = [2, 4, 8, 16, 32, 64, 128]
BANDWIDTH_MBPS = 10.0
STRONG_CLIENTS = 127


def bench_fig9_scaling(benchmark):
    cfg = fl_settings()
    train, _ = quick_fl_data("cifar10", seed=41)
    model_name = "mobilenetv2" if not is_quick() else cfg["model"]

    def run():
        model = build_model(model_name, num_classes=10, in_channels=3,
                            image_size=cfg["image_size"], seed=0)
        client = FLClient(0, model, train, batch_size=cfg["batch_size"], lr=cfg["lr"])
        update = client.train_local(epochs=1)

        import time
        raw_codec = RawUpdateCodec()
        fedsz_codec = FedSZUpdateCodec(FedSZConfig(error_bound=1e-2))
        start = time.perf_counter()
        fedsz_payload = fedsz_codec.encode(update.state)
        encode_s = time.perf_counter() - start
        start = time.perf_counter()
        fedsz_codec.decode(fedsz_payload)
        decode_s = time.perf_counter() - start
        raw_bytes = len(raw_codec.encode(update.state))

        profiles = {
            "FedSZ": dict(train_seconds=update.train_seconds, encode_seconds=encode_s,
                          decode_seconds=decode_s, update_bytes=len(fedsz_payload)),
            "Uncompressed": dict(train_seconds=update.train_seconds, encode_seconds=0.0,
                                 decode_seconds=0.0, update_bytes=raw_bytes),
        }
        sweeps = {}
        for label, profile in profiles.items():
            sweeps[label] = {
                "weak": simulate_weak_scaling(CORES, bandwidth_mbps=BANDWIDTH_MBPS, **profile),
                "strong": simulate_strong_scaling(CORES, n_clients=STRONG_CLIENTS,
                                                  bandwidth_mbps=BANDWIDTH_MBPS, **profile),
            }
        return profiles, sweeps

    profiles, sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    tables = []
    record = ExperimentRecord("fig9", "weak/strong scaling at 10 Mbps, FedSZ vs uncompressed")
    for mode in ("weak", "strong"):
        table = Table(f"Figure 9 - {mode} scaling epoch time per client (s), 10 Mbps",
                      ["cores"] + list(sweeps))
        for idx, cores in enumerate(CORES):
            cells = [f"{sweeps[label][mode][idx].epoch_seconds:.1f}" for label in sweeps]
            table.add_row(cores, *cells)
            record.add(mode=mode, cores=cores,
                       **{label: sweeps[label][mode][idx].epoch_seconds for label in sweeps})
        tables.append(table)

    speedup_table = Table("Figure 9 - strong-scaling speedup (vs 2 cores)",
                          ["codec", "speedup @128 cores"])
    for label in sweeps:
        speedup = scaling_speedups(sweeps[label]["strong"])[-1]
        speedup_table.add_row(label, f"{speedup:.2f}x")
        record.add(mode="strong-speedup", codec=label, speedup=speedup)
    tables.append(speedup_table)
    save_results("fig9_scaling", tables, record)

    # Weak scaling: epoch time grows with client count, and FedSZ stays below
    # the uncompressed curve everywhere (Figure 9a).
    for idx in range(len(CORES)):
        assert sweeps["FedSZ"]["weak"][idx].epoch_seconds \
            <= sweeps["Uncompressed"]["weak"][idx].epoch_seconds
    weak_times = [r.epoch_seconds for r in sweeps["FedSZ"]["weak"]]
    assert weak_times == sorted(weak_times)
    # Strong scaling: more cores reduce the per-client epoch time (Figure 9b).
    strong_times = [r.epoch_seconds for r in sweeps["FedSZ"]["strong"]]
    assert strong_times == sorted(strong_times, reverse=True)
    assert scaling_speedups(sweeps["FedSZ"]["strong"])[-1] > 1.5

"""Thread-pool execution of client training, encoding, and decoding.

The paper's APPFL deployment runs clients as MPI ranks; this module provides
the equivalent intra-round parallelism for the in-process simulator.  NumPy
releases the GIL inside its BLAS kernels, so training several clients in
threads overlaps most of the heavy matrix work without any extra process or
serialization machinery.

Concurrency knobs
-----------------

* ``max_workers=1`` — strictly sequential execution, bit-identical to a plain
  ``for`` loop (the deterministic reference the test suite pins the parallel
  path against).
* ``max_workers=N`` — up to ``N`` items in flight at once.
* ``max_workers=None`` — let the executor pick (``min(32, cpu_count + 4)``).

:class:`~repro.fl.simulation.FederatedSimulation` threads its ``max_workers``
setting through these helpers for all three per-client stages of a round
(train, encode, decode).  The helpers operate on plain callables so they
compose with custom training loops alike.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.fl.client import ClientUpdate, FLClient

__all__ = ["map_parallel", "resolve_worker_count", "train_clients_parallel"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_worker_count(max_workers: int | None, n_items: int) -> int:
    """Effective number of worker threads for ``n_items`` units of work.

    ``None`` resolves to the :class:`ThreadPoolExecutor` default of
    ``min(32, cpu_count + 4)``; the result is always clamped to ``n_items``
    (never spawn idle threads) and to a floor of 1.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    if max_workers is None:
        max_workers = min(32, (os.cpu_count() or 1) + 4)
    return max(1, min(max_workers, n_items))


def map_parallel(func: Callable[[T], R], items: Sequence[T], max_workers: int | None = None) -> list[R]:
    """Apply ``func`` to every item using a thread pool, preserving order.

    With ``max_workers=1`` (or a single item) the call degenerates to a plain
    sequential map, which keeps the behaviour deterministic for tests.  An
    exception raised by any ``func`` call propagates to the caller either way.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_worker_count(max_workers, len(items))
    if workers == 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(func, items))


def train_clients_parallel(clients: Sequence[FLClient], global_state: dict,
                           epochs: int = 1, max_workers: int | None = None) -> list[ClientUpdate]:
    """Broadcast ``global_state`` to every client and train them concurrently.

    Returns the per-client :class:`ClientUpdate` objects in client order, ready
    for FedAvg aggregation.  Each client owns a private model replica (and
    ``receive_global`` copies the broadcast arrays), so no state is shared
    between the training threads.
    """
    for client in clients:
        client.receive_global(global_state)

    def _train(client: FLClient) -> ClientUpdate:
        return client.train_local(epochs=epochs)

    return map_parallel(_train, clients, max_workers=max_workers)

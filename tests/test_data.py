"""Tests for the synthetic datasets, partitioning, loaders, and Figure 2 signals."""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    available_datasets,
    dataset_spec,
    dirichlet_partition,
    iid_partition,
    make_dataset,
    miranda_like_field,
    partition_dataset,
    spikiness,
    train_test_split,
    weight_like_signal,
)


class TestDatasetSpecs:
    def test_paper_datasets_available(self):
        assert set(available_datasets()) == {"caltech101", "cifar10", "fmnist"}

    def test_table4_characteristics(self):
        cifar = dataset_spec("cifar10")
        assert (cifar.n_samples, cifar.image_size, cifar.in_channels, cifar.num_classes) == (60_000, 32, 3, 10)
        fmnist = dataset_spec("fmnist")
        assert (fmnist.n_samples, fmnist.image_size, fmnist.in_channels, fmnist.num_classes) == (70_000, 28, 1, 10)
        caltech = dataset_spec("caltech101")
        assert (caltech.n_samples, caltech.num_classes) == (9_000, 101)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("imagenet")

    def test_input_dimension_property(self):
        assert dataset_spec("fmnist").input_dimension == (1, 28, 28)


class TestMakeDataset:
    def test_shapes_and_dtypes(self):
        ds = make_dataset("cifar10", n_samples=64)
        assert ds.images.shape == (64, 3, 32, 32)
        assert ds.images.dtype == np.float32
        assert ds.labels.shape == (64,)
        assert ds.labels.dtype == np.int64
        assert ds.num_classes == 10

    def test_fmnist_grayscale(self):
        ds = make_dataset("fmnist", n_samples=16)
        assert ds.images.shape == (16, 1, 28, 28)

    def test_caltech_class_count(self):
        ds = make_dataset("caltech101", n_samples=32, image_size=16)
        assert ds.num_classes == 101
        assert ds.images.shape[-1] == 16

    def test_deterministic_for_seed(self):
        a = make_dataset("cifar10", n_samples=8, seed=5)
        b = make_dataset("cifar10", n_samples=8, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_labels_cover_multiple_classes(self):
        ds = make_dataset("cifar10", n_samples=200, seed=0)
        assert len(np.unique(ds.labels)) >= 8

    def test_classes_are_separable(self):
        # nearest-class-mean classification must beat chance by a wide margin,
        # otherwise the FL accuracy experiments would be meaningless
        ds = make_dataset("cifar10", n_samples=400, image_size=16, seed=1)
        flat = ds.images.reshape(len(ds), -1)
        means = np.stack([flat[ds.labels == c].mean(axis=0) for c in range(10)])
        pred = np.argmin(((flat[:, None, :] - means[None]) ** 2).sum(axis=2), axis=1)
        assert (pred == ds.labels).mean() > 0.5

    def test_subset(self):
        ds = make_dataset("cifar10", n_samples=32)
        sub = ds.subset(np.array([0, 5, 9]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[0, 5, 9]])

    def test_input_shape_property(self):
        ds = make_dataset("fmnist", n_samples=4)
        assert ds.input_shape == (1, 28, 28)


class TestPartitioning:
    def test_iid_covers_all_indices(self):
        shards = iid_partition(103, 4, seed=0)
        combined = np.concatenate(shards)
        assert sorted(combined.tolist()) == list(range(103))

    def test_iid_balanced_sizes(self):
        shards = iid_partition(100, 4, seed=0)
        assert all(len(s) == 25 for s in shards)

    def test_iid_validation(self):
        with pytest.raises(ValueError):
            iid_partition(3, 0)
        with pytest.raises(ValueError):
            iid_partition(2, 5)

    def test_dirichlet_covers_all_indices(self):
        labels = np.random.default_rng(0).integers(0, 10, 500)
        shards = dirichlet_partition(labels, 5, alpha=0.5, seed=0)
        assert sorted(np.concatenate(shards).tolist()) == list(range(500))

    def test_dirichlet_more_skewed_with_small_alpha(self):
        labels = np.random.default_rng(1).integers(0, 10, 2000)

        def skew(alpha: float) -> float:
            shards = dirichlet_partition(labels, 4, alpha=alpha, seed=3)
            per_client = []
            for shard in shards:
                hist = np.bincount(labels[shard], minlength=10) / max(len(shard), 1)
                per_client.append(hist.max())
            return float(np.mean(per_client))

        assert skew(0.1) > skew(100.0)

    def test_dirichlet_validation(self):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, dtype=int), 2, alpha=0.0)

    def test_partition_dataset_iid(self):
        ds = make_dataset("cifar10", n_samples=40)
        shards = partition_dataset(ds, 4, scheme="iid")
        assert len(shards) == 4
        assert sum(len(s) for s in shards) == 40

    def test_partition_dataset_unknown_scheme(self):
        ds = make_dataset("cifar10", n_samples=16)
        with pytest.raises(ValueError):
            partition_dataset(ds, 2, scheme="by-zodiac-sign")


class TestLoader:
    def test_batches_cover_dataset(self):
        ds = make_dataset("cifar10", n_samples=50)
        loader = BatchLoader(ds, batch_size=16, shuffle=False)
        total = sum(len(labels) for _, labels in loader)
        assert total == 50
        assert len(loader) == 4

    def test_drop_last(self):
        ds = make_dataset("cifar10", n_samples=50)
        loader = BatchLoader(ds, batch_size=16, drop_last=True)
        assert len(loader) == 3
        assert sum(len(labels) for _, labels in loader) == 48

    def test_shuffle_changes_order(self):
        ds = make_dataset("cifar10", n_samples=64)
        loader = BatchLoader(ds, batch_size=64, shuffle=True, seed=0)
        first_epoch = next(iter(loader))[1]
        second_epoch = next(iter(loader))[1]
        assert not np.array_equal(first_epoch, second_epoch)

    def test_invalid_batch_size(self):
        ds = make_dataset("cifar10", n_samples=8)
        with pytest.raises(ValueError):
            BatchLoader(ds, batch_size=0)

    def test_train_test_split_disjoint_and_complete(self):
        ds = make_dataset("cifar10", n_samples=60)
        train, test = train_test_split(ds, test_fraction=0.25, seed=1)
        assert len(train) + len(test) == 60
        assert len(test) == 15

    def test_train_test_split_validation(self):
        ds = make_dataset("cifar10", n_samples=10)
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=0.0)


class TestScientificSignals:
    def test_miranda_field_smoothness(self):
        field = miranda_like_field(512, seed=0)
        weights = weight_like_signal(512, seed=0)
        assert spikiness(field) < spikiness(weights)

    def test_density_positive(self):
        assert miranda_like_field(256, kind="density").min() > 0

    def test_velocity_signed(self):
        field = miranda_like_field(256, kind="velocity", seed=1)
        assert field.min() < 0 < field.max()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            miranda_like_field(64, kind="pressure")

    def test_weight_signal_statistics(self):
        sig = weight_like_signal(10_000, scale=0.05, seed=0)
        assert abs(float(np.median(sig))) < 0.01
        assert float(np.abs(sig).max()) > 0.2  # heavy tail present

    def test_spikiness_edge_cases(self):
        assert spikiness(np.zeros(10)) == 0.0
        assert spikiness(np.array([1.0])) == 0.0
        with np.errstate(all="ignore"):
            assert spikiness(np.array([0.0, 1.0, 0.0, 1.0])) > 0.5

    def test_field_length_validation(self):
        with pytest.raises(ValueError):
            miranda_like_field(1)

"""Truncated/corrupted bitstreams must fail loudly with ``ValueError``.

Every deserializer in the update path — :func:`unpack_bytes_dict`,
:func:`unpack_arrays`, and :meth:`FedSZCompressor.decompress_state_dict` —
is fed inputs cut at *every* byte boundary plus targeted field corruptions,
and must raise :class:`ValueError` (never ``struct.error`` or ``IndexError``,
and never silently return short data).  Also covers the reserved-name
protection: tensors named after the bitstream's own keys are rejected at
compression time.
"""

import struct

import numpy as np
import pytest

from repro.core.config import FedSZConfig
from repro.core.pipeline import _FORMAT_VERSION, FedSZCompressor
from repro.utils.serialization import (
    pack_arrays,
    pack_bytes_dict,
    unpack_arrays,
    unpack_bytes_dict,
)


def _assert_valueerror_at_every_cut(payload: bytes, unpack) -> None:
    """Unpacking any strict prefix of ``payload`` must raise ``ValueError``."""
    for cut in range(len(payload)):
        with pytest.raises(ValueError):
            unpack(payload[:cut])


class TestBytesDictTruncation:
    def test_every_boundary_raises_valueerror(self):
        payload = pack_bytes_dict({"alpha": b"\x01\x02\x03", "b": b"", "gamma": b"x" * 37})
        _assert_valueerror_at_every_cut(payload, unpack_bytes_dict)

    def test_oversized_value_length_rejected(self):
        # corrupt the u64 value-length of the single entry to claim 2**40 bytes
        payload = bytearray(pack_bytes_dict({"k": b"abc"}))
        length_offset = 4 + 4 + 4 + 1  # magic, count, key length, key "k"
        payload[length_offset : length_offset + 8] = struct.pack("<Q", 2 ** 40)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            unpack_bytes_dict(bytes(payload))

    def test_oversized_key_length_rejected(self):
        payload = bytearray(pack_bytes_dict({"k": b"abc"}))
        payload[8:12] = struct.pack("<I", 2 ** 31)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            unpack_bytes_dict(bytes(payload))

    def test_overstated_entry_count_rejected(self):
        payload = bytearray(pack_bytes_dict({"k": b"abc"}))
        payload[4:8] = struct.pack("<I", 7)
        with pytest.raises(ValueError):
            unpack_bytes_dict(bytes(payload))

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            unpack_bytes_dict(b"")


class TestArraysTruncation:
    def test_every_boundary_raises_valueerror(self):
        payload = pack_arrays({
            "weights": np.arange(11, dtype=np.float32),
            "scalar": np.float64(2.5),
            "empty": np.zeros((2, 0), np.int32),
        })
        _assert_valueerror_at_every_cut(payload, unpack_arrays)

    def test_corrupt_dtype_string_rejected(self):
        payload = pack_arrays({"a": np.arange(4, dtype=np.float32)})
        corrupted = payload.replace(b"<f4", b"!!4")
        with pytest.raises(ValueError):
            unpack_arrays(corrupted)

    def test_length_shape_mismatch_rejected(self):
        # shrink the declared payload length: shape (4,) of float32 needs 16 bytes
        payload = bytearray(pack_arrays({"a": np.arange(4, dtype=np.float32)}))
        length_offset = len(payload) - 16 - 8
        payload[length_offset : length_offset + 8] = struct.pack("<Q", 12)
        with pytest.raises(ValueError, match="corrupt array record"):
            unpack_arrays(bytes(payload))

    def test_absurd_ndim_rejected(self):
        out: list[bytes] = [b"FSZA", struct.pack("<I", 1)]
        out.append(struct.pack("<I", 1) + b"a")
        out.append(struct.pack("<I", 3) + b"<f4")
        out.append(struct.pack("<I", 2 ** 20))  # ndim far past NumPy's limit
        with pytest.raises(ValueError, match="ndim"):
            unpack_arrays(b"".join(out))


@pytest.fixture
def fedsz_and_stream():
    """A FedSZ compressor plus a small (few-hundred-byte) valid bitstream."""
    fedsz = FedSZCompressor(FedSZConfig(error_bound=1e-2, threshold=16))
    state = {
        "conv.weight": np.linspace(-1.0, 1.0, 64).astype(np.float32),
        "conv.bias": np.arange(4, dtype=np.float32),
        "bn.running_mean": np.zeros(4, dtype=np.float32),
    }
    return fedsz, fedsz.compress_state_dict(state)


class TestFedSZBitstreamCorruption:
    def test_every_boundary_raises_valueerror(self, fedsz_and_stream):
        fedsz, stream = fedsz_and_stream
        _assert_valueerror_at_every_cut(stream, fedsz.decompress_state_dict)

    def test_missing_manifest_rejected(self, fedsz_and_stream):
        fedsz, _ = fedsz_and_stream
        with pytest.raises(ValueError, match="manifest"):
            fedsz.decompress_state_dict(pack_bytes_dict({"__lossless__": b""}))

    def test_short_manifest_rejected(self, fedsz_and_stream):
        fedsz, _ = fedsz_and_stream
        stream = pack_bytes_dict({"__manifest__": b"\x01\x00"})
        with pytest.raises(ValueError, match="manifest"):
            fedsz.decompress_state_dict(stream)

    def test_wrong_version_rejected(self, fedsz_and_stream):
        fedsz, _ = fedsz_and_stream
        stream = pack_bytes_dict({"__manifest__": struct.pack("<IQ", 99, 0)})
        with pytest.raises(ValueError, match="version"):
            fedsz.decompress_state_dict(stream)

    def test_unexpected_entry_rejected(self, fedsz_and_stream):
        fedsz, _ = fedsz_and_stream
        # valid v4 manifest with an empty plan summary, plus an unknown entry
        manifest = struct.pack("<IQ", _FORMAT_VERSION, 1) + struct.pack("<I", 0)
        stream = pack_bytes_dict({"__manifest__": manifest, "rogue": b"payload"})
        with pytest.raises(ValueError, match="unexpected entry"):
            fedsz.decompress_state_dict(stream)

    def test_entry_count_mismatch_rejected(self, fedsz_and_stream):
        fedsz, stream = fedsz_and_stream
        entries = unpack_bytes_dict(stream)
        # rewrite only the declared tensor count, keeping the plan summary
        entries["__manifest__"] = struct.pack("<IQ", _FORMAT_VERSION, 99) + \
            entries["__manifest__"][struct.calcsize("<IQ"):]
        with pytest.raises(ValueError, match="declares 99"):
            fedsz.decompress_state_dict(pack_bytes_dict(entries))

    def test_manifest_without_plan_rejected(self, fedsz_and_stream):
        # a v3-shaped manifest (version + count only) is truncated in v4 terms
        fedsz, _ = fedsz_and_stream
        stream = pack_bytes_dict({"__manifest__": struct.pack("<IQ", _FORMAT_VERSION, 0)})
        with pytest.raises(ValueError, match="plan"):
            fedsz.decompress_state_dict(stream)

    def test_not_a_bitstream_rejected(self, fedsz_and_stream):
        fedsz, _ = fedsz_and_stream
        with pytest.raises(ValueError):
            fedsz.decompress_state_dict(b"this is not a fedsz bitstream")

    @pytest.mark.parametrize("entry", ["__lossless__", "lossy::conv.weight"])
    def test_inner_payload_corruption_raises_valueerror(self, fedsz_and_stream, entry):
        # keep the outer framing valid but truncate/garble the entry itself:
        # backend failures (zlib.error, struct.error, ...) must surface as
        # ValueError per the documented contract
        fedsz, stream = fedsz_and_stream
        entries = unpack_bytes_dict(stream)
        for corrupted in (entries[entry][: len(entries[entry]) // 2],
                          bytes(len(entries[entry])),
                          entries[entry][::-1]):
            mutated = dict(entries)
            mutated[entry] = corrupted
            with pytest.raises(ValueError):
                fedsz.decompress_state_dict(pack_bytes_dict(mutated))


class TestReservedTensorNames:
    @pytest.mark.parametrize("name", ["__manifest__", "__lossless__", "lossy::x",
                                      "lossy::conv.weight"])
    def test_reserved_names_rejected_at_compress_time(self, name):
        fedsz = FedSZCompressor(FedSZConfig(error_bound=1e-2))
        state = {name: np.zeros(8, dtype=np.float32)}
        with pytest.raises(ValueError, match="reserved"):
            fedsz.compress_state_dict(state)

    def test_normal_dunder_like_names_still_roundtrip(self):
        fedsz = FedSZCompressor(FedSZConfig(error_bound=1e-2))
        state = {"__private__": np.arange(6, dtype=np.float32),
                 "lossy_weight": np.arange(6, dtype=np.float32)}
        recon = fedsz.decompress_state_dict(fedsz.compress_state_dict(state))
        assert set(recon) == set(state)

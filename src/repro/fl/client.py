"""Federated learning client: local SGD on a private shard."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import Dataset
from repro.data.loader import BatchLoader
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD

__all__ = ["FLClient", "ClientUpdate"]


@dataclass
class ClientUpdate:
    """What a client hands back to the orchestrator after local training."""

    client_id: int
    state: dict[str, np.ndarray]
    num_samples: int
    train_seconds: float
    train_loss: float
    metadata: dict = field(default_factory=dict)


class FLClient:
    """One federated client with a local dataset and a private model replica.

    ``compute_factor`` models device heterogeneity: the reported
    ``train_seconds`` is the measured host time scaled by this factor (e.g. 3.0
    for a Raspberry-Pi-5-class edge device, matching
    :class:`~repro.core.network.DeviceProfile`).  It affects only the reported
    timing, never the numerics, so heterogeneous fleets stay bit-reproducible.
    """

    def __init__(self, client_id: int, model: Module, dataset: Dataset,
                 batch_size: int = 32, lr: float = 0.05, momentum: float = 0.9,
                 weight_decay: float = 0.0, seed: int | None = None,
                 compute_factor: float = 1.0) -> None:
        if compute_factor <= 0:
            raise ValueError("compute_factor must be positive")
        self.client_id = int(client_id)
        self.model = model
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.seed = seed if seed is not None else client_id
        self.compute_factor = float(compute_factor)
        self.loss_fn = CrossEntropyLoss()

    @property
    def num_samples(self) -> int:
        """Size of the client's local shard."""
        return len(self.dataset)

    def receive_global(self, state: dict[str, np.ndarray]) -> None:
        """Load the server's global model into the local replica."""
        self.model.load_state_dict(state)

    def _loader_seed(self, round_index: int) -> int:
        """Batch-shuffle seed for one round of local training.

        Round 0 reproduces the historic order (``self.seed`` verbatim); later
        rounds mix the round index in through a splitmix-style odd constant so
        every round sees a fresh permutation instead of replaying the same
        batch order against an updated model.  Purely a function of
        ``(seed, round_index)``, so resumed runs retrain identically.
        """
        if round_index == 0:
            return self.seed
        return (self.seed + round_index * 0x9E3779B97F4A7C15) % (2 ** 63)

    def train_local(self, epochs: int = 1, round_index: int = 0) -> ClientUpdate:
        """Run ``epochs`` of local SGD and return the updated state dict."""
        start = time.perf_counter()
        self.model.train(True)
        optimizer = SGD(self.model.parameters(), lr=self.lr, momentum=self.momentum,
                        weight_decay=self.weight_decay)
        loader = BatchLoader(self.dataset, batch_size=self.batch_size, shuffle=True,
                             seed=self._loader_seed(round_index))
        last_loss = float("nan")
        for _ in range(epochs):
            for images, labels in loader:
                logits = self.model(images)
                last_loss = self.loss_fn(logits, labels)
                self.model.zero_grad()
                self.model.backward(self.loss_fn.backward())
                optimizer.step()
        elapsed = (time.perf_counter() - start) * self.compute_factor
        return ClientUpdate(
            client_id=self.client_id,
            state=self.model.state_dict(),
            num_samples=self.num_samples,
            train_seconds=elapsed,
            train_loss=float(last_loss),
        )

    def evaluate(self, dataset: Dataset | None = None, batch_size: int = 128) -> float:
        """Top-1 accuracy of the local model on ``dataset`` (default: own shard).

        The model's training/evaluation mode is restored to whatever it was on
        entry — evaluating a model that was already in eval mode no longer
        flips it back to training mode on the way out.
        """
        dataset = dataset or self.dataset
        was_training = self.model.training
        self.model.train(False)
        correct = 0
        loader = BatchLoader(dataset, batch_size=batch_size, shuffle=False)
        for images, labels in loader:
            predictions = self.model(images).argmax(axis=1)
            correct += int((predictions == labels).sum())
        self.model.train(was_training)
        return correct / max(len(dataset), 1)

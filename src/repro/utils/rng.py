"""Deterministic random-number-generator construction.

Every stochastic component in the reproduction (synthetic datasets, weight
initialization, client sampling, DP noise) receives a :class:`numpy.random.Generator`
built here so experiments are reproducible and independent streams never
collide.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``Generator``; pass through if one is already provided."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so per-client streams in the FL simulator do not
    overlap regardless of how many draws each client makes.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]

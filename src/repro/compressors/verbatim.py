"""Verbatim (lossless) storage behind the lossy-compressor interface.

The profiled plan policy (:mod:`repro.core.profiling`) needs a "do not
compress" tier: when Eqn. (1) says no candidate EBLC pays for itself on a
link — the Figure 8 regime above the crossover bandwidth — the per-tensor plan
falls back to shipping the tensor bit-exactly while keeping the version-4
mixed-codec bitstream shape (codec tag + self-describing payload).

:class:`VerbatimCompressor` is that tier: it stores the flattened array bytes
unchanged after the shared :class:`~repro.compressors.base.LossyCompressor`
header, so the reconstruction is exact (max error 0), compression costs one
memcpy, and the payload is the original size plus a ~20-byte header.  The
recorded absolute bound is 0.0 — the bound actually achieved — regardless of
the configured one.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import LossyCompressor

__all__ = ["VerbatimCompressor"]


class VerbatimCompressor(LossyCompressor):
    """Identity codec: bit-exact storage with the standard lossy container."""

    name = "verbatim"

    def compress(self, data: np.ndarray) -> bytes:
        # Override the base implementation: the float64 working copy it hands
        # to ``_compress_float1d`` would double the size of float32 tensors,
        # and verbatim storage must cost exactly the original bytes.
        data = np.asarray(data)
        if data.dtype not in self._DTYPE_CODES:
            data = data.astype(np.float32)
        flat = np.ascontiguousarray(data).ravel()
        header = struct.pack("<BB", self._DTYPE_CODES[data.dtype], data.ndim)
        header += struct.pack(f"<{data.ndim}Q", *data.shape) if data.ndim else b""
        header += struct.pack("<d", 0.0)  # the bound actually achieved
        return header + flat.tobytes()

    def _compress_float1d(self, data: np.ndarray, abs_bound: float) -> bytes:
        # unused by the ``compress`` override above; kept for ABC completeness
        return np.ascontiguousarray(data).tobytes()

    def _decompress_float1d(self, body: bytes, count: int, abs_bound: float,
                            dtype: np.dtype) -> np.ndarray:
        expected = count * dtype.itemsize
        if len(body) != expected:
            raise ValueError(f"corrupt verbatim payload: body has {len(body)} "
                             f"bytes but the header declares {expected}")
        return np.frombuffer(body, dtype=dtype).copy()

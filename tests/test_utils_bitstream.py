"""Tests for the bit-level writer/reader."""

import numpy as np
import pytest

from repro.utils.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits_roundtrip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
        for b in bits:
            writer.write_bit(b)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_value_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b101101, 6)
        writer.write_bits(0xABCD, 16)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(6) == 0b101101
        assert reader.read_bits(16) == 0xABCD

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write_bits(123, 0)
        assert writer.nbits == 0

    def test_negative_width_raises(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(1, -1)

    def test_nbits_counts_pending_and_flushed(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bitarray(np.array([1, 0, 1], dtype=np.uint8))
        writer.write_bit(0)
        assert writer.nbits == 5

    def test_empty_writer_returns_empty_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_output_is_byte_padded(self):
        writer = BitWriter()
        writer.write_bits(0b111, 3)
        assert len(writer.getvalue()) == 1

    def test_write_bits_array_matches_scalar_writes(self):
        values = np.array([3, 7, 0, 15, 9], dtype=np.uint64)
        array_writer = BitWriter()
        array_writer.write_bits_array(values, 4)
        scalar_writer = BitWriter()
        for v in values:
            scalar_writer.write_bits(int(v), 4)
        assert array_writer.getvalue() == scalar_writer.getvalue()


class TestBitReader:
    def test_read_past_end_raises(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        reader = BitReader(writer.getvalue())
        reader.read_bits(8)  # padding bits still readable
        with pytest.raises(EOFError):
            reader.read_bits(8)

    def test_read_bits_array_roundtrip(self):
        values = np.array([5, 0, 1023, 512, 7], dtype=np.uint64)
        writer = BitWriter()
        writer.write_bits_array(values, 10)
        reader = BitReader(writer.getvalue())
        out = reader.read_bits_array(len(values), 10)
        np.testing.assert_array_equal(out, values)

    def test_read_bitarray(self):
        writer = BitWriter()
        pattern = np.array([1, 1, 0, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        writer.write_bitarray(pattern)
        reader = BitReader(writer.getvalue())
        np.testing.assert_array_equal(reader.read_bitarray(10), pattern)

    def test_zero_count_array_read(self):
        reader = BitReader(b"\x00")
        assert reader.read_bits_array(0, 5).size == 0

    def test_remaining_decreases(self):
        writer = BitWriter()
        writer.write_bits(0xFF, 8)
        reader = BitReader(writer.getvalue())
        before = reader.remaining
        reader.read_bits(3)
        assert reader.remaining == before - 3

    def test_mixed_interleaved_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b10, 2)
        writer.write_bits_array(np.array([1, 2, 3], dtype=np.uint64), 3)
        writer.write_bit(1)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(2) == 0b10
        np.testing.assert_array_equal(reader.read_bits_array(3, 3), [1, 2, 3])
        assert reader.read_bit() == 1

"""Warm reuse of canonical Huffman code tables across rounds.

The SZ2/SZ3 entropy stage builds a fresh Huffman tree (a Python ``heapq``
pass over the symbol histogram) for every tensor of every update.  In a
federated run the quantization-code distribution of one tensor drifts slowly
round over round, so the previous round's code table is usually still
near-optimal.  This module implements the reuse decision and the per-client
bookkeeping:

* :class:`CodebookChannel` — one tensor's armed slot for a single encode.
  :meth:`CodebookChannel.select` applies the drift rule to the pinned table
  and the current symbols; :meth:`CodebookChannel.commit` records the table
  the encode actually embedded so the owner can pin it for the next round.
* :class:`CodebookStore` — the per-client, coordinator-side table cache.  It
  arms channels before an encode and commits the returned records after,
  mirroring the profile cache's hit/miss/drift counters.

Drift rule (documented in FORMATS.md): the pinned table is reused iff it
*covers* every symbol present in the stream (a code length > 0 for each) and
its entropy excess is small::

    sum(p * len) - H  <=  threshold * max(H, 1.0)

where ``p`` is the empirical symbol distribution, ``len`` the pinned code
lengths, and ``H = -sum(p * log2 p)`` the stream's empirical entropy.  The
left side is exactly the mean extra bits per symbol paid for reusing a stale
table, so the rule bounds the size regression to ``threshold`` of the
entropy-optimal cost.  The decision is a pure function of the pinned table
and the symbols — deterministic across backends and worker counts.

Reuse changes payload bytes (the stale table is embedded in the stream), so
everything here is deterministic state: the coordinator journals committed
tables alongside the error-feedback accumulators (see ``fl/delta.py``) and
replays them bit-identically on resume.  Decode needs none of this — the
code-length table always rides the ``HUF3`` stream.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.huffman import _build_code_lengths

__all__ = ["CodebookChannel", "CodebookStore", "DEFAULT_DRIFT_THRESHOLD",
           "PAD_MARGIN", "armed_producer", "decide_reuse", "entropy_encode",
           "padded_lengths"]

#: Accept up to 2% mean extra bits per symbol over the entropy-optimal cost
#: before rebuilding the table.  Small enough that the size regression is
#: invisible next to the round-over-round ratio win, large enough that slow
#: distribution drift keeps hitting.
DEFAULT_DRIFT_THRESHOLD = 0.02

#: Pseudo-count padding (symbols on each side of the used range) applied when
#: an armed channel builds a fresh table.  The quantization-code alphabet's
#: extreme tail wanders by a few symbols round over round, and coverage is
#: mandatory — an unpadded table would fail the reuse test on almost every
#: round for that reason alone.  Padding the histogram with count-1 bins
#: around the used range (and the outlier escape, symbol 0) costs a few table
#: bytes and a negligible optimality loss, and makes the next round's
#: slightly wider alphabet coverable.
PAD_MARGIN = 64


def decide_reuse(pin_lengths: np.ndarray, symbols: np.ndarray,
                 threshold: float = DEFAULT_DRIFT_THRESHOLD) -> bool:
    """True iff ``pin_lengths`` may encode ``symbols`` under the drift rule.

    ``pin_lengths`` is an int64 per-symbol code-length table (0 = unused)
    from a previous build; ``symbols`` the current non-negative symbol
    stream.  Coverage is mandatory — a present symbol without a code can
    never be reused; beyond that the entropy-excess criterion above decides.
    """
    if symbols.size == 0:
        return False
    top = int(symbols.max()) + 1
    if top > pin_lengths.size:
        return False
    freqs = np.bincount(symbols, minlength=top)
    used = np.flatnonzero(freqs)
    lens = pin_lengths[used]
    if np.any(lens == 0):
        return False
    p = freqs[used].astype(np.float64) / symbols.size
    entropy = float(-np.sum(p * np.log2(p)))
    cost = float(np.sum(p * lens))
    return (cost - entropy) <= threshold * max(entropy, 1.0)


def padded_lengths(symbols: np.ndarray, margin: int = PAD_MARGIN) -> np.ndarray:
    """Canonical code lengths over a pseudo-count-padded histogram.

    Every zero-count bin within ``margin`` symbols of the used range (plus
    the outlier escape, symbol 0) gets a count of 1 before the tree build,
    so the resulting table assigns a (long) code to symbols the next round
    is likely to introduce.  Pseudo-counts never emit bits — they only widen
    coverage — so the only costs are the larger embedded table and a slight
    loss of code optimality for the real symbols.
    """
    lo = max(int(symbols.min()) - margin, 0)
    hi = int(symbols.max()) + margin
    freqs = np.bincount(symbols, minlength=hi + 1).astype(np.int64)
    pad = np.zeros(hi + 1, dtype=bool)
    pad[lo:] = True
    pad[0] = True
    freqs[pad & (freqs == 0)] = 1
    return _build_code_lengths(freqs)


def armed_producer(huffman, symbols: np.ndarray, channel):
    """The :class:`~repro.compressors.huffman.ChunkBandProducer` for one
    armed encode: the pinned table when the drift rule accepts it, otherwise
    a fresh *padded* build (see :func:`padded_lengths`).  The table actually
    embedded is committed back to the channel either way.  Shared by the
    batch (:func:`entropy_encode`) and streaming encode paths so both emit
    byte-identical warm streams.
    """
    lengths = channel.select(symbols)
    if lengths is None and symbols.size:
        lengths = padded_lengths(symbols, channel.margin)
    producer = huffman.stream_producer(symbols, lengths=lengths)
    channel.commit(producer)
    return producer


def entropy_encode(huffman, symbols: np.ndarray, channel) -> bytes:
    """Huffman-encode ``symbols``, consulting ``channel`` when armed.

    With ``channel=None`` this is exactly ``huffman.encode(symbols)`` —
    byte-identical, so the warm path is strictly opt-in.  With a channel the
    drift rule picks between the pinned table and a fresh padded build, and
    the table actually embedded is recorded on the channel for the caller's
    report.
    """
    if channel is None:
        return huffman.encode(symbols)
    return huffman.assemble(armed_producer(huffman, symbols, channel))


class CodebookChannel:
    """One tensor's armed codebook slot for a single encode.

    The channel travels inside the compressor into whatever worker runs the
    encode (it pickles cheaply: a key, an optional small length table, and a
    threshold).  The worker mutates only its own copy; the decision and the
    used table come back to the coordinator in the encode report, never
    through shared state — which is what keeps the process backend
    bit-identical to the serial one.
    """

    __slots__ = ("key", "pin", "threshold", "margin", "decision", "table")

    def __init__(self, key: str, pin: "np.ndarray | None" = None,
                 threshold: float = DEFAULT_DRIFT_THRESHOLD,
                 margin: int = PAD_MARGIN) -> None:
        self.key = key
        self.pin = pin                  # int64 code-length table or None
        self.threshold = threshold
        self.margin = margin            # fresh-build pseudo-count padding
        self.decision: "str | None" = None  # "reused" | "drift" | "miss"
        self.table: "bytes | None" = None   # uint8 table the encode embedded

    def select(self, symbols: np.ndarray) -> "np.ndarray | None":
        """The length table to pin for this encode (``None`` = build fresh)."""
        if self.pin is not None and decide_reuse(self.pin, symbols, self.threshold):
            self.decision = "reused"
            return self.pin
        self.decision = "drift" if self.pin is not None else "miss"
        return None

    def commit(self, producer) -> None:
        """Record the table a :class:`ChunkBandProducer` actually embedded."""
        self.table = producer.code_lengths

    @property
    def record(self) -> "tuple[str, str, bytes | None] | None":
        """The ``(key, decision, table)`` triple to report, if an encode ran."""
        if self.decision is None:
            return None
        return self.key, self.decision, self.table


class CodebookStore:
    """Per-client canonical-code tables pinned across rounds.

    Lives coordinator-side (one per client); keys are ``"codec:tensor"``
    strings so a profiled-policy codec flip starts a fresh table instead of
    reusing another codec's symbol space.  The whole store serializes to a
    plain ``dict[str, bytes]`` for the journal sidecar.
    """

    def __init__(self, threshold: float = DEFAULT_DRIFT_THRESHOLD) -> None:
        self.threshold = threshold
        self.tables: dict[str, bytes] = {}
        self.counters = {"reuses": 0, "drifts": 0, "misses": 0}

    def channel(self, key: str) -> CodebookChannel:
        """Arm a channel for one tensor encode."""
        pin_bytes = self.tables.get(key)
        pin = np.frombuffer(pin_bytes, dtype=np.uint8).astype(np.int64) \
            if pin_bytes else None
        return CodebookChannel(key, pin, self.threshold)

    def commit(self, records: "dict[str, tuple[str, bytes | None]]") -> None:
        """Fold the per-tensor ``(decision, table)`` records of one encode."""
        names = {"reused": "reuses", "drift": "drifts", "miss": "misses"}
        for key, (decision, table) in records.items():
            self.counters[names[decision]] += 1
            if decision != "reused" and table:
                self.tables[key] = table

    def snapshot(self) -> dict[str, bytes]:
        """The pinned tables as a plain dict (for the journal sidecar)."""
        return dict(self.tables)

    def restore(self, tables: dict[str, bytes]) -> None:
        """Replace the pinned tables (journal resume)."""
        self.tables = dict(tables)

    def invalidate(self) -> None:
        """Drop every pinned table (reference invalidation path)."""
        self.tables.clear()

"""Streaming encode path: bit-identity with the batch encoders.

The producer-side mirror of ``test_streaming_decode.py`` — covers every layer
of the incremental encode pipeline (the ``ChunkBandProducer`` over HUF3
streams, the lossless ``compressor()`` API, the SZ2/SZ3 ``SZStreamEncoder``,
the FedSZ container ``StreamingStateEncoder``, and the transport's
producer-gated wire model) under the PR's non-negotiable invariant: the
concatenation of a producer's pieces is byte-identical to the batch encoder's
output, for every input split and on every backend at every worker count.
Also pins the aggregate-on-arrival server path bit-for-bit against batch
FedAvg at every fan-in and arrival order.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.huffman import HuffmanCoder
from repro.compressors.lossless import available_lossless, get_lossless
from repro.compressors.quantizer import LinearQuantizer
from repro.compressors.sz2 import SZ2Compressor
from repro.compressors.sz3 import SZ3Compressor
from repro.core import NetworkModel
from repro.core.config import FedSZConfig
from repro.core.pipeline import FedSZCompressor
from repro.data import make_dataset, train_test_split
from repro.fl import (
    ArrivalAggregator,
    FederatedSimulation,
    FedSZUpdateCodec,
    RawUpdateCodec,
    fedavg_aggregate,
)
from repro.fl.coordinator.transport import (ShipTask, SimulatedTransport,
                                            ship_update_task)

BACKENDS = ("serial", "thread", "process")


def _model_state(seed: int = 5) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": rng.normal(0, 1, (64, 3, 3, 3)).astype(np.float32),
        "conv.bias": rng.normal(0, 1, 64).astype(np.float32),
        "fc.weight": rng.normal(0, 0.3, (100, 256)).astype(np.float32),
        "head.weight": rng.normal(0, 0.1, (50, 800)).astype(np.float64),
        "empty": np.zeros(0, dtype=np.float32),
    }


@pytest.fixture(scope="module")
def fl_split():
    ds = make_dataset("cifar10", n_samples=240, image_size=16, seed=7)
    return train_test_split(ds, test_fraction=0.25, seed=3)


def _factory():
    from repro.nn import build_model
    return build_model("simplecnn", num_classes=10, in_channels=3,
                       image_size=16, seed=0)


class TestChunkBandProducer:
    def test_chunks_concatenate_to_batch_encoding(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 80, size=1500).astype(np.int64)
        coder = HuffmanCoder(chunk_size=128)
        producer = coder.stream_producer(codes)
        assert b"".join(producer.chunks()) == coder.encode(codes)

    def test_header_and_length_pinned_before_any_band(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 40, size=2048).astype(np.int64)
        coder = HuffmanCoder(chunk_size=256)
        producer = coder.stream_producer(codes)
        # available before bands() has run at all
        assert producer.pinned_header
        assert producer.stream_length == len(coder.encode(codes))
        assert producer.peak_scratch_bytes > 0

    def test_crc_gated_on_band_completion(self):
        codes = np.arange(300, dtype=np.int64)
        producer = HuffmanCoder(chunk_size=64).stream_producer(codes)
        with pytest.raises(ValueError):
            producer.magic_and_crc()
        for _ in producer.bands():
            pass
        assert len(producer.magic_and_crc()) == 8

    def test_empty_stream(self):
        coder = HuffmanCoder()
        producer = coder.stream_producer(np.zeros(0, dtype=np.int64))
        assert b"".join(producer.chunks()) == coder.encode(np.zeros(0, dtype=np.int64))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), chunk=st.integers(1, 512))
    def test_property_any_chunk_size_matches_batch(self, seed, chunk):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 50, size=700).astype(np.int64)
        coder = HuffmanCoder(chunk_size=chunk)
        assert b"".join(coder.stream_producer(codes).chunks()) == coder.encode(codes)


class TestLosslessStreamCompressors:
    @pytest.mark.parametrize("name", available_lossless())
    @pytest.mark.parametrize("piece", [1, 7, 1024, 1 << 20])
    def test_piecewise_equivalence(self, name, piece):
        codec = get_lossless(name)
        rng = np.random.default_rng(3)
        blob = rng.integers(0, 40, size=20_000).astype(np.uint8).tobytes()
        comp = codec.compressor()
        out = [comp.feed(blob[i:i + piece]) for i in range(0, len(blob), piece)]
        out.append(comp.finish())
        assert b"".join(out) == codec.compress(blob)

    @pytest.mark.parametrize("name", available_lossless())
    def test_empty_input(self, name):
        codec = get_lossless(name)
        comp = codec.compressor()
        assert comp.feed(b"") + comp.finish() == codec.compress(b"")

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), piece=st.integers(1, 997))
    def test_property_zlib_split_invariance(self, seed, piece):
        codec = get_lossless("zlib")
        blob = np.random.default_rng(seed).integers(
            0, 255, size=5000).astype(np.uint8).tobytes()
        comp = codec.compressor()
        out = [comp.feed(blob[i:i + piece]) for i in range(0, len(blob), piece)]
        out.append(comp.finish())
        assert b"".join(out) == codec.compress(blob)


class TestSZStreamEncoders:
    @pytest.mark.parametrize("cls", [SZ2Compressor, SZ3Compressor])
    def test_chunks_concatenate_to_batch_payload(self, cls):
        rng = np.random.default_rng(7)
        data = np.cumsum(rng.normal(0, 0.01, 6000)).astype(np.float32)
        compressor = cls(error_bound=1e-2, entropy_chunk=256)
        encoder = compressor.stream_encoder()
        pieces = list(encoder.chunks(data))
        assert len(pieces) > 2  # header + body pieces, not one blob
        assert b"".join(pieces) == compressor.compress(data)
        assert encoder.scratch_bytes > 0

    @pytest.mark.parametrize("cls", [SZ2Compressor, SZ3Compressor])
    def test_empty_array(self, cls):
        compressor = cls(error_bound=1e-2)
        data = np.zeros(0, dtype=np.float32)
        assert b"".join(compressor.stream_encoder().chunks(data)) \
            == compressor.compress(data)

    @pytest.mark.parametrize("cls", [SZ2Compressor, SZ3Compressor])
    @pytest.mark.parametrize("lossless", ["bzip2", "zstd"])
    def test_chained_lossless_backend(self, cls, lossless):
        rng = np.random.default_rng(11)
        data = rng.normal(0, 0.05, 4000).astype(np.float32)
        compressor = cls(error_bound=1e-3, lossless_backend=lossless)
        assert b"".join(compressor.stream_encoder().chunks(data)) \
            == compressor.compress(data)

    @pytest.mark.parametrize("cls", [SZ2Compressor, SZ3Compressor])
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_streamed_equals_batch(self, cls, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 0.1, 600).astype(np.float32)
        compressor = cls(error_bound=1e-2, entropy_chunk=64)
        assert b"".join(compressor.stream_encoder().chunks(data)) \
            == compressor.compress(data)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_backend_worker_matrix(self, backend, workers):
        rng = np.random.default_rng(13)
        data = np.cumsum(rng.normal(0, 0.01, 6000)).astype(np.float32)
        compressor = SZ2Compressor(error_bound=1e-2, entropy_chunk=256,
                                   entropy_workers=workers,
                                   entropy_backend=backend)
        reference = SZ2Compressor(error_bound=1e-2, entropy_chunk=256)
        assert b"".join(compressor.stream_encoder().chunks(data)) \
            == reference.compress(data)


class TestQuantizerScratchRewrite:
    """The out=/where= rewrite of LinearQuantizer.quantize is bit-identical
    to the naive expression-per-temporary reference, including on the
    overflow/NaN/inf escape paths."""

    @staticmethod
    def _reference(data, predictions, abs_bound, radius):
        data = np.asarray(data, dtype=np.float64)
        predictions = np.asarray(predictions, dtype=np.float64)
        with np.errstate(over="ignore", invalid="ignore"):
            residual = data - predictions
            q_float = np.rint(residual / (2.0 * abs_bound))
            predictable = np.isfinite(q_float) & (np.abs(q_float) <= radius)
            q = np.where(predictable, q_float, 0.0).astype(np.int64)
            candidate = predictions + 2.0 * abs_bound * q
            predictable &= np.isfinite(candidate)
            q = np.where(predictable, q, 0)
            reconstructed = np.where(predictable, candidate, data)
        codes = np.where(predictable, q + radius + 1, 0)
        outliers = data[~predictable].astype(np.float64)
        return codes, outliers, reconstructed

    @pytest.mark.parametrize("case", [
        "normal", "huge_ratio", "nonfinite", "reconstruction_overflow",
        "tiny_bound",
    ])
    def test_bit_identical_to_reference(self, case):
        rng = np.random.default_rng(17)
        data = rng.normal(0, 1, 4096)
        predictions = data + rng.normal(0, 0.01, 4096)
        bound = 1e-3
        if case == "huge_ratio":
            data[::7] = 1e300
            bound = 1e-12
        elif case == "nonfinite":
            data[::5] = np.nan
            data[1::5] = np.inf
            predictions[2::5] = -np.inf
        elif case == "reconstruction_overflow":
            data[::3] = 1.75e308
            predictions[::3] = 1.6e308
            bound = 1e307
        elif case == "tiny_bound":
            bound = 5e-324
        quantizer = LinearQuantizer(radius=255)
        result = quantizer.quantize(data, predictions, bound)
        codes, outliers, recon = self._reference(data, predictions, bound, 255)
        assert np.array_equal(result.codes, codes)
        assert np.array_equal(result.outliers, outliers, equal_nan=True)
        assert np.array_equal(result.reconstructed, recon, equal_nan=True)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000),
           exponent=st.integers(-10, -1))
    def test_property_bit_identical(self, seed, exponent):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 1, 500)
        predictions = data + rng.normal(0, 10.0 ** exponent, 500)
        quantizer = LinearQuantizer(radius=32768)
        result = quantizer.quantize(data, predictions, 1e-2)
        codes, outliers, recon = self._reference(data, predictions, 1e-2, 32768)
        assert np.array_equal(result.codes, codes)
        assert np.array_equal(result.outliers, outliers)
        assert np.array_equal(result.reconstructed, recon)


class TestStreamingStateEncoder:
    def _configs(self):
        return [
            FedSZConfig(),
            FedSZConfig(lossy_compressor="sz3", lossless_codec="zstd"),
            FedSZConfig(error_bound=1e-4, lossless_codec="bzip2"),
        ]

    def test_streamed_container_matches_batch(self):
        state = _model_state()
        for config in self._configs():
            compressor = FedSZCompressor(config)
            reference = FedSZCompressor(config)
            pieces = list(compressor.compress_stream(state))
            assert b"".join(pieces) == reference.compress_state_dict(state)

    def test_manifest_is_the_first_piece(self):
        compressor = FedSZCompressor(FedSZConfig())
        pieces = list(compressor.compress_stream(_model_state()))
        # preamble piece: magic, entry count, and the complete manifest entry
        assert pieces[0].startswith(b"FSZB")
        assert b"__manifest__" in pieces[0]
        # one piece per entry beyond it: lossless, then one per lossy tensor
        assert len(pieces) >= 3

    def test_streamed_bytes_decode_and_report_populates(self):
        compressor = FedSZCompressor(FedSZConfig())
        encoder = compressor.stream_encoder()
        state = _model_state()
        payload = b"".join(encoder.chunks(state))
        assert encoder.report is not None
        assert encoder.report.compressed_bytes == len(payload)
        assert encoder.peak_scratch_bytes > 0
        back = FedSZCompressor(FedSZConfig()).decompress_state_dict(payload)
        assert set(back) == set(state)
        for key in state:
            assert back[key].shape == state[key].shape

    def test_empty_state(self):
        compressor = FedSZCompressor(FedSZConfig())
        assert b"".join(compressor.compress_stream({})) \
            == FedSZCompressor(FedSZConfig()).compress_state_dict({})

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_backend_worker_matrix(self, backend, workers):
        config = FedSZConfig(backend=backend, pipeline_workers=workers,
                             entropy_workers=workers)
        state = _model_state()
        assert b"".join(FedSZCompressor(config).compress_stream(state)) \
            == FedSZCompressor(FedSZConfig()).compress_state_dict(state)


class TestTransportStreamingEncode:
    def _task(self, codec, **kwargs):
        return ShipTask(client_id=0, state=_model_state(), codec=codec,
                        network=NetworkModel(bandwidth_mbps=10.0), **kwargs)

    def test_streaming_encode_matches_batch_result(self):
        codec = FedSZUpdateCodec(FedSZConfig())
        batch = ship_update_task(self._task(codec, keep_payload=True))
        streamed = ship_update_task(self._task(codec, keep_payload=True,
                                               streaming_encode=True))
        assert streamed.payload == batch.payload
        assert streamed.payload_bytes == batch.payload_bytes
        assert streamed.transfer_seconds == batch.transfer_seconds
        for key in batch.state:
            assert np.array_equal(streamed.state[key], batch.state[key])

    def test_overlap_fields_reported(self):
        codec = FedSZUpdateCodec(FedSZConfig())
        result = ship_update_task(self._task(codec, streaming_encode=True))
        # the first payload piece leaves before encode completes — that gap
        # is the analytic guarantee the wire model is gated on
        assert result.first_byte_seconds is not None
        assert result.first_byte_seconds < result.encode_seconds
        assert result.encode_overlap_seconds is not None
        assert result.encode_overlap_seconds >= 0.0
        assert result.encode_scratch_bytes > 0

    def test_batch_path_leaves_fields_unset(self):
        codec = FedSZUpdateCodec(FedSZConfig())
        result = ship_update_task(self._task(codec))
        assert result.first_byte_seconds is None
        assert result.encode_overlap_seconds is None
        assert result.encode_scratch_bytes == 0

    def test_raw_codec_single_piece_has_no_overlap_window(self):
        result = ship_update_task(self._task(RawUpdateCodec(),
                                             streaming_encode=True))
        # one piece: the wire gates on the whole payload, so the hidden
        # encode time can only be generator-teardown noise
        assert result.encode_overlap_seconds <= \
            result.encode_seconds - result.first_byte_seconds + 1e-12

    def test_composes_with_streaming_decode(self):
        codec = FedSZUpdateCodec(FedSZConfig())
        batch = ship_update_task(self._task(codec))
        both = ship_update_task(self._task(codec, streaming_encode=True,
                                           streaming=True))
        assert both.payload_bytes == batch.payload_bytes
        assert both.decode_overlap_seconds is not None
        for key in batch.state:
            assert np.array_equal(both.state[key], batch.state[key])

    def test_ship_iter_yields_every_result_once(self):
        codec = FedSZUpdateCodec(FedSZConfig())
        transport = SimulatedTransport(backend="thread", max_workers=4,
                                       streaming_encode=True)
        tasks = [ShipTask(client_id=i, state=_model_state(seed=i), codec=codec,
                          network=NetworkModel(bandwidth_mbps=10.0))
                 for i in range(5)]
        batch = transport.ship_batch(tasks)
        seen = dict(transport.ship_iter(tasks))
        assert sorted(seen) == list(range(5))
        for index, result in seen.items():
            assert result.payload_bytes == batch[index].payload_bytes
            assert result.client_id == batch[index].client_id


class TestArrivalAggregator:
    def _states(self, n, rng):
        states = []
        for _ in range(n):
            states.append({
                "w": rng.standard_normal((4, 3)).astype(np.float32),
                "b": rng.standard_normal(6),
                "steps": np.asarray(rng.integers(0, 100, size=3), dtype=np.int64),
            })
        return states

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_bit_identical_to_batch_at_every_fan_in(self, n):
        rng = np.random.default_rng(n)
        states = self._states(n, rng)
        weights = list(rng.integers(1, 200, size=n))
        batch = fedavg_aggregate(states, weights)
        for trial in range(3):
            order = np.random.default_rng(trial).permutation(n)
            arrival = ArrivalAggregator(weights)
            for index in order:
                arrival.add(int(index), states[index])
            merged = arrival.finalize()
            assert list(merged) == list(batch)
            for key in batch:
                assert batch[key].dtype == merged[key].dtype
                assert np.array_equal(batch[key], merged[key]), (key, trial)

    def test_in_order_arrival_is_o1_resident(self):
        rng = np.random.default_rng(0)
        states = self._states(6, rng)
        arrival = ArrivalAggregator([1.0] * 6)
        for index, state in enumerate(states):
            arrival.add(index, state)
        assert arrival.peak_resident == 1
        assert arrival.arrived == 6

    def test_reverse_arrival_peaks_at_fan_in(self):
        rng = np.random.default_rng(0)
        states = self._states(4, rng)
        arrival = ArrivalAggregator([1.0] * 4)
        for index in (3, 2, 1, 0):
            arrival.add(index, states[index])
        assert arrival.peak_resident == 4

    def test_errors(self):
        rng = np.random.default_rng(0)
        states = self._states(2, rng)
        with pytest.raises(ValueError):
            ArrivalAggregator([])
        with pytest.raises(ValueError):
            ArrivalAggregator([-1.0, 1.0])
        arrival = ArrivalAggregator([1.0, 1.0])
        arrival.add(0, states[0])
        with pytest.raises(ValueError):
            arrival.add(0, states[0])
        with pytest.raises(IndexError):
            arrival.add(2, states[1])
        with pytest.raises(ValueError):
            arrival.finalize()  # one state still missing
        with pytest.raises(ValueError):
            arrival.add(1, {"other": np.zeros(3)})  # mismatched keys


class TestAggregateOnArrivalRounds:
    @pytest.mark.parametrize("overlap", ["pool", "async"])
    def test_bit_identical_to_batch_rounds(self, fl_split, overlap):
        train, test = fl_split
        kwargs = dict(n_clients=3, seed=5, lr=0.15, local_epochs=1,
                      batch_size=16)
        ref = FederatedSimulation(_factory, train, test,
                                  codec=RawUpdateCodec(), **kwargs).run(2)
        arr = FederatedSimulation(_factory, train, test,
                                  codec=RawUpdateCodec(), max_workers=3,
                                  overlap=overlap, streaming_encode=True,
                                  aggregate_on_arrival=True, **kwargs).run(2)
        assert arr.accuracies == ref.accuracies
        assert [r.transmitted_bytes for r in arr.rounds] == \
            [r.transmitted_bytes for r in ref.rounds]
        assert [r.client_losses for r in arr.rounds] == \
            [r.client_losses for r in ref.rounds]

    def test_residency_is_bounded_by_workers_not_fleet(self, fl_split):
        train, test = fl_split
        sim = FederatedSimulation(_factory, train, test, n_clients=4,
                                  codec=RawUpdateCodec(), seed=5, lr=0.15,
                                  batch_size=16, max_workers=1,
                                  aggregate_on_arrival=True)
        record = sim.run_round(0)
        assert record.peak_update_residency == 1
        batch = FederatedSimulation(_factory, train, test, n_clients=4,
                                    codec=RawUpdateCodec(), seed=5, lr=0.15,
                                    batch_size=16, max_workers=1)
        assert batch.run_round(0).peak_update_residency == 4

    def test_deadline_degrades_to_batch_path(self, fl_split):
        train, test = fl_split
        slow = NetworkModel(bandwidth_mbps=0.001)
        sim = FederatedSimulation(_factory, train, test, n_clients=2,
                                  codec=RawUpdateCodec(), seed=5, lr=0.15,
                                  batch_size=16, network=slow,
                                  round_deadline_s=1e-4, max_staleness=1,
                                  aggregate_on_arrival=True)
        result = sim.run(2)
        # late triage still works exactly as without the knob
        assert result.rounds[0].participants == []
        assert result.rounds[0].late_clients == [0, 1]
        assert result.rounds[1].absorbed_clients == {0: 0, 1: 0}

    def test_round_record_surfaces_encode_measurements(self, fl_split):
        train, test = fl_split
        codec = FedSZUpdateCodec(FedSZConfig(error_bound=1e-2))
        sim = FederatedSimulation(_factory, train, test, n_clients=2,
                                  codec=codec, seed=5, lr=0.15, batch_size=16,
                                  streaming_encode=True,
                                  aggregate_on_arrival=True)
        record = sim.run_round(0)
        assert record.peak_encode_scratch_bytes > 0
        assert record.mean_first_byte_seconds is not None
        assert record.mean_first_byte_seconds < record.mean_encode_seconds
        assert record.mean_encode_overlap_seconds is not None


class TestJournalResumeThroughStreamingEncode:
    def test_crash_mid_round_resumes_bit_identically(self, fl_split,
                                                     tmp_path, monkeypatch):
        train, test = fl_split
        kwargs = dict(n_clients=3, seed=5, lr=0.15, local_epochs=1,
                      batch_size=16, streaming_encode=True,
                      aggregate_on_arrival=True)
        ref = FederatedSimulation(_factory, train, test,
                                  codec=RawUpdateCodec(), **kwargs).run(2)

        recorded = {}

        def fake_exit(code):
            recorded["code"] = code
            raise SystemExit(code)

        monkeypatch.setattr(os, "_exit", fake_exit)
        # die after the 4th journal event: round 0 complete, round 1 has
        # shipped at least one streamed-encode payload but not finished
        monkeypatch.setenv("REPRO_JOURNAL_CRASH_AFTER", "4")
        with pytest.raises(SystemExit):
            FederatedSimulation(_factory, train, test, codec=RawUpdateCodec(),
                                journal_dir=tmp_path / "j", **kwargs).run(2)
        assert recorded["code"] == 42
        monkeypatch.delenv("REPRO_JOURNAL_CRASH_AFTER")
        resumed = FederatedSimulation(_factory, train, test,
                                      codec=RawUpdateCodec(),
                                      journal_dir=tmp_path / "j", resume=True,
                                      **kwargs).run(2)
        assert resumed.accuracies == ref.accuracies
        assert [r.transmitted_bytes for r in resumed.rounds] == \
            [r.transmitted_bytes for r in ref.rounds]
        assert [r.client_losses for r in resumed.rounds] == \
            [r.client_losses for r in ref.rounds]

"""Layer implementations with explicit forward/backward passes.

Each layer caches whatever the backward pass needs during ``forward`` and
accumulates parameter gradients in ``backward``, returning the gradient with
respect to its input.  This mirrors PyTorch behaviour closely enough for the
FL experiments while staying dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
]


def _kaiming_uniform(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-uniform initialization used for conv and linear weights."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_uniform((out_features, in_features), in_features, rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        self._last_output_shape = out.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.add_grad(grad.T @ self._x)
        if self.bias is not None:
            self.bias.add_grad(grad.sum(axis=0))
        return grad @ self.weight.data


class Conv2d(Module):
    """2-D convolution supporting standard and depthwise (groups=in_channels) modes."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if groups not in (1, in_channels):
            raise ValueError("Conv2d supports groups=1 or depthwise groups=in_channels")
        if groups == in_channels and out_channels % in_channels != 0:
            raise ValueError("depthwise conv requires out_channels to be a multiple of in_channels")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(_kaiming_uniform(
            (out_channels, in_channels // groups, kernel_size, kernel_size), fan_in, rng))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._windows: np.ndarray | None = None

    # -- standard convolution (groups == 1) -----------------------------------
    def _forward_dense(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        k = self.kernel_size
        h_out = conv_output_size(h, k, self.stride, self.padding)
        w_out = conv_output_size(w, k, self.stride, self.padding)
        cols = im2col(x, (k, k), self.stride, self.padding)
        self._cols = cols
        w2d = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("fk,nkl->nfl", w2d, cols, optimize=True)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        out = out.reshape(n, self.out_channels, h_out, w_out)
        self._last_output_shape = out.shape
        return out

    def _backward_dense(self, grad: np.ndarray) -> np.ndarray:
        n = grad.shape[0]
        grad2d = grad.reshape(n, self.out_channels, -1)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        dw = np.einsum("nfl,nkl->fk", grad2d, self._cols, optimize=True)
        self.weight.add_grad(dw.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.add_grad(grad2d.sum(axis=(0, 2)))
        dcols = np.einsum("fk,nfl->nkl", w2d, grad2d, optimize=True)
        return col2im(dcols, self._x_shape, (self.kernel_size, self.kernel_size),
                      self.stride, self.padding)

    # -- depthwise convolution (groups == in_channels) --------------------------
    def _forward_depthwise(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        h_out = conv_output_size(h, k, self.stride, self.padding)
        w_out = conv_output_size(w, k, self.stride, self.padding)
        x_pad = np.pad(x, ((0, 0), (0, 0), (self.padding,) * 2, (self.padding,) * 2)) if self.padding else x
        windows = np.lib.stride_tricks.sliding_window_view(x_pad, (k, k), axis=(2, 3))
        windows = windows[:, :, ::self.stride, ::self.stride]  # (N, C, H_out, W_out, k, k)
        self._windows = windows
        mult = self.out_channels // self.in_channels
        kernels = self.weight.data.reshape(c, mult, k, k)
        out = np.einsum("nchwij,cmij->ncmhw", windows, kernels, optimize=True)
        out = out.reshape(n, self.out_channels, h_out, w_out)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None, None]
        self._last_output_shape = out.shape
        return out

    def _backward_depthwise(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        k = self.kernel_size
        mult = self.out_channels // self.in_channels
        grad5 = grad.reshape(n, c, mult, grad.shape[2], grad.shape[3])
        dw = np.einsum("nchwij,ncmhw->cmij", self._windows, grad5, optimize=True)
        self.weight.add_grad(dw.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.add_grad(grad.sum(axis=(0, 2, 3)))
        kernels = self.weight.data.reshape(c, mult, k, k)
        # dL/d window = grad * kernel, then scatter-add windows back to the image
        dwin = np.einsum("ncmhw,cmij->nchwij", grad5, kernels, optimize=True)
        h_out, w_out = grad.shape[2], grad.shape[3]
        dcols = dwin.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * k * k, h_out * w_out)
        return col2im(dcols, self._x_shape, (k, k), self.stride, self.padding)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        if self.groups == 1:
            return self._forward_dense(x)
        return self._forward_depthwise(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        if self.groups == 1:
            return self._backward_dense(grad)
        return self._backward_depthwise(grad)


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of (N, C, H, W) tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros(1, dtype=np.float32))
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self._buffers["running_mean"] = ((1 - self.momentum) * self._buffers["running_mean"]
                                             + self.momentum * mean).astype(np.float32)
            self._buffers["running_var"] = ((1 - self.momentum) * self._buffers["running_var"]
                                            + self.momentum * var).astype(np.float32)
            self._buffers["num_batches_tracked"] += 1
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        self._cache = (x_hat, std, x)
        return self.weight.data[None, :, None, None] * x_hat + self.bias.data[None, :, None, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std, _ = self._cache
        self.weight.add_grad((grad * x_hat).sum(axis=(0, 2, 3)))
        self.bias.add_grad(grad.sum(axis=(0, 2, 3)))
        gamma = self.weight.data[None, :, None, None]
        dx_hat = grad * gamma
        if not self.training:
            return dx_hat / std[None, :, None, None]
        n = grad.shape[0] * grad.shape[2] * grad.shape[3]
        sum_dxhat = dx_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dxhat_xhat = (dx_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (dx_hat - sum_dxhat / n - x_hat * sum_dxhat_xhat / n) / std[None, :, None, None]
        return dx


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad, 0.0)


class ReLU6(Module):
    """ReLU clipped at 6 (MobileNetV2's activation)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad, 0.0)


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._orig_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        self._orig_shape = x.shape
        n, c, h, w = x.shape
        if h % k or w % k:
            # trim a ragged border (same behaviour as floor-mode pooling)
            x = x[:, :, : (h // k) * k, : (w // k) * k]
            n, c, h, w = x.shape
        self._x_shape = (n, c, h, w)
        blocks = x.reshape(n, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5)
        blocks = blocks.reshape(n, c, h // k, w // k, k * k)
        self._argmax = blocks.argmax(axis=-1)
        return blocks.max(axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = self._x_shape
        out = np.zeros((n, c, h // k, w // k, k * k), dtype=grad.dtype)
        idx = self._argmax
        np.put_along_axis(out, idx[..., None], grad[..., None], axis=-1)
        out = out.reshape(n, c, h // k, w // k, k, k).transpose(0, 1, 2, 4, 3, 5)
        out = out.reshape(n, c, h, w)
        if self._orig_shape != self._x_shape:
            full = np.zeros(self._orig_shape, dtype=grad.dtype)
            full[:, :, :h, :w] = out
            return full
        return out


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None
        self._orig_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        self._orig_shape = x.shape
        n, c, h, w = x.shape
        if h % k or w % k:
            x = x[:, :, : (h // k) * k, : (w // k) * k]
            n, c, h, w = x.shape
        self._x_shape = (n, c, h, w)
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = self._x_shape
        expanded = np.repeat(np.repeat(grad, k, axis=2), k, axis=3) / (k * k)
        if self._orig_shape != self._x_shape:
            full = np.zeros(self._orig_shape, dtype=grad.dtype)
            full[:, :, :h, :w] = expanded
            return full
        return expanded


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        return np.broadcast_to(grad[:, :, None, None], (n, c, h, w)) / (h * w)


class Flatten(Module):
    """Flatten (N, ...) to (N, features)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._x_shape)


class Dropout(Module):
    """Inverted dropout (identity in eval mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

"""ZFP-style transform-based lossy compressor (fixed-precision mode).

ZFP (Lindstrom, 2014) groups values into small blocks, aligns each block to a
common exponent (block floating point), applies a custom orthogonal transform,
and encodes the transform coefficients bit plane by bit plane.  ZFP has no
relative-error mode; the paper therefore drives it in *fixed precision* mode
(Section V-D1), where a fixed number of coefficient bit planes is kept.

This reproduction mirrors that structure for 1-D data:

* blocks of 4 values,
* per-block common exponent (the exponent of the largest magnitude),
* an orthonormal 4-point transform (DCT-II basis, standing in for ZFP's lifted
  transform — both are orthogonal so the coefficient energy compaction and the
  error behaviour are equivalent),
* uniform quantization of the normalized coefficients to ``precision`` bits,
  packed with NumPy in one pass.

When constructed through the common :class:`LossyCompressor` interface the
requested (relative) error bound is mapped to a precision, reproducing how the
paper selects "the closest analogous option" for ZFP.  In this derived-
precision mode every block is self-validated at compression time and blocks
that would exceed the bound are stored verbatim, so the bound is a hard
guarantee; passing ``precision`` explicitly requests ZFP's native
fixed-precision semantics instead, where the bound is only a target.

Payload body layout::

    u32   block size (always 4)
    u64   element count
    u8    precision bits per coefficient
    i16[] per-block exponents
    bytes packed coefficient bits
    bytes verbatim-block bitmap
    f64[] verbatim block values
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import ErrorBound, ErrorBoundMode, LossyCompressor
from repro.compressors.predictors import block_pad

__all__ = ["ZFPCompressor"]

_BLOCK = 4


def _dct_matrix(n: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``n`` (rows are basis vectors)."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    mat[0] *= np.sqrt(1.0 / n)
    mat[1:] *= np.sqrt(2.0 / n)
    return mat


_TRANSFORM = _dct_matrix(_BLOCK)
_INVERSE = _TRANSFORM.T


class ZFPCompressor(LossyCompressor):
    """Block-transform fixed-precision compressor (ZFP style)."""

    name = "zfp"

    def __init__(self, error_bound: ErrorBound | float = 1e-2,
                 mode: ErrorBoundMode | str = ErrorBoundMode.REL,
                 precision: int | None = None) -> None:
        super().__init__(error_bound, mode)
        if precision is not None and not (2 <= precision <= 30):
            raise ValueError("precision must be in [2, 30]")
        self._explicit_precision = precision

    def _resolve_precision(self, data: np.ndarray, abs_bound: float) -> int:
        """Map the requested error bound to a bit-plane count.

        ``precision ~= log2(range / bound) + 3`` gives the smallest precision
        whose quantization step (after the orthogonal transform) stays at or
        below the requested tolerance for typical blocks.
        """
        if self._explicit_precision is not None:
            return self._explicit_precision
        if data.size == 0 or abs_bound <= 0:
            return 16
        value_range = float(np.max(np.abs(data)))
        if value_range == 0.0:
            return 2
        with np.errstate(over="ignore"):
            ratio = value_range / abs_bound
        if not np.isfinite(ratio):
            # bound/range ratio beyond float64: request the maximum precision
            # and let the per-block verbatim escape pick up the remainder
            return 30
        precision = int(np.ceil(np.log2(max(ratio, 2.0)))) + 3
        return int(np.clip(precision, 2, 30))

    # ------------------------------------------------------------------
    def _compress_float1d(self, data: np.ndarray, abs_bound: float) -> bytes:
        n = data.size
        if n == 0:
            return struct.pack("<IQB", _BLOCK, 0, 0)

        precision = self._resolve_precision(data, abs_bound)
        blocks, original_len = block_pad(data, _BLOCK)

        # Block floating point: normalize by 2**exponent of the block maximum.
        block_max = np.max(np.abs(blocks), axis=1)
        exponents = np.zeros(blocks.shape[0], dtype=np.int16)
        nonzero = block_max > 0
        exponents[nonzero] = np.ceil(np.log2(block_max[nonzero])).astype(np.int16)
        with np.errstate(over="ignore"):
            # exponent 1024 (values past 2**1023) overflows the scale to inf;
            # those blocks reconstruct as NaN and take the verbatim escape
            scale = np.exp2(exponents.astype(np.float64))
        normalized = np.where(nonzero[:, None], blocks / scale[:, None], 0.0)

        coeffs = normalized @ _TRANSFORM.T  # orthonormal forward transform

        # Coefficients of an orthonormal transform of values in [-1, 1] lie in
        # [-2, 2]; quantize them uniformly with `precision` bits (sign folded in).
        step = 4.0 / (1 << precision)
        q = np.clip(np.rint(coeffs / step) + (1 << (precision - 1)), 0, (1 << precision) - 1)
        q = q.astype(np.uint64)

        # Self-validate each block when the precision was derived from an error
        # bound: 30 bit planes cannot honour every bound/range ratio, so blocks
        # whose reconstruction would exceed the bound are stored verbatim
        # instead.  An explicit precision requests pure fixed-precision
        # semantics (a target, not a guarantee) and skips the escape.
        verbatim = np.zeros(blocks.shape[0], dtype=bool)
        if self._explicit_precision is None:
            recon_coeffs = (q.astype(np.float64) - (1 << (precision - 1))) * step
            with np.errstate(invalid="ignore", over="ignore"):
                recon = (recon_coeffs @ _INVERSE.T) * scale[:, None]
                # negated <= so NaN/inf reconstructions (scale overflow past
                # 2**1023) count as failures instead of slipping through a
                # False `>` comparison
                verbatim = ~(np.abs(recon - blocks).max(axis=1) <= abs_bound)

        q = q.ravel()
        shifts = np.arange(precision - 1, -1, -1, dtype=np.uint64)
        bits = ((q[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        packed = np.packbits(bits.ravel())
        vb_bitmap = np.packbits(verbatim.astype(np.uint8))
        vb_values = blocks[verbatim].ravel().astype(np.float64)

        body = struct.pack("<IQB", _BLOCK, original_len, precision)
        body += struct.pack("<Q", exponents.size) + exponents.tobytes()
        body += struct.pack("<Q", packed.size) + packed.tobytes()
        body += struct.pack("<Q", vb_bitmap.size) + vb_bitmap.tobytes()
        body += struct.pack("<Q", vb_values.size) + vb_values.tobytes()
        return body

    # ------------------------------------------------------------------
    def _decompress_float1d(self, body: bytes, count: int, abs_bound: float,
                            dtype: np.dtype) -> np.ndarray:
        block, original_len, precision = struct.unpack_from("<IQB", body, 0)
        offset = struct.calcsize("<IQB")
        if original_len == 0:
            return np.zeros(count, dtype=np.float64)
        if not 2 <= precision <= 30:
            # matches the compressor's [2, 30] range; larger values would
            # silently wrap numpy's uint64 shifts
            raise ValueError(f"corrupt ZFP payload: precision {precision}")
        (n_blocks,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        exponents = np.frombuffer(body, dtype=np.int16, count=n_blocks, offset=offset)
        offset += 2 * n_blocks
        (packed_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        packed = np.frombuffer(body, dtype=np.uint8, count=packed_len, offset=offset)
        offset += packed_len
        (vb_bitmap_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        vb_bitmap = np.frombuffer(body, dtype=np.uint8, count=vb_bitmap_len, offset=offset)
        offset += vb_bitmap_len
        (vb_count,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        vb_values = np.frombuffer(body, dtype=np.float64, count=vb_count, offset=offset)

        total = n_blocks * block
        bits = np.unpackbits(packed)[: total * precision].reshape(total, precision)
        weights = (np.uint64(1) << np.arange(precision - 1, -1, -1, dtype=np.uint64))
        q = (bits.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)

        step = 4.0 / (1 << precision)
        coeffs = (q.astype(np.float64) - (1 << (precision - 1))) * step
        coeffs = coeffs.reshape(n_blocks, block)
        normalized = coeffs @ _INVERSE.T
        with np.errstate(over="ignore"):
            scale = np.exp2(exponents.astype(np.float64))
        with np.errstate(invalid="ignore", over="ignore"):
            # verbatim blocks may carry an overflowed (inf) scale; their
            # NaN products are overwritten from vb_values just below
            values = normalized * scale[:, None]
        if vb_count:
            verbatim = np.unpackbits(vb_bitmap)[:n_blocks].astype(bool)
            values[verbatim] = vb_values.reshape(-1, block)
        return values.ravel()[:original_len]

"""Measured codec selection: the profiling subsystem behind Problems 1 and 2.

Section IV of the paper picks the EBLC and error bound by *measuring* every
candidate against the link bandwidth (Eqns. 2-3).  This module turns that
one-off experiment into a reusable subsystem:

* :class:`CodecProfiler` — benchmarks every ``(codec, bound, mode)`` candidate
  on a deterministic, seeded contiguous sample of each tensor, fanning the
  candidate grid out over an :class:`~repro.utils.parallel.ExecutionBackend`.
  Timings come from the wall clock by default, or from an injectable
  :class:`CostModel` so tests and single-core CI containers stay fully
  deterministic.  Profiles are cached by content fingerprint: re-profiling the
  same bytes is a dictionary lookup, and the cache key excludes the tensor
  name so weight-tied tensors share one measurement.
* :class:`TensorProfile` — the measurements for one tensor, with the Pareto
  frontier over (ratio up, runtime down) and per-link end-to-end time
  estimates (Eqn. 1, optionally :class:`~repro.core.network.DeviceProfile`
  scaled).
* :class:`ProfiledPolicy` — the ``profiled`` plan policy: per tensor, pick the
  candidate minimizing ``t_C + t_D + S'/B`` under an accuracy-proxy bound cap;
  when no candidate beats shipping the raw bytes (Figure 8's above-crossover
  regime) the tensor falls back to the lossless ``verbatim`` tier.  Every
  decision is recorded as provenance in the plan summary
  (:data:`~repro.core.plan.PLAN_PROVENANCE_KEY`), so a decoded bitstream
  explains itself.

Determinism contract: with a :class:`CostModel` injected, profiles — and
therefore plans and bitstreams — depend only on tensor bytes and the profiler
configuration, never on wall clock, worker count, or execution backend.
:mod:`repro.core.selection` is a thin wrapper over this module.
"""

from __future__ import annotations

import abc
import json
import os
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.compressors.base import ErrorBoundMode
from repro.core.network import DeviceProfile, NetworkModel, end_to_end_seconds
from repro.core.plan import PLAN_PROVENANCE_KEY, CompressionPolicy, TensorPlan
from repro.utils.parallel import ExecutionBackend, get_backend

__all__ = [
    "CandidateMeasurement",
    "TensorProfile",
    "CostModel",
    "AnalyticCostModel",
    "CodecProfiler",
    "ProfiledPolicy",
]

#: The EBLC grid the paper evaluates (Table I); ``verbatim`` is deliberately
#: absent — shipping uncompressed is the baseline every candidate must beat,
#: not a candidate itself.
DEFAULT_CANDIDATES = ("sz2", "sz3", "szx", "zfp")
#: Error-bound grid of Problem 2 around the paper's recommended 1e-2 point.
DEFAULT_ERROR_BOUNDS = (1e-4, 1e-3, 1e-2)

#: on-disk profile-cache identity (see FORMATS.md "Profile cache")
PROFILE_CACHE_FORMAT = "fedsz-profile-cache"
PROFILE_CACHE_VERSION = 1
#: default drift threshold when a durable cache is enabled without one
DEFAULT_DRIFT_THRESHOLD = 0.25


def _sample_stats(sample: np.ndarray) -> dict:
    """Summary statistics of a profiling sample, for drift comparison."""
    data = np.asarray(sample, dtype=np.float64).ravel()
    if data.size == 0:
        return {"mean": 0.0, "std": 0.0, "absmax": 0.0}
    return {"mean": float(data.mean()), "std": float(data.std()),
            "absmax": float(np.max(np.abs(data)))}


def _drifted(old: Mapping[str, float], new: Mapping[str, float],
             threshold: float) -> bool:
    """True when sampled-window statistics moved past ``threshold``.

    Shifts are measured relative to the *anchor* (the last measured window),
    never the previous comparison — re-measure decisions cannot ratchet
    through a slow sequence of sub-threshold steps.  The scale floor keeps
    near-zero tensors from flagging drift on float noise.
    """
    scale = max(old["std"], abs(old["mean"]), 1e-12)
    return (abs(new["mean"] - old["mean"]) > threshold * scale
            or abs(new["std"] - old["std"]) > threshold * scale
            or abs(new["absmax"] - old["absmax"])
            > threshold * max(old["absmax"], scale))


# ---------------------------------------------------------------------------
# Measurements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CandidateMeasurement:
    """One ``(codec, bound, mode)`` candidate's measured sample roundtrip."""

    codec: str
    error_bound: float
    mode: ErrorBoundMode
    sample_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float
    max_abs_error: float

    @property
    def ratio(self) -> float:
        """Sample compression ratio (original / compressed)."""
        return self.sample_bytes / self.compressed_bytes if self.compressed_bytes \
            else float("inf")

    @property
    def runtime(self) -> float:
        """Total compression + decompression runtime on the sample."""
        return self.compress_seconds + self.decompress_seconds


@dataclass(frozen=True)
class TensorProfile:
    """Cached, reusable measurements of one tensor against the candidate grid.

    All timings are sample-scale; the estimate methods scale them to the full
    tensor by the byte ratio (per-element cost is what the sample measures)
    and optionally to an edge device via :class:`DeviceProfile`.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    nbytes: int
    sample_elements: int
    sample_bytes: int
    measurements: tuple[CandidateMeasurement, ...]

    @property
    def scale_factor(self) -> float:
        """Full-tensor bytes per sampled byte (1.0 when the sample is whole)."""
        return self.nbytes / self.sample_bytes if self.sample_bytes else 1.0

    def estimated_compressed_bytes(self, measurement: CandidateMeasurement) -> float:
        """Projected full-tensor payload size at the sample's ratio."""
        return self.nbytes / measurement.ratio

    def estimated_roundtrip_seconds(self, measurement: CandidateMeasurement,
                                    device: DeviceProfile | None = None,
                                    ) -> tuple[float, float]:
        """Full-tensor ``(t_C, t_D)``, optionally device-scaled."""
        compress = measurement.compress_seconds * self.scale_factor
        decompress = measurement.decompress_seconds * self.scale_factor
        if device is not None:
            compress, decompress = device.scale(compress), device.scale(decompress)
        return compress, decompress

    def estimated_seconds(self, measurement: CandidateMeasurement,
                          bandwidth_mbps: float, latency_s: float = 0.0,
                          device: DeviceProfile | None = None) -> float:
        """Eqn. (1) left-hand side for this tensor under ``measurement``."""
        compress, decompress = self.estimated_roundtrip_seconds(measurement, device)
        return end_to_end_seconds(compress, decompress,
                                  self.estimated_compressed_bytes(measurement),
                                  bandwidth_mbps, latency_s)

    def uncompressed_seconds(self, bandwidth_mbps: float, latency_s: float = 0.0) -> float:
        """Eqn. (1) right-hand side: shipping the tensor raw."""
        return end_to_end_seconds(0.0, 0.0, self.nbytes, bandwidth_mbps, latency_s)

    def pareto_frontier(self) -> tuple[CandidateMeasurement, ...]:
        """Non-dominated candidates over (ratio maximized, runtime minimized).

        A candidate is dominated when another achieves at least its ratio in
        at most its runtime, with one of the two strictly better.  The
        frontier keeps grid order, so ties resolve deterministically.
        """
        frontier = []
        for m in self.measurements:
            dominated = any(
                other.ratio >= m.ratio and other.runtime <= m.runtime
                and (other.ratio > m.ratio or other.runtime < m.runtime)
                for other in self.measurements)
            if not dominated:
                frontier.append(m)
        return tuple(frontier)

    def best_for_link(self, bandwidth_mbps: float, latency_s: float = 0.0,
                      device: DeviceProfile | None = None,
                      max_bound: float | None = None,
                      ) -> tuple[CandidateMeasurement | None, float]:
        """The candidate minimizing end-to-end time on a link, if one wins.

        Returns ``(measurement, modeled_seconds)`` for the fastest candidate
        that both satisfies Eqn. (1) strictly (beats shipping raw) and — when
        ``max_bound`` is given — stays at or under the accuracy-proxy bound
        cap, or ``(None, uncompressed_seconds)`` when no candidate qualifies.
        """
        baseline = self.uncompressed_seconds(bandwidth_mbps, latency_s)
        best: CandidateMeasurement | None = None
        best_seconds = baseline
        for m in self._allowed(max_bound):
            if m.ratio < 1.0:
                continue  # Problem 1's ratio constraint: never inflate
            modeled = self.estimated_seconds(m, bandwidth_mbps, latency_s, device)
            if modeled < best_seconds:
                best, best_seconds = m, modeled
        return best, best_seconds

    def _allowed(self, max_bound: float | None) -> tuple[CandidateMeasurement, ...]:
        """Measurements under the bound cap; the tightest grid bound when the
        cap excludes the whole grid (the most accurate option available)."""
        if max_bound is None:
            return self.measurements
        allowed = tuple(m for m in self.measurements
                        if m.error_bound <= max_bound * (1 + 1e-12))
        if allowed:
            return allowed
        tightest = min(m.error_bound for m in self.measurements)
        return tuple(m for m in self.measurements if m.error_bound == tightest)


# ---------------------------------------------------------------------------
# Cost models (the injectable clock)
# ---------------------------------------------------------------------------

class CostModel(abc.ABC):
    """Replaces the wall clock when profiling must be deterministic.

    The profiler still performs the real sample roundtrip (ratio and max
    error are measured, they are deterministic), but asks the cost model for
    the timings instead of :func:`time.perf_counter` — so profiles, plans,
    and bitstreams become pure functions of the tensor bytes.  Implementations
    must be picklable: candidate tasks cross process boundaries.
    """

    #: short name recorded in plan provenance
    label: str = "cost-model"

    @abc.abstractmethod
    def roundtrip_seconds(self, codec: str, original_bytes: int,
                          compressed_bytes: int) -> tuple[float, float]:
        """Modeled ``(compress_seconds, decompress_seconds)`` for one call."""


@dataclass(frozen=True)
class AnalyticCostModel(CostModel):
    """Throughput-table cost model mirroring Table I's ordering.

    SZx is by far the fastest, ZFP next, SZ2/SZ3 trade throughput for ratio,
    and ``verbatim`` is a memcpy.  The absolute numbers are representative
    workstation MB/s — what matters for plan selection is the *ordering* and
    the compute/transfer balance, both of which the table preserves; scale to
    an edge device with :class:`~repro.core.network.DeviceProfile`.
    """

    compress_mbps: Mapping[str, float] = field(default_factory=lambda: {
        "szx": 400.0, "zfp": 150.0, "sz2": 60.0, "sz3": 35.0, "verbatim": 4000.0})
    decompress_mbps: Mapping[str, float] = field(default_factory=lambda: {
        "szx": 500.0, "zfp": 200.0, "sz2": 80.0, "sz3": 50.0, "verbatim": 8000.0})
    #: throughput assumed for codecs absent from the tables
    default_mbps: float = 50.0
    #: fixed per-call setup cost (python + header overhead)
    overhead_seconds: float = 5e-5

    label = "analytic"

    def roundtrip_seconds(self, codec: str, original_bytes: int,
                          compressed_bytes: int) -> tuple[float, float]:
        compress = self.overhead_seconds + original_bytes / 1e6 / \
            self.compress_mbps.get(codec, self.default_mbps)
        decompress = self.overhead_seconds + original_bytes / 1e6 / \
            self.decompress_mbps.get(codec, self.default_mbps)
        return compress, decompress


def resolve_cost_model(cost_model: "CostModel | str | None") -> "CostModel | None":
    """Normalize the user-facing knob: ``"analytic"``, ``"measured"``/``None``
    (wall clock), or a :class:`CostModel` instance."""
    if cost_model is None or isinstance(cost_model, CostModel):
        return cost_model
    if cost_model == "analytic":
        return AnalyticCostModel()
    if cost_model == "measured":
        return None
    raise ValueError(f"unknown cost model {cost_model!r}; pass 'analytic', "
                     f"'measured', or a CostModel instance")


# ---------------------------------------------------------------------------
# The profiler
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _CandidateTask:
    """Picklable argument struct for :func:`_measure_candidate_task`."""

    codec: str
    error_bound: float
    mode: ErrorBoundMode
    sample: np.ndarray
    cost_model: "CostModel | None"


def _measure_candidate_task(task: _CandidateTask) -> CandidateMeasurement:
    """Roundtrip one candidate on one sample; the unit of profiler fan-out.

    Module-level over an explicit struct so the candidate grid satisfies the
    process backend's picklability contract.  Ratio and max error come from
    the real roundtrip; timings from the wall clock or the injected cost
    model (see :class:`CostModel`).
    """
    from repro.compressors.registry import get_lossy

    compressor = get_lossy(task.codec, error_bound=task.error_bound, mode=task.mode)
    sample = task.sample
    if task.cost_model is None:
        start = time.perf_counter()
        payload = compressor.compress(sample)
        mid = time.perf_counter()
        recon = compressor.decompress(payload)
        compress_s, decompress_s = mid - start, time.perf_counter() - mid
    else:
        payload = compressor.compress(sample)
        recon = compressor.decompress(payload)
        compress_s, decompress_s = task.cost_model.roundtrip_seconds(
            task.codec, int(sample.nbytes), len(payload))
    max_err = float(np.max(np.abs(sample.astype(np.float64)
                                  - recon.astype(np.float64)))) if sample.size else 0.0
    return CandidateMeasurement(
        codec=task.codec, error_bound=float(task.error_bound), mode=task.mode,
        sample_bytes=int(sample.nbytes), compressed_bytes=len(payload),
        compress_seconds=compress_s, decompress_seconds=decompress_s,
        max_abs_error=max_err)


class CodecProfiler:
    """Benchmarks the candidate grid on seeded samples of tensors, with a cache.

    * **Sampling** — tensors above ``sample_limit`` elements are profiled on a
      *contiguous* window at a seeded offset (contiguity preserves the local
      smoothness the prediction-based codecs exploit; a strided sample would
      systematically underestimate their ratio).  The offset depends only on
      ``(seed, tensor content)``, so profiling is reproducible run to run and
      independent of tensor naming.  ``sample_limit=None`` profiles whole
      tensors (what :func:`~repro.core.selection.select_compressor` does).
    * **Caching** — profiles are keyed by content fingerprint (shape, dtype,
      CRC-32 of the sample bytes); re-profiling identical bytes never
      re-measures, and the hit/miss counters make that observable.  The key
      deliberately excludes the tensor name, so tied or duplicated tensors
      share one measurement.
    * **Drift detection** — with ``drift_threshold`` set (implied by
      ``profile_cache``), a tensor whose exact fingerprint misses but whose
      (shape, dtype, sample size) matches a previously measured *anchor* is
      compared statistically: if its sampled-window mean/std/absmax stay
      within the threshold of the anchor's, the anchor's measurements are
      reused (a hit — this is what makes round 2+ of training
      measurement-free); past the threshold the tensor is re-measured and
      becomes the new anchor (counted in ``drifts``).  Distinct same-shape
      tensors with statistics inside the threshold deliberately share one
      measurement — the sample is a throughput/ratio estimate, not a hash.
    * **Durability** — ``profile_cache`` names a JSON file (format in
      FORMATS.md) holding the anchors; it is loaded at construction when its
      versioned header and grid match this profiler's, rewritten atomically
      after every call that measured, and ignored (started empty) when
      missing, corrupt, or written under a different grid.
    * **Fan-out** — uncached ``tensor x candidate`` pairs dispatch as one flat
      :meth:`ExecutionBackend.map` batch of picklable tasks; results are
      order-stable, so profiles are identical on any backend at any worker
      count.

    Instances are thread-safe (the round engine profiles several clients
    concurrently) and picklable (policies embedding a profiler cross process
    boundaries; the cache travels along, pre-warming the worker).
    """

    def __init__(self, candidates: Sequence[str] | None = None,
                 error_bounds: Iterable[float] | None = None,
                 mode: ErrorBoundMode | str = ErrorBoundMode.REL,
                 sample_limit: int | None = 65536, seed: int = 0,
                 cost_model: "CostModel | str | None" = None,
                 backend: "str | ExecutionBackend" = "thread",
                 workers: int | None = 1,
                 profile_cache: "str | os.PathLike | None" = None,
                 drift_threshold: float | None = None) -> None:
        from repro.compressors.registry import available_lossy

        self.candidates = tuple(candidates) if candidates is not None else DEFAULT_CANDIDATES
        if not self.candidates:
            raise ValueError("candidates must name at least one codec")
        unknown = [c for c in self.candidates if c not in available_lossy()]
        if unknown:
            raise ValueError(f"unknown candidate codecs {unknown}; "
                             f"available: {available_lossy()}")
        bounds = tuple(float(b) for b in (error_bounds if error_bounds is not None
                                          else DEFAULT_ERROR_BOUNDS))
        if not bounds:
            raise ValueError("error_bounds must be non-empty")
        if any(not np.isfinite(b) or b <= 0 for b in bounds):
            raise ValueError(f"error bounds must be positive and finite, got {bounds}")
        self.error_bounds = bounds
        self.mode = ErrorBoundMode(mode)
        if sample_limit is not None and sample_limit < 1:
            raise ValueError("sample_limit must be >= 1 (or None for whole tensors)")
        self.sample_limit = sample_limit
        self.seed = int(seed)
        self.cost_model = resolve_cost_model(cost_model)
        self.backend = get_backend(backend)
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.profile_cache = os.fspath(profile_cache) \
            if profile_cache is not None else None
        if drift_threshold is None and self.profile_cache is not None:
            drift_threshold = DEFAULT_DRIFT_THRESHOLD
        if drift_threshold is not None and \
                (not np.isfinite(drift_threshold) or drift_threshold <= 0):
            raise ValueError(f"drift_threshold must be positive and finite, "
                             f"got {drift_threshold!r}")
        self.drift_threshold = float(drift_threshold) \
            if drift_threshold is not None else None
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_drifts = 0
        self._cache: dict[tuple, tuple[CandidateMeasurement, ...]] = {}
        #: drift bookkeeping: (shape, dtype, sample size, delta) -> the
        #: anchor's exact fingerprint, and exact fingerprint -> its sample
        #: statistics
        self._anchors: dict[tuple, tuple] = {}
        self._stats: dict[tuple, dict] = {}
        self._lock = threading.Lock()
        if self.profile_cache is not None:
            self._load_cache_file()

    # -- pickling: locks don't cross process boundaries, the cache does ------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def grid(self) -> tuple[tuple[str, float], ...]:
        """The ``(codec, bound)`` grid in measurement order (candidate-major)."""
        return tuple((codec, bound) for codec in self.candidates
                     for bound in self.error_bounds)

    def cache_info(self) -> dict:
        """Hit/miss/drift counters and resident profile count."""
        with self._lock:
            return {"hits": self.cache_hits, "misses": self.cache_misses,
                    "drifts": self.cache_drifts, "profiles": len(self._cache)}

    # -- durable cache -------------------------------------------------------
    def _grid_descriptor(self) -> dict:
        """The profiler identity a durable cache must match to be reusable.

        Any knob that changes what a measurement *means* is included; the
        dispatch knobs (backend/workers) are not — profiles are identical
        whatever runs them.
        """
        return {
            "candidates": list(self.candidates),
            "error_bounds": [float(b) for b in self.error_bounds],
            "mode": self.mode.value,
            "sample_limit": self.sample_limit,
            "seed": self.seed,
            "cost_model": "measured" if self.cost_model is None
            else self.cost_model.label,
        }

    def _load_cache_file(self) -> None:
        """Adopt the on-disk anchors; any mismatch or damage starts empty.

        Silent-on-mismatch is deliberate: a cache written under a different
        grid is not an error, it is simply not *this* profiler's cache.
        """
        try:
            with open(self.profile_cache, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("format") != PROFILE_CACHE_FORMAT:
                return
            if payload.get("version") != PROFILE_CACHE_VERSION:
                return
            if payload.get("grid") != self._grid_descriptor():
                return
            for entry in payload["entries"]:
                key = (tuple(int(d) for d in entry["shape"]),
                       str(entry["dtype"]), int(entry["sample_size"]),
                       int(entry["crc32"]), bool(entry.get("delta", False)))
                measurements = tuple(
                    CandidateMeasurement(
                        codec=str(m["codec"]),
                        error_bound=float(m["error_bound"]),
                        mode=ErrorBoundMode(m["mode"]),
                        sample_bytes=int(m["sample_bytes"]),
                        compressed_bytes=int(m["compressed_bytes"]),
                        compress_seconds=float(m["compress_seconds"]),
                        decompress_seconds=float(m["decompress_seconds"]),
                        max_abs_error=float(m["max_abs_error"]))
                    for m in entry["measurements"])
                stats = {"mean": float(entry["stats"]["mean"]),
                         "std": float(entry["stats"]["std"]),
                         "absmax": float(entry["stats"]["absmax"])}
                with self._lock:
                    self._cache[key] = measurements
                    self._stats[key] = stats
                    self._anchors[self._anchor_bucket(key)] = key
        except (OSError, ValueError, KeyError, TypeError):
            return

    def _save_cache_file(self) -> None:
        """Atomically rewrite the durable cache with the current anchors.

        Anchors only — fingerprint aliases created by drift-tolerant reuse
        rebuild themselves on the next run, so the file stays bounded by the
        number of distinct tensor geometries, not the number of rounds.
        """
        with self._lock:
            entries = []
            for key in self._anchors.values():
                measurements = self._cache.get(key)
                stats = self._stats.get(key)
                if measurements is None or stats is None:
                    continue
                shape, dtype, sample_size, crc, is_delta = key
                entries.append({
                    "shape": list(shape), "dtype": dtype,
                    "sample_size": sample_size, "crc32": crc,
                    "delta": is_delta, "stats": stats,
                    "measurements": [{
                        "codec": m.codec, "error_bound": m.error_bound,
                        "mode": m.mode.value, "sample_bytes": m.sample_bytes,
                        "compressed_bytes": m.compressed_bytes,
                        "compress_seconds": m.compress_seconds,
                        "decompress_seconds": m.decompress_seconds,
                        "max_abs_error": m.max_abs_error,
                    } for m in measurements],
                })
        payload = {"format": PROFILE_CACHE_FORMAT,
                   "version": PROFILE_CACHE_VERSION,
                   "grid": self._grid_descriptor(), "entries": entries}
        tmp = f"{self.profile_cache}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self.profile_cache)

    def sample(self, name: str, array: np.ndarray) -> np.ndarray:
        """The deterministic sample of ``array`` the grid is measured on.

        The window offset is seeded by ``(profiler seed, content prefix,
        size)`` — *not* by ``name`` — so byte-identical tensors sample the
        same window under any name, which is what lets the content-keyed
        cache unify weight-tied tensors.
        """
        flat = np.ascontiguousarray(np.asarray(array)).ravel()
        limit = self.sample_limit
        if limit is None or flat.size <= limit:
            return flat
        prefix = zlib.crc32(flat[:1024].tobytes())
        rng = np.random.default_rng([self.seed, prefix, flat.size])
        start = int(rng.integers(0, flat.size - limit + 1))
        return flat[start:start + limit]

    def _fingerprint(self, array: np.ndarray, sample: np.ndarray,
                     delta: bool = False) -> tuple:
        return (tuple(np.asarray(array).shape), str(sample.dtype),
                int(sample.size), zlib.crc32(sample.tobytes()), bool(delta))

    @staticmethod
    def _anchor_bucket(key: tuple) -> tuple:
        """The drift-anchor bucket of a fingerprint: geometry plus the delta
        flag, without the content CRC.  Residual tensors (delta codec wire
        dicts) share shapes with full states but have entirely different
        statistics — bucketing them together would thrash both anchors."""
        return key[:3] + key[4:]

    def profile_tensors(self, tensors: "Mapping[str, np.ndarray]",
                        backend: "str | ExecutionBackend | None" = None,
                        workers: int | None = None, delta: bool = False,
                        ) -> "OrderedDict[str, TensorProfile]":
        """Profile every tensor, measuring only the fingerprints not yet cached.

        All uncached ``tensor x candidate`` work dispatches as one flat
        backend map, so a whole state dict profiles with full fan-out instead
        of per-tensor batches.  ``backend``/``workers`` override the
        profiler's own dispatch configuration for this call (``None`` =
        inherit) — the hook the profiled policy uses to honour the pipeline
        config's execution knobs on a shared profiler.  Profiles are
        identical whatever runs them.  ``delta`` folds into the fingerprint
        (and drift-anchor bucket), keeping residual-tensor profiles disjoint
        from full-state ones.
        """
        samples: "OrderedDict[str, np.ndarray]" = OrderedDict()
        keys: dict[str, tuple] = {}
        missing: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        pending_stats: dict[tuple, dict] = {}
        for name, array in tensors.items():
            array = np.asarray(array)
            sample = self.sample(name, array)
            samples[name] = sample
            keys[name] = key = self._fingerprint(array, sample, delta)
            with self._lock:
                if key in self._cache or key in missing:
                    self.cache_hits += 1
                    continue
                if self.drift_threshold is None:
                    self.cache_misses += 1
                    missing[key] = sample
                    continue
                stats = _sample_stats(sample)
                anchor = self._anchors.get(self._anchor_bucket(key))
                if anchor is not None and anchor in self._cache and \
                        not _drifted(self._stats[anchor], stats,
                                     self.drift_threshold):
                    # content moved, statistics did not: reuse the anchor's
                    # measurements under the new fingerprint
                    self._cache[key] = self._cache[anchor]
                    self.cache_hits += 1
                    continue
                if anchor is not None:
                    self.cache_drifts += 1
                else:
                    self.cache_misses += 1
                missing[key] = sample
                pending_stats[key] = stats

        if missing:
            tasks = [_CandidateTask(codec, bound, self.mode, sample, self.cost_model)
                     for sample in missing.values()
                     for codec, bound in self.grid]
            exec_backend = get_backend(backend) if backend is not None else self.backend
            results = exec_backend.map(_measure_candidate_task, tasks,
                                       workers=workers if workers is not None
                                       else self.workers)
            grid_size = len(self.grid)
            with self._lock:
                for i, key in enumerate(missing):
                    self._cache[key] = tuple(results[i * grid_size:(i + 1) * grid_size])
                    if key in pending_stats:
                        # a freshly measured tensor becomes its geometry's
                        # drift anchor
                        self._stats[key] = pending_stats[key]
                        self._anchors[self._anchor_bucket(key)] = key
            if self.profile_cache is not None:
                self._save_cache_file()

        profiles: "OrderedDict[str, TensorProfile]" = OrderedDict()
        for name, array in tensors.items():
            array = np.asarray(array)
            sample = samples[name]
            with self._lock:
                measurements = self._cache[keys[name]]
            profiles[name] = TensorProfile(
                name=name, shape=tuple(array.shape), dtype=str(array.dtype),
                nbytes=int(array.nbytes), sample_elements=int(sample.size),
                sample_bytes=int(sample.nbytes), measurements=measurements)
        return profiles

    def profile_tensor(self, name: str, array: np.ndarray) -> TensorProfile:
        """Profile one tensor (cache-aware convenience wrapper)."""
        return self.profile_tensors({name: array})[name]


# ---------------------------------------------------------------------------
# The profiled plan policy
# ---------------------------------------------------------------------------

class ProfiledPolicy(CompressionPolicy):
    """Per-link plan selection from measured profiles (registry: ``profiled``).

    For every lossy tensor the policy asks the profiler for its grid
    measurements and picks the candidate minimizing the Eqn.-1 end-to-end
    time ``t_C + t_D + S'/B`` on *this* link, subject to

    * the accuracy proxy of Problem 2: candidate bounds above ``max_bound``
      (default: the pipeline config's ``error_bound``) are excluded, and
    * the feasibility constraint of Problem 1: the winner must strictly beat
      shipping the tensor uncompressed, at ratio >= 1.

    When no candidate qualifies — the link is faster than the Figure-8
    crossover — the tensor ships through the lossless ``verbatim`` tier
    instead of paying for compression that slows the round down.  Every
    decision is recorded under :data:`PLAN_PROVENANCE_KEY` in the tensor's
    plan options, which the manifest's plan summary carries to the decoder.

    ``cost_model`` defaults to ``"analytic"``: deterministic plans (and
    therefore bit-identical seeded simulations on any backend at any worker
    count) out of the box; pass ``"measured"`` to profile with the wall clock.
    ``for_network`` returns per-link variants that share this policy's
    profiler, so a heterogeneous fleet profiles each distinct update once.

    ``backend``/``workers`` steer the candidate-grid fan-out; left ``None``
    they inherit the pipeline config's ``backend``/``pipeline_workers`` at
    plan-build time, so the one execution knob that drives every other
    fan-out stage drives profiling too.

    ``profile_cache`` (a path) makes the profiler's measurement cache durable
    across runs, with statistical drift detection tuned by
    ``drift_threshold`` — see :class:`CodecProfiler` for the semantics and
    FORMATS.md for the on-disk format.
    """

    name = "profiled"

    def __init__(self, network: NetworkModel | None = None,
                 bandwidth_mbps: float | None = None, latency_s: float | None = None,
                 candidates: Sequence[str] | None = None,
                 error_bounds: Iterable[float] | None = None,
                 max_bound: float | None = None,
                 device: DeviceProfile | None = None,
                 cost_model: "CostModel | str | None" = "analytic",
                 sample_limit: int | None = 65536, seed: int = 0,
                 profiler: CodecProfiler | None = None,
                 profile_cache: "str | os.PathLike | None" = None,
                 drift_threshold: float | None = None,
                 fallback_codec: str = "verbatim",
                 backend: "str | ExecutionBackend | None" = None,
                 workers: int | None = None,
                 overrides: "Mapping[str, Mapping[str, object]] | None" = None) -> None:
        super().__init__(overrides)
        self.backend = get_backend(backend) if backend is not None else None
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if network is not None:
            if bandwidth_mbps is not None or latency_s is not None:
                raise ValueError("pass either network or bandwidth_mbps/latency_s, "
                                 "not both")
            bandwidth_mbps = network.bandwidth_mbps
            latency_s = network.latency_s
        self.bandwidth_mbps = float(bandwidth_mbps) if bandwidth_mbps is not None else 10.0
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        self.latency_s = float(latency_s) if latency_s is not None else 0.0
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if max_bound is not None and (not np.isfinite(max_bound) or max_bound <= 0):
            raise ValueError(f"max_bound must be a positive finite bound, got {max_bound!r}")
        self.max_bound = float(max_bound) if max_bound is not None else None
        self.device = device
        if profiler is not None:
            if candidates is not None or error_bounds is not None:
                raise ValueError("candidates/error_bounds belong to the profiler; "
                                 "configure them there when passing one explicitly")
            if profile_cache is not None or drift_threshold is not None:
                raise ValueError("profile_cache/drift_threshold belong to the "
                                 "profiler; configure them there when passing "
                                 "one explicitly")
            self.profiler = profiler
        else:
            self.profiler = CodecProfiler(candidates=candidates,
                                          error_bounds=error_bounds,
                                          sample_limit=sample_limit, seed=seed,
                                          cost_model=cost_model,
                                          profile_cache=profile_cache,
                                          drift_threshold=drift_threshold)
        from repro.compressors.registry import available_lossy

        if fallback_codec not in available_lossy():
            raise ValueError(f"unknown fallback codec {fallback_codec!r}; "
                             f"available: {available_lossy()}")
        self.fallback_codec = fallback_codec

    def for_network(self, network: NetworkModel) -> "ProfiledPolicy":
        """A variant of this policy bound to ``network``'s bandwidth/latency.

        The variant shares this policy's profiler (and therefore its cache):
        a fleet of per-client policies measures each distinct tensor content
        once and re-plans it per link.
        """
        if (network.bandwidth_mbps == self.bandwidth_mbps
                and network.latency_s == self.latency_s):
            return self
        return ProfiledPolicy(network=network, max_bound=self.max_bound,
                              device=self.device, profiler=self.profiler,
                              fallback_codec=self.fallback_codec,
                              backend=self.backend, workers=self.workers,
                              overrides=self.overrides)

    # ------------------------------------------------------------------
    def _provenance(self, profile: TensorProfile,
                    measurement: CandidateMeasurement | None,
                    modeled_seconds: float) -> dict:
        cost_model = self.profiler.cost_model
        base = {
            "policy": self.name,
            "bandwidth_mbps": self.bandwidth_mbps,
            "latency_s": self.latency_s,
            "uncompressed_seconds": profile.uncompressed_seconds(
                self.bandwidth_mbps, self.latency_s),
            "modeled_seconds": modeled_seconds,
            "sample_elements": profile.sample_elements,
            "cost_model": "measured" if cost_model is None else cost_model.label,
            "device": self.device.name if self.device is not None else None,
        }
        if measurement is None:
            base.update({"worthwhile": False, "fallback": True, "estimated_ratio": 1.0})
        else:
            base.update({"worthwhile": True, "fallback": False,
                         "estimated_ratio": measurement.ratio})
        return base

    def _prepare(self, tensors: "Mapping[str, np.ndarray]", config,
                 delta: bool = False) -> object:
        # inherit the pipeline's execution knobs unless explicitly overridden,
        # so the config's one backend switch also steers profiling fan-out
        backend = self.backend if self.backend is not None \
            else getattr(config, "backend", None)
        workers = self.workers if self.workers is not None \
            else getattr(config, "pipeline_workers", None)
        profiles = self.profiler.profile_tensors(tensors, backend=backend,
                                                 workers=workers, delta=delta)
        cap = self.max_bound if self.max_bound is not None else config.error_bound
        choices: dict[str, TensorPlan] = {}
        for name, profile in profiles.items():
            measurement, modeled = profile.best_for_link(
                self.bandwidth_mbps, self.latency_s, device=self.device,
                max_bound=cap)
            provenance = self._provenance(profile, measurement, modeled)
            if measurement is None:
                # above the crossover: ship the tensor losslessly rather than
                # pay for compression that slows the round down
                choices[name] = TensorPlan(
                    name, self.fallback_codec, cap, config.error_mode,
                    options={PLAN_PROVENANCE_KEY: provenance})
            else:
                choices[name] = TensorPlan(
                    name, measurement.codec, measurement.error_bound,
                    measurement.mode,
                    options={PLAN_PROVENANCE_KEY: provenance})
        return choices

    def _plan_tensor(self, name: str, array: np.ndarray, config,
                     context: object) -> TensorPlan:
        return context[name]

"""Tests for the binary serialization helpers."""

import numpy as np
import pytest

from repro.utils.serialization import (
    pack_arrays,
    pack_bytes_dict,
    unpack_arrays,
    unpack_bytes_dict,
)


class TestBytesDict:
    def test_roundtrip_preserves_entries_and_order(self):
        data = {"alpha": b"\x00\x01\x02", "beta": b"", "gamma": b"hello world"}
        out = unpack_bytes_dict(pack_bytes_dict(data))
        assert out == data
        assert list(out) == list(data)

    def test_empty_dict(self):
        assert unpack_bytes_dict(pack_bytes_dict({})) == {}

    def test_unicode_keys(self):
        data = {"weights/层.weight": b"abc"}
        assert unpack_bytes_dict(pack_bytes_dict(data)) == data

    def test_large_values(self):
        blob = bytes(np.random.default_rng(0).integers(0, 256, 100_000, dtype=np.uint8))
        data = {"big": blob}
        assert unpack_bytes_dict(pack_bytes_dict(data))["big"] == blob

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            unpack_bytes_dict(b"NOPE" + b"\x00" * 16)


class TestArrayDict:
    def test_roundtrip_dtypes_and_shapes(self):
        rng = np.random.default_rng(1)
        data = {
            "f32": rng.standard_normal((3, 4)).astype(np.float32),
            "f64": rng.standard_normal(7),
            "i64": rng.integers(-5, 5, size=(2, 2, 2)),
            "scalar": np.float32(3.5),
            "empty": np.zeros((0, 4), dtype=np.float32),
        }
        out = unpack_arrays(pack_arrays(data))
        assert set(out) == set(data)
        for key in data:
            np.testing.assert_array_equal(out[key], np.asarray(data[key]))
            assert out[key].dtype == np.asarray(data[key]).dtype
            assert out[key].shape == np.asarray(data[key]).shape

    def test_non_contiguous_input(self):
        base = np.arange(24, dtype=np.float32).reshape(4, 6)
        view = base[:, ::2]
        out = unpack_arrays(pack_arrays({"v": view}))["v"]
        np.testing.assert_array_equal(out, view)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            unpack_arrays(b"XXXX\x00\x00\x00\x00")

    def test_output_is_writable_copy(self):
        data = {"a": np.ones(4, dtype=np.float32)}
        out = unpack_arrays(pack_arrays(data))
        out["a"][0] = 42.0
        assert data["a"][0] == 1.0

"""Differentially-private FedSZ codec (the paper's second future-work direction).

Section VIII-B asks how the noise lossy compression introduces might offer DP
for FL communications.  Compression error alone carries no formal guarantee
(it is data-dependent), so this module implements the standard construction on
top of FedSZ: clip each lossy tensor to a norm budget, add calibrated Laplace
noise for a user-chosen per-round epsilon, and *then* compress with FedSZ.
Because the noise scale is typically of the same order as the compression
error at the recommended bound, the bitstream stays small — the combination the
paper envisions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.config import FedSZConfig
from repro.core.partition import partition_state_dict
from repro.core.pipeline import FedSZCompressor
from repro.fl.codec import UpdateCodec
from repro.privacy.dp import laplace_mechanism_scale
from repro.utils.rng import make_rng

__all__ = ["DPFedSZConfig", "DPFedSZUpdateCodec"]


@dataclass
class DPFedSZConfig:
    """Privacy parameters layered on top of a :class:`FedSZConfig`."""

    epsilon: float = 1.0
    clip_norm: float = 1.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")


class DPFedSZUpdateCodec(UpdateCodec):
    """Clip + Laplace-noise + FedSZ-compress a client update.

    The L1 sensitivity of a clipped tensor is ``2 * clip_norm`` (replacing one
    client's data can move the clipped update anywhere inside the clip ball),
    so the per-tensor noise scale is ``2 * clip_norm / epsilon``.  Decoding is
    plain FedSZ decompression — the noise is part of the transmitted update,
    exactly like standard DP-FedAvg.
    """

    name = "dp-fedsz"

    def __init__(self, fedsz_config: FedSZConfig | None = None,
                 dp_config: DPFedSZConfig | None = None) -> None:
        self.fedsz_config = fedsz_config or FedSZConfig()
        self.dp_config = dp_config or DPFedSZConfig()
        self.compressor = FedSZCompressor(self.fedsz_config)
        self._rng = make_rng(self.dp_config.seed)

    # ------------------------------------------------------------------
    def _privatize(self, state: dict[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
        partition = partition_state_dict(state, self.fedsz_config)
        noise_scale = laplace_mechanism_scale(2.0 * self.dp_config.clip_norm,
                                              self.dp_config.epsilon)
        private: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, value in state.items():
            if name in partition.lossy:
                flat = value.astype(np.float64).ravel()
                norm = float(np.linalg.norm(flat))
                if norm > self.dp_config.clip_norm:
                    flat = flat * (self.dp_config.clip_norm / norm)
                noisy = flat + self._rng.laplace(0.0, noise_scale, size=flat.size)
                private[name] = noisy.reshape(value.shape).astype(value.dtype)
            else:
                private[name] = value
        return private

    # ------------------------------------------------------------------
    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return self.compressor.compress_state_dict(self._privatize(state))

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return self.compressor.decompress_state_dict(payload)

    def encode_with_report(self, state: dict[str, np.ndarray]):
        """Privatize then compress, returning per-call compression statistics."""
        return self.compressor.compress_with_report(self._privatize(state))

    @property
    def noise_scale(self) -> float:
        """Laplace scale added to every lossy-partition element."""
        return laplace_mechanism_scale(2.0 * self.dp_config.clip_norm, self.dp_config.epsilon)

    @property
    def last_report(self):
        """Compression statistics of the most recent :meth:`encode` call."""
        return self.compressor.last_report

"""Differential-privacy accounting for Laplace-shaped noise.

The classic Laplace mechanism (Dwork et al., 2006) achieves ``eps``-DP by
adding Laplace noise of scale ``b = sensitivity / eps``.  The paper does not
claim FedSZ is formally private, only that the compression error *looks*
Laplacian; these helpers quantify what privacy level equivalent additive noise
of the observed scale would correspond to, which is what the Figure 10
benchmark reports alongside the distribution fit.
"""

from __future__ import annotations

__all__ = ["laplace_mechanism_scale", "epsilon_for_laplace_noise"]


def laplace_mechanism_scale(sensitivity: float, epsilon: float) -> float:
    """Noise scale ``b`` required for ``epsilon``-DP at the given L1 sensitivity."""
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return sensitivity / epsilon


def epsilon_for_laplace_noise(sensitivity: float, noise_scale: float) -> float:
    """Privacy level that additive Laplace noise of scale ``noise_scale`` would give.

    This is the *hypothetical equivalent* epsilon: the guarantee only holds if
    the noise were genuinely independent Laplace noise, which compression error
    is not — the caveat the paper spells out in Section VII-D.
    """
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    if noise_scale <= 0:
        raise ValueError("noise_scale must be positive")
    return sensitivity / noise_scale

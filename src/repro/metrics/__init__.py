"""Result containers and plain-text table rendering used by the benchmark harness."""

from repro.metrics.tables import Table, format_bound, format_ratio, format_seconds_cell
from repro.metrics.records import CompressionRecord, ExperimentRecord

__all__ = [
    "Table",
    "format_bound",
    "format_ratio",
    "format_seconds_cell",
    "CompressionRecord",
    "ExperimentRecord",
]

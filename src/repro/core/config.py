"""Configuration of the FedSZ pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compressors.base import ErrorBoundMode
from repro.utils.parallel import get_backend

__all__ = ["FedSZConfig"]


@dataclass
class FedSZConfig:
    """User-facing knobs of the FedSZ compression scheme.

    Parameters mirror Algorithm 1 and Section V of the paper:

    * ``lossy_compressor`` — registry name of the EBLC applied to large weight
      tensors (``"sz2"`` is the paper's recommendation),
    * ``error_bound`` / ``error_mode`` — the per-element bound; the paper's
      recommended operating point is a relative bound of ``1e-2``,
    * ``lossless_codec`` — codec for metadata and non-weight tensors
      (``"blosclz"`` is the paper's recommendation),
    * ``threshold`` — minimum element count for a ``weight`` tensor to be
      lossy-compressed (Algorithm 1's ``threshold`` argument); smaller tensors
      are cheaper to ship losslessly than to compress,
    * ``lossy_name_tokens`` — substrings of the state-dict key that mark a
      tensor as a candidate for lossy compression (Algorithm 1 checks for
      ``"weight"``),
    * ``entropy_chunk`` / ``entropy_workers`` — chunking and decode
      concurrency of the SZ2/SZ3 Huffman entropy stage: ``entropy_chunk``
      caps the symbols per independently-decodable chunk, ``entropy_workers=1``
      selects the sequential reference decoder, larger values the banded
      vectorized decoder on the execution backend (bit-identical output),
    * ``policy`` / ``policy_options`` — registry name and constructor kwargs
      of the plan policy (:mod:`repro.core.plan`) that assigns each lossy
      tensor its codec/bound/options; ``"uniform"`` reproduces the historic
      one-codec-one-bound behaviour, ``"size-adaptive"`` shrinks bounds on
      small tensors, ``"mixed-codec"`` routes small tensors to a fast codec,
    * ``pipeline_workers`` — per-tensor compress/decompress concurrency of the
      state-dict pipeline: ``1`` is the strictly sequential reference path,
      larger values fan tensors out over the execution backend (bit-identical
      bitstreams at any worker count).  On the GIL-bound ``thread`` backend
      the effective count is clamped to the host's cores — tensor compression
      is pure CPU work, so extra threads are strict oversubscription,
    * ``backend`` — the :mod:`repro.utils.parallel` execution backend both
      fan-out stages (per-tensor pipeline, Huffman entropy decode) run on:
      ``"serial"`` (sequential reference), ``"thread"`` (the historic
      default), or ``"process"`` (GIL-free, for many-core servers decoding
      large client fleets).  Bitstreams are bit-identical across backends.
    """

    lossy_compressor: str = "sz2"
    error_bound: float = 1e-2
    error_mode: ErrorBoundMode = ErrorBoundMode.REL
    lossless_codec: str = "blosclz"
    threshold: int = 1024
    lossy_name_tokens: tuple[str, ...] = ("weight",)
    entropy_chunk: int = 65536
    entropy_workers: int = 1
    policy: str = "uniform"
    pipeline_workers: int = 1
    backend: str = "thread"
    lossy_options: dict = field(default_factory=dict)
    lossless_options: dict = field(default_factory=dict)
    policy_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.error_bound <= 0:
            raise ValueError("error_bound must be positive")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.entropy_chunk < 1:
            raise ValueError("entropy_chunk must be >= 1")
        if self.entropy_workers < 1:
            raise ValueError("entropy_workers must be >= 1")
        if self.pipeline_workers < 1:
            raise ValueError("pipeline_workers must be >= 1")
        get_backend(self.backend)  # unknown names raise ValueError here
        if isinstance(self.error_mode, str):
            self.error_mode = ErrorBoundMode(self.error_mode)

    def replace(self, **changes: object) -> "FedSZConfig":
        """Return a copy of the config with ``changes`` applied."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)

"""Setuptools shim.

The environment used for development ships setuptools without the ``wheel``
package, so PEP 517 editable builds (which require ``bdist_wheel``) are not
available.  Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the
legacy develop install.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Compression substrate: error-bounded lossy compressors and lossless codecs.

This subpackage re-implements, from scratch and in NumPy, the four EBLC designs
the paper evaluates (SZ2, SZ3, SZx, ZFP) plus the lossless codecs used for
metadata (a blosc-lz-like shuffle codec and the stdlib codecs).  All lossy
compressors honour a per-element error bound, expressed either absolutely
(``ErrorBoundMode.ABS``) or relative to the data's dynamic range
(``ErrorBoundMode.REL``), matching Section V-D1 of the paper.
"""

from repro.compressors.base import (
    CompressionStats,
    Compressor,
    ErrorBound,
    ErrorBoundMode,
    LossyCompressor,
    roundtrip,
)
from repro.compressors.huffman import HuffmanCoder
from repro.compressors.lossless import (
    BloscLZCodec,
    Bzip2Codec,
    GzipCodec,
    LosslessCodec,
    LzmaCodec,
    ShuffleRLECodec,
    ZlibCodec,
    ZstdLikeCodec,
    available_lossless,
    get_lossless,
)
from repro.compressors.quantizer import LinearQuantizer
from repro.compressors.registry import available_lossy, get_lossy, register_lossy
from repro.compressors.sz2 import SZ2Compressor
from repro.compressors.sz3 import SZ3Compressor
from repro.compressors.szx import SZxCompressor
from repro.compressors.verbatim import VerbatimCompressor
from repro.compressors.zfp import ZFPCompressor

__all__ = [
    "Compressor",
    "LossyCompressor",
    "CompressionStats",
    "ErrorBound",
    "ErrorBoundMode",
    "roundtrip",
    "HuffmanCoder",
    "LinearQuantizer",
    "SZ2Compressor",
    "SZ3Compressor",
    "SZxCompressor",
    "VerbatimCompressor",
    "ZFPCompressor",
    "LosslessCodec",
    "BloscLZCodec",
    "ShuffleRLECodec",
    "ZlibCodec",
    "GzipCodec",
    "Bzip2Codec",
    "LzmaCodec",
    "ZstdLikeCodec",
    "available_lossless",
    "get_lossless",
    "available_lossy",
    "get_lossy",
    "register_lossy",
]

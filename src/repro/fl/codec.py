"""Update codecs: how a client ``state_dict`` becomes bytes on the wire.

FedSZ is a "last step" in the communication pipeline (Section III-C of the
paper): any serialization scheme can sit behind the same interface.  Two
codecs are provided — :class:`RawUpdateCodec` (the uncompressed baseline, a
plain packed-array serialization standing in for pickled tensors) and
:class:`FedSZUpdateCodec` (the paper's contribution).
"""

from __future__ import annotations

import abc
from collections import OrderedDict

import numpy as np

from repro.core.config import FedSZConfig
from repro.core.pipeline import FedSZCompressor, FedSZReport
from repro.utils.serialization import pack_arrays, unpack_arrays

__all__ = ["UpdateCodec", "RawUpdateCodec", "FedSZUpdateCodec"]


class UpdateCodec(abc.ABC):
    """Serialize/deserialize a model state dict for transmission."""

    name: str = "base"

    @abc.abstractmethod
    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        """Turn a state dict into wire bytes."""

    @abc.abstractmethod
    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        """Recover a state dict from wire bytes."""

    def encode_with_report(self, state: dict[str, np.ndarray]) \
            -> tuple[bytes, "FedSZReport | None"]:
        """Encode plus per-call compression statistics (``None`` when the
        codec collects none).  Safe to call from concurrent round workers —
        codecs that compress override this to return a fresh report instead of
        mutating shared state."""
        return self.encode(state), None


class RawUpdateCodec(UpdateCodec):
    """Uncompressed baseline: packed float32 tensors, no reduction."""

    name = "uncompressed"

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return pack_arrays(dict(state))

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(unpack_arrays(payload))


class FedSZUpdateCodec(UpdateCodec):
    """FedSZ compression of client updates (the paper's scheme)."""

    name = "fedsz"

    def __init__(self, config: FedSZConfig | None = None) -> None:
        self.config = config or FedSZConfig()
        self.compressor = FedSZCompressor(self.config)

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return self.compressor.compress_state_dict(state)

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return self.compressor.decompress_state_dict(payload)

    def encode_with_report(self, state: dict[str, np.ndarray]) \
            -> tuple[bytes, FedSZReport]:
        """Encode one update and return its per-call :class:`FedSZReport`."""
        return self.compressor.compress_with_report(state)

    @property
    def last_report(self) -> FedSZReport | None:
        """Compression statistics of the most recent :meth:`encode` call.

        Single-slot convenience: after a parallel round it holds one arbitrary
        client; prefer :meth:`encode_with_report` (or the round record's
        ``client_reports``) for accurate per-client statistics.
        """
        return self.compressor.last_report

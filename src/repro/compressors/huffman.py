"""Canonical Huffman coding of integer symbol streams.

SZ2 and SZ3 entropy-code their quantization indices with Huffman before the
final lossless stage.  This module provides a self-contained canonical Huffman
coder over non-negative integer symbols:

* tree construction with :mod:`heapq` on the symbol histogram,
* code lengths limited to :data:`MAX_CODE_LENGTH` bits (package-merge style
  rebalancing by clamping and re-normalizing Kraft mass),
* vectorized encoding (all code bits emitted with NumPy in one shot),
* table-driven decoding (a flat lookup table indexed by ``MAX_CODE_LENGTH``-bit
  windows, the classic fast canonical decoder).

The encoded payload is self-describing: it stores the code-length table so the
decoder needs no side channel.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

__all__ = ["HuffmanCoder", "MAX_CODE_LENGTH"]

#: Longest permitted codeword.  16 keeps the decode lookup table at 64K entries.
MAX_CODE_LENGTH = 16


def _build_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Return per-symbol code lengths from a frequency histogram.

    Standard Huffman construction; lengths exceeding :data:`MAX_CODE_LENGTH`
    are clamped and the length table re-normalized so the Kraft inequality
    still holds (a slight loss of optimality, never of correctness).
    """
    symbols = np.flatnonzero(frequencies)
    lengths = np.zeros(frequencies.size, dtype=np.int64)
    if symbols.size == 0:
        return lengths
    if symbols.size == 1:
        lengths[symbols[0]] = 1
        return lengths

    # heap entries: (freq, tiebreak, node) where node is a symbol or [left, right]
    counter = 0
    heap: list[tuple[int, int, object]] = []
    for sym in symbols:
        heap.append((int(frequencies[sym]), counter, int(sym)))
        counter += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, (n1, n2)))
        counter += 1

    # depth-first traversal assigning depths
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)

    if lengths.max() <= MAX_CODE_LENGTH:
        return lengths

    # Clamp over-long codes and restore the Kraft inequality by lengthening the
    # shortest codes until sum(2^-len) <= 1 again.
    lengths[lengths > MAX_CODE_LENGTH] = MAX_CODE_LENGTH
    used = np.flatnonzero(lengths)

    def kraft(ls: np.ndarray) -> float:
        return float(np.sum(2.0 ** (-ls[used].astype(np.float64))))

    while kraft(lengths) > 1.0:
        # lengthen the currently shortest codeword (cheapest in extra bits)
        candidates = used[lengths[used] < MAX_CODE_LENGTH]
        if candidates.size == 0:
            raise RuntimeError("cannot satisfy Kraft inequality within MAX_CODE_LENGTH")
        target = candidates[np.argmin(lengths[candidates])]
        lengths[target] += 1
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values given per-symbol lengths (0 = unused)."""
    codes = np.zeros(lengths.size, dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    # canonical order: by (length, symbol)
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


class HuffmanCoder:
    """Encode/decode streams of non-negative integer symbols."""

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode ``symbols`` (any integer dtype, values >= 0) to bytes."""
        symbols = np.ascontiguousarray(symbols).ravel()
        if symbols.size and symbols.min() < 0:
            raise ValueError("Huffman symbols must be non-negative")
        if symbols.size == 0:
            return struct.pack("<IQ", 0, 0)
        symbols = symbols.astype(np.int64, copy=False)
        alphabet = int(symbols.max()) + 1
        freqs = np.bincount(symbols, minlength=alphabet)
        lengths = _build_code_lengths(freqs)
        codes = _canonical_codes(lengths)

        # header: alphabet size, symbol count, then 4-bit-packed... keep simple: u8 lengths
        header = struct.pack("<IQ", alphabet, symbols.size)
        header += lengths.astype(np.uint8).tobytes()

        sym_lengths = lengths[symbols]
        sym_codes = codes[symbols].astype(np.uint64)
        total_bits = int(sym_lengths.sum())
        max_len = int(lengths.max())

        # Emit every code MSB-first into a flat bit array in one vectorized pass.
        bitpos = np.arange(max_len, dtype=np.int64)
        shift = sym_lengths[:, None] - 1 - bitpos[None, :]
        valid = shift >= 0
        shifted = sym_codes[:, None] >> np.maximum(shift, 0).astype(np.uint64)
        bits = (shifted & np.uint64(1)).astype(np.uint8)
        flat_bits = bits[valid]
        assert flat_bits.size == total_bits
        packed = np.packbits(flat_bits)
        return header + struct.pack("<Q", total_bits) + packed.tobytes()

    def decode(self, payload: bytes) -> np.ndarray:
        """Decode a byte string produced by :meth:`encode` back to ``int64``."""
        alphabet, count = struct.unpack_from("<IQ", payload, 0)
        offset = 12
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        lengths = np.frombuffer(payload, dtype=np.uint8, count=alphabet, offset=offset).astype(np.int64)
        offset += alphabet
        (total_bits,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        bit_bytes = np.frombuffer(payload, dtype=np.uint8, offset=offset)
        bits = np.unpackbits(bit_bytes)[:total_bits]

        codes = _canonical_codes(lengths)
        used = np.flatnonzero(lengths)
        if used.size == 1:
            return np.full(count, int(used[0]), dtype=np.int64)

        # Fast canonical decoding: a lookup table indexed by the next
        # MAX_CODE_LENGTH bits gives (symbol, code length) directly.
        table_sym = np.zeros(1 << MAX_CODE_LENGTH, dtype=np.int64)
        table_len = np.zeros(1 << MAX_CODE_LENGTH, dtype=np.int64)
        for sym in used:
            length = int(lengths[sym])
            code = int(codes[sym])
            pad = MAX_CODE_LENGTH - length
            start = code << pad
            end = (code + 1) << pad
            table_sym[start:end] = sym
            table_len[start:end] = length

        # Pad the bitstream so windows never run off the end, then precompute
        # the MAX_CODE_LENGTH-bit window value at every bit offset in one
        # vectorized pass; the sequential decode loop below is then just two
        # table lookups per symbol.
        padded = np.concatenate([bits, np.zeros(MAX_CODE_LENGTH, dtype=np.uint8)])
        weights = (1 << np.arange(MAX_CODE_LENGTH - 1, -1, -1)).astype(np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(padded, MAX_CODE_LENGTH)
        window_vals = windows.astype(np.int64) @ weights

        out = np.empty(count, dtype=np.int64)
        pos = 0
        tbl_sym = table_sym.tolist()
        tbl_len = table_len.tolist()
        win = window_vals.tolist()
        # Decoding is inherently sequential (the next position depends on the
        # decoded length); keep the loop body minimal.
        for i in range(count):
            idx = win[pos]
            out[i] = tbl_sym[idx]
            pos += tbl_len[idx]
        if pos > total_bits:
            raise ValueError("corrupt Huffman stream: decoded past end of data")
        return out

    def decode_with_table(self, payload: bytes) -> np.ndarray:
        """Alias of :meth:`decode` kept for API symmetry with fast decoders."""
        return self.decode(payload)

"""Federated-learning substrate: FedAvg clients, server, and round orchestration.

This package stands in for the APPFL + gRPC/MPI stack the paper builds on.  It
keeps the same moving parts: clients train locally with SGD, serialize their
``state_dict`` through an :class:`~repro.fl.codec.UpdateCodec` (raw or FedSZ),
ship it across a :class:`~repro.core.network.NetworkModel`, and a FedAvg server
decodes, aggregates, and evaluates the global model each round.
"""

from repro.fl.client import ClientUpdate, FLClient
from repro.fl.codec import FedSZUpdateCodec, RawUpdateCodec, UpdateCodec
from repro.fl.coordinator import (
    Aggregator,
    ArrivalAggregator,
    Coordinator,
    FlatAggregator,
    PartialAggregate,
    RoundJournal,
    RoundPlan,
    RoundScheduler,
    SimulatedTransport,
    StalenessPolicy,
    Transport,
    TreeAggregator,
)
from repro.fl.scaling import (
    ScalingResult,
    scaling_speedups,
    simulate_strong_scaling,
    simulate_weak_scaling,
)
from repro.fl.server import FedAvgServer, evaluate_model, fedavg_aggregate
from repro.fl.simulation import (
    FederatedSimulation,
    RoundRecord,
    SimulationResult,
    train_clients_parallel,
)
from repro.utils.parallel import map_parallel, resolve_worker_count

__all__ = [
    "FLClient",
    "ClientUpdate",
    "UpdateCodec",
    "RawUpdateCodec",
    "FedSZUpdateCodec",
    "FedAvgServer",
    "fedavg_aggregate",
    "evaluate_model",
    "FederatedSimulation",
    "RoundRecord",
    "SimulationResult",
    "map_parallel",
    "resolve_worker_count",
    "train_clients_parallel",
    "ScalingResult",
    "scaling_speedups",
    "simulate_weak_scaling",
    "simulate_strong_scaling",
    "Coordinator",
    "RoundScheduler",
    "RoundPlan",
    "StalenessPolicy",
    "Aggregator",
    "ArrivalAggregator",
    "FlatAggregator",
    "TreeAggregator",
    "PartialAggregate",
    "RoundJournal",
    "Transport",
    "SimulatedTransport",
]

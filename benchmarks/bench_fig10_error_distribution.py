"""Figure 10: distribution of compression errors for different error bounds.

Computes the element-wise error between original and decompressed AlexNet
weights at REL bounds 0.5, 0.1, and 0.05 (the bounds Figure 10 plots), fits
Laplace and Gaussian models, and reports which fits better plus the equivalent
Laplace-mechanism privacy level the observed noise scale would correspond to.
"""

from __future__ import annotations

import numpy as np

from bench_utils import save_results, trained_like_state
from repro.compressors import SZ2Compressor
from repro.metrics import ExperimentRecord, Table
from repro.privacy import (
    analyze_error_distribution,
    compression_errors,
    epsilon_for_laplace_noise,
)

BOUNDS = (0.5, 0.1, 0.05)


def bench_fig10_error_distribution(benchmark):
    state = trained_like_state("alexnet", seed=10)
    weights = np.concatenate([v.ravel() for k, v in state.items()
                              if "weight" in k and v.size > 1024])

    def run():
        rows = []
        for bound in BOUNDS:
            errors = compression_errors(SZ2Compressor(error_bound=bound), weights)
            fit = analyze_error_distribution(errors, seed=1)
            sensitivity = float(np.max(np.abs(weights)))
            rows.append({
                "bound": bound,
                "error_std": fit.std,
                "laplace_scale": fit.laplace_scale,
                "laplace_ks": fit.laplace_ks,
                "normal_ks": fit.normal_ks,
                "excess_kurtosis": fit.excess_kurtosis,
                "laplace_like": fit.laplace_like,
                "equivalent_epsilon": epsilon_for_laplace_noise(sensitivity, fit.laplace_scale),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Figure 10 - compression error distribution (AlexNet weights, SZ2)",
                  ["REL bound", "error std", "Laplace scale b", "KS (Laplace)", "KS (Normal)",
                   "excess kurtosis", "Laplace-like?", "equiv. Laplace-mech epsilon"])
    record = ExperimentRecord("fig10", "error distribution shape and DP-equivalent noise level")
    for row in rows:
        table.add_row(f"{row['bound']:.2f}", f"{row['error_std']:.4f}",
                      f"{row['laplace_scale']:.4f}", f"{row['laplace_ks']:.3f}",
                      f"{row['normal_ks']:.3f}", f"{row['excess_kurtosis']:.2f}",
                      "yes" if row["laplace_like"] else "no",
                      f"{row['equivalent_epsilon']:.1f}")
        record.add(**row)
    save_results("fig10_error_distribution", table, record)

    by_bound = {r["bound"]: r for r in rows}
    # Paper finding: at the largest bound the error histogram is sharply peaked
    # and a Laplace fit beats a Gaussian fit.
    assert by_bound[0.5]["laplace_like"]
    assert by_bound[0.5]["excess_kurtosis"] > 0.5
    # Error magnitude shrinks with the bound.
    stds = [by_bound[b]["error_std"] for b in BOUNDS]
    assert stds == sorted(stds, reverse=True)

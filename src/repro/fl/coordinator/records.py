"""Round and run records: what one federated round (and one run) measured.

These dataclasses moved here from ``fl/simulation.py`` when the round engine
split into coordinator services — the :class:`Coordinator` builds them, the
:class:`~repro.fl.coordinator.journal.RoundJournal` persists and replays them,
and ``fl/simulation.py`` re-exports them unchanged for the historic import
path (``from repro.fl.simulation import RoundRecord``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import FedSZReport
from repro.core.plan import CompressionPlan

__all__ = ["RoundRecord", "SimulationResult"]


@dataclass
class RoundRecord:
    """Measurements of a single communication round."""

    round_index: int
    accuracy: float
    mean_train_seconds: float
    mean_encode_seconds: float
    mean_decode_seconds: float
    validation_seconds: float
    uncompressed_bytes: int
    transmitted_bytes: int
    communication_seconds: float
    client_losses: list[float] = field(default_factory=list)
    #: ids of the clients whose on-time updates were aggregated this round
    participants: list[int] = field(default_factory=list)
    #: ids of sampled clients that dropped out before reporting
    dropped_clients: list[int] = field(default_factory=list)
    #: ids of participants whose train/transfer time was straggler-inflated
    straggler_clients: list[int] = field(default_factory=list)
    #: per-client compression statistics, keyed by client id (empty when the
    #: codec collects none, e.g. the uncompressed baseline)
    client_reports: dict[int, FedSZReport] = field(default_factory=dict)
    #: per-client compression plans, keyed by client id (empty for codecs that
    #: report none); under a bandwidth-aware policy on a heterogeneous fleet
    #: these differ client to client — the per-link selection made visible
    client_plans: dict[int, CompressionPlan] = field(default_factory=dict)
    #: ids of clients whose modeled transfer missed the round deadline; their
    #: updates were queued for the staleness policy instead of aggregated
    late_clients: list[int] = field(default_factory=list)
    #: late updates absorbed into this round's aggregate: client id -> the
    #: round the update was trained in (empty without a staleness window)
    absorbed_clients: dict[int, int] = field(default_factory=dict)
    #: cumulative profiler-cache counters (hits/misses/drifts/profiles) at the
    #: end of this round, summed over the fleet's distinct profilers; ``None``
    #: when no client codec exposes a profiler.  A measurement, not a numeric:
    #: journal replay and bit-identity checks ignore it, like the timing fields
    profile_cache: "dict[str, int] | None" = None
    #: widest encode-side scratch buffer any client's streaming producer
    #: estimated this round (bytes); 0 when the transport encodes in batch.
    #: A measurement like ``profile_cache``: journal replay and bit-identity
    #: checks ignore it
    peak_encode_scratch_bytes: int = 0
    #: mean wall-clock latency from encode start to the first wire-ready
    #: payload piece across this round's streamed encodes; ``None`` when the
    #: transport encodes in batch (first byte waits for the whole payload).
    #: A measurement — excluded from replay and bit-identity checks
    mean_first_byte_seconds: "float | None" = None
    #: mean encode time the producer-gated wire hid inside the transfer
    #: window this round (Eqn. 1's overlapped ``t_C``); ``None`` when the
    #: transport encodes in batch.  A measurement — excluded from replay and
    #: bit-identity checks
    mean_encode_overlap_seconds: "float | None" = None
    #: high-water mark of decoded client updates resident server-side during
    #: aggregation: the full fan-in for batch aggregation, the reorder window
    #: (bounded by transport concurrency) under aggregate-on-arrival; ``None``
    #: when nothing was aggregated.  A measurement — excluded from replay and
    #: bit-identity checks
    peak_update_residency: "int | None" = None
    #: ids of participants that shipped delta-framed residuals this round
    #: (empty without a delta codec).  Deterministic — journaled and replayed
    delta_clients: list[int] = field(default_factory=list)
    #: participants that fell back to a full-state ship this round, mapped to
    #: the degrade reason (``cold`` / ``dropout`` / ``late`` /
    #: ``roster-change`` / ``resume-loss`` / ``replay-loss``).  Deterministic
    #: — journaled and replayed
    delta_degrades: dict[int, str] = field(default_factory=dict)
    #: cumulative warm-codebook counters (reuses/drifts/misses) at the end of
    #: this round, summed over the fleet's per-client stores; ``None`` without
    #: a delta codec.  A measurement like ``profile_cache``: the counters
    #: reset on journal resume, so replay and bit-identity checks ignore them
    codebook_cache: "dict[str, int] | None" = None

    @property
    def compression_ratio(self) -> float:
        """Aggregate upload compression ratio across all clients this round."""
        return self.uncompressed_bytes / self.transmitted_bytes if self.transmitted_bytes else 1.0


@dataclass
class SimulationResult:
    """All rounds of one federated run plus the configuration context."""

    codec_name: str
    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Validation accuracy after the last round (0.0 when no rounds ran)."""
        return self.rounds[-1].accuracy if self.rounds else 0.0

    @property
    def accuracies(self) -> list[float]:
        """Per-round validation accuracies (the Figure 4 series)."""
        return [r.accuracy for r in self.rounds]

    @property
    def total_transmitted_bytes(self) -> int:
        """Total client→server upload volume over the run."""
        return sum(r.transmitted_bytes for r in self.rounds)

    @property
    def total_communication_seconds(self) -> float:
        """Total modeled client→server transfer time over the run."""
        return sum(r.communication_seconds for r in self.rounds)

    @property
    def mean_compression_ratio(self) -> float:
        """Mean of the per-round aggregate compression ratios."""
        if not self.rounds:
            return 1.0
        return float(np.mean([r.compression_ratio for r in self.rounds]))

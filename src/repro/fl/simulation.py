"""Round-by-round federated simulation with pluggable update codecs.

:class:`FederatedSimulation` orchestrates the full paper workflow:

* partition a dataset over ``n_clients`` (IID by default, as in Section VI-B),
* each round, broadcast the global state, run local SGD on every client,
  encode each update through the configured :class:`UpdateCodec`, move it over
  the :class:`NetworkModel`, decode at the server, FedAvg, and validate,
* record a :class:`RoundRecord` with accuracy, byte counts, and the
  train/compress/communicate time breakdown that Figures 4-7 report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.network import NetworkModel
from repro.data.datasets import Dataset
from repro.data.partition import partition_dataset
from repro.fl.client import FLClient
from repro.fl.codec import FedSZUpdateCodec, RawUpdateCodec, UpdateCodec
from repro.fl.server import FedAvgServer
from repro.nn.module import Module

__all__ = ["RoundRecord", "SimulationResult", "FederatedSimulation"]


@dataclass
class RoundRecord:
    """Measurements of a single communication round."""

    round_index: int
    accuracy: float
    mean_train_seconds: float
    mean_encode_seconds: float
    mean_decode_seconds: float
    validation_seconds: float
    uncompressed_bytes: int
    transmitted_bytes: int
    communication_seconds: float
    client_losses: list[float] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Aggregate upload compression ratio across all clients this round."""
        return self.uncompressed_bytes / self.transmitted_bytes if self.transmitted_bytes else 1.0


@dataclass
class SimulationResult:
    """All rounds of one federated run plus the configuration context."""

    codec_name: str
    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Validation accuracy after the last round (0.0 when no rounds ran)."""
        return self.rounds[-1].accuracy if self.rounds else 0.0

    @property
    def accuracies(self) -> list[float]:
        """Per-round validation accuracies (the Figure 4 series)."""
        return [r.accuracy for r in self.rounds]

    @property
    def total_transmitted_bytes(self) -> int:
        """Total client→server upload volume over the run."""
        return sum(r.transmitted_bytes for r in self.rounds)

    @property
    def total_communication_seconds(self) -> float:
        """Total modeled client→server transfer time over the run."""
        return sum(r.communication_seconds for r in self.rounds)

    @property
    def mean_compression_ratio(self) -> float:
        """Mean of the per-round aggregate compression ratios."""
        if not self.rounds:
            return 1.0
        return float(np.mean([r.compression_ratio for r in self.rounds]))


class FederatedSimulation:
    """FedAvg over simulated clients with a configurable update codec."""

    def __init__(self, model_factory, train_dataset: Dataset, test_dataset: Dataset,
                 n_clients: int = 4, codec: UpdateCodec | None = None,
                 network: NetworkModel | None = None, partition_scheme: str = "iid",
                 dirichlet_alpha: float = 0.5, local_epochs: int = 1,
                 batch_size: int = 32, lr: float = 0.05, momentum: float = 0.9,
                 seed: int | None = 0) -> None:
        self.model_factory = model_factory
        self.codec = codec or RawUpdateCodec()
        self.network = network or NetworkModel(bandwidth_mbps=10.0)
        self.local_epochs = int(local_epochs)
        self.test_dataset = test_dataset

        shards = partition_dataset(train_dataset, n_clients, scheme=partition_scheme,
                                   alpha=dirichlet_alpha, seed=seed)
        self.clients = [
            FLClient(client_id=i, model=model_factory(), dataset=shard,
                     batch_size=batch_size, lr=lr, momentum=momentum, seed=(seed or 0) + i)
            for i, shard in enumerate(shards)
        ]
        global_model: Module = model_factory()
        self.server = FedAvgServer(global_model, test_dataset)

    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one communication round and return its measurements."""
        global_state = self.server.global_state()

        train_times: list[float] = []
        encode_times: list[float] = []
        decode_times: list[float] = []
        losses: list[float] = []
        decoded_states: list[dict[str, np.ndarray]] = []
        weights: list[float] = []
        uncompressed_bytes = 0
        transmitted_bytes = 0
        communication_seconds = 0.0

        raw_codec = RawUpdateCodec()
        for client in self.clients:
            client.receive_global(global_state)
            update = client.train_local(epochs=self.local_epochs)
            train_times.append(update.train_seconds)
            losses.append(update.train_loss)

            start = time.perf_counter()
            payload = self.codec.encode(update.state)
            encode_times.append(time.perf_counter() - start)

            raw_size = len(raw_codec.encode(update.state))
            uncompressed_bytes += raw_size
            transmitted_bytes += len(payload)
            communication_seconds += self.network.transfer(len(payload))

            start = time.perf_counter()
            decoded = self.codec.decode(payload)
            decode_times.append(time.perf_counter() - start)
            decoded_states.append(decoded)
            weights.append(update.num_samples)

        self.server.aggregate(decoded_states, weights)
        start = time.perf_counter()
        accuracy = self.server.evaluate()
        validation_seconds = time.perf_counter() - start

        return RoundRecord(
            round_index=round_index,
            accuracy=accuracy,
            mean_train_seconds=float(np.mean(train_times)),
            mean_encode_seconds=float(np.mean(encode_times)),
            mean_decode_seconds=float(np.mean(decode_times)),
            validation_seconds=validation_seconds,
            uncompressed_bytes=uncompressed_bytes,
            transmitted_bytes=transmitted_bytes,
            communication_seconds=communication_seconds,
            client_losses=losses,
        )

    def run(self, n_rounds: int = 10) -> SimulationResult:
        """Run ``n_rounds`` communication rounds and collect the records."""
        result = SimulationResult(codec_name=self.codec.name)
        for round_index in range(n_rounds):
            result.rounds.append(self.run_round(round_index))
        return result


def make_fedsz_simulation(model_factory, train_dataset: Dataset, test_dataset: Dataset,
                          error_bound: float = 1e-2, **kwargs) -> FederatedSimulation:
    """Convenience constructor wiring a FedSZ codec at the given error bound."""
    from repro.core.config import FedSZConfig

    codec = FedSZUpdateCodec(FedSZConfig(error_bound=error_bound))
    return FederatedSimulation(model_factory, train_dataset, test_dataset, codec=codec, **kwargs)

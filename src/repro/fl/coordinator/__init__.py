"""Coordinator service layer: scheduling, transport, aggregation, durability.

The round engine that used to live as one monolithic loop inside
``fl/simulation.py`` is decomposed here into small, separately-testable
services — :class:`RoundScheduler` (seeded scenario draws),
:class:`Transport`/:class:`SimulatedTransport` (encode → transfer → decode),
:class:`Aggregator` with flat and hierarchical (tree) implementations,
:class:`RoundJournal` (durable, resumable rounds), :class:`StalenessPolicy`
(late-update admission), and the :class:`Coordinator` that composes them.
``FederatedSimulation`` remains the thin synchronous facade over this package.
"""

from repro.fl.coordinator.aggregator import (Aggregator, ArrivalAggregator,
                                             FlatAggregator, PartialAggregate,
                                             TreeAggregator,
                                             weighted_mean_states)
from repro.fl.coordinator.coordinator import (OVERLAP_MODES, Coordinator,
                                              train_clients_parallel)
from repro.fl.coordinator.journal import (JournalState, PartialRoundState,
                                          RoundJournal, ShippedEvent)
from repro.fl.coordinator.records import RoundRecord, SimulationResult
from repro.fl.coordinator.scheduler import (RoundPlan, RoundScheduler,
                                            StalenessPolicy,
                                            resolve_scenario_seed)
from repro.fl.coordinator.transport import (ShipResult, ShipTask,
                                            SimulatedTransport, Transport,
                                            ship_update_task)

__all__ = [
    "Aggregator", "ArrivalAggregator", "FlatAggregator", "TreeAggregator",
    "PartialAggregate", "weighted_mean_states",
    "Coordinator", "train_clients_parallel", "OVERLAP_MODES",
    "RoundJournal", "JournalState", "PartialRoundState", "ShippedEvent",
    "RoundRecord", "SimulationResult",
    "RoundScheduler", "RoundPlan", "StalenessPolicy", "resolve_scenario_seed",
    "Transport", "SimulatedTransport", "ShipTask", "ShipResult",
    "ship_update_task",
]

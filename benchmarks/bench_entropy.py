"""Chunked Huffman entropy stage: parallel/vectorized decode vs the reference.

The SZ2/SZ3 entropy stage dominates the paper's Table I timings, and on the
server side one process decodes million-parameter updates from many clients
per round.  This benchmark reproduces that workload on real model tensors: a
trained-looking state dict is quantized exactly as SZ2 would (linear
quantization of the residual against a mean predictor), each weight tensor's
quantization codes are Huffman-encoded into the chunked version-3 bitstream,
and the decode side is timed twice —

* ``max_workers=1``: the strictly sequential per-symbol reference decoder,
* ``max_workers=N``: the banded vectorized decoder on the thread pool.

Both must return bit-identical symbol arrays; the parallel path must be at
least ``--min-speedup`` (default 3x) faster in aggregate.  ``--smoke`` runs a
small model without the timing assertion so CI can exercise the parallel
decode path on every Python version.

The repo's CPU-scaled ``resnet50`` has only ~224K parameters; Table I profiles
the 25.6M-parameter original, so by default the full benchmark rebuilds the
architecture at the paper's size (``width=64``, blocks ``(3, 4, 6, 3)`` —
~23.5M parameters).  ``--repro-scale`` keeps the repo's small variant instead.

Run with ``PYTHONPATH=src python benchmarks/bench_entropy.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import save_results, trained_like_state
from repro.compressors.huffman import DEFAULT_CHUNK_SYMBOLS, HuffmanCoder
from repro.compressors.quantizer import LinearQuantizer
from repro.metrics import ExperimentRecord, Table

#: Architecture overrides that restore a model to the size the paper profiles.
PAPER_SCALE = {"resnet50": {"width": 64, "blocks_per_stage": (3, 4, 6, 3)}}


def tensor_symbol_streams(state: dict[str, np.ndarray], rel_bound: float,
                          threshold: int = 1024) -> "list[tuple[str, np.ndarray]]":
    """SZ2-style quantization codes for every lossy-partition weight tensor."""
    quantizer = LinearQuantizer()
    streams = []
    for name, array in state.items():
        if "weight" not in name or array.size <= threshold:
            continue
        data = array.astype(np.float64).ravel()
        value_range = float(data.max() - data.min())
        abs_bound = max(rel_bound * value_range, 1e-12)
        predictions = np.full_like(data, float(data.mean()))
        streams.append((name, quantizer.quantize(data, predictions, abs_bound).codes))
    return streams


def bench_entropy(model: str, workers: int, chunk: int, rel_bound: float,
                  repeats: int, min_speedup: float | None,
                  model_kwargs: dict | None = None) -> int:
    state = trained_like_state(model, **(model_kwargs or {}))
    streams = tensor_symbol_streams(state, rel_bound)
    coder = HuffmanCoder(chunk_size=chunk)

    table = Table(f"Chunked Huffman decode - {model}, {workers} workers, "
                  f"chunk cap {chunk}",
                  ["tensor", "symbols", "payload (KB)", "1 worker (ms)",
                   f"{workers} workers (ms)", "speedup"])
    record = ExperimentRecord("entropy",
                              "chunked Huffman decode: vectorized thread-pool "
                              "path vs sequential reference")

    total_syms = 0
    total_seq = 0.0
    total_par = 0.0
    for name, symbols in streams:
        payload = coder.encode(symbols)

        def best_of(n_workers: int) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                decoded = coder.decode(payload, max_workers=n_workers)
                best = min(best, time.perf_counter() - start)
            np.testing.assert_array_equal(decoded, symbols)
            return best

        t_seq = best_of(1)
        t_par = best_of(workers)
        total_syms += symbols.size
        total_seq += t_seq
        total_par += t_par
        table.add_row(name, symbols.size, f"{len(payload) / 1e3:.1f}",
                      f"{t_seq * 1e3:.1f}", f"{t_par * 1e3:.1f}",
                      f"{t_seq / t_par:.2f}x")
        record.add(tensor=name, symbols=int(symbols.size), payload_bytes=len(payload),
                   sequential_seconds=t_seq, parallel_seconds=t_par)

    speedup = total_seq / total_par if total_par else float("inf")
    table.add_row("TOTAL", total_syms, "", f"{total_seq * 1e3:.1f}",
                  f"{total_par * 1e3:.1f}", f"{speedup:.2f}x")
    record.add(model=model, workers=workers, chunk=chunk, total_symbols=total_syms,
               total_sequential_seconds=total_seq, total_parallel_seconds=total_par,
               speedup=speedup)
    save_results("entropy", table, record)
    print(f"decode throughput: {total_syms / total_seq / 1e6:.1f} Msym/s sequential, "
          f"{total_syms / total_par / 1e6:.1f} Msym/s at {workers} workers "
          f"({speedup:.2f}x speedup)")

    if min_speedup is not None and speedup < min_speedup:
        print(f"FAIL: decode speedup {speedup:.2f}x is below the "
              f"{min_speedup:.1f}x target", file=sys.stderr)
        return 1
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--model", default="resnet50",
                        help="model whose state dict supplies the tensors")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pool size for the parallel decode path")
    parser.add_argument("--chunk", type=int, default=DEFAULT_CHUNK_SYMBOLS,
                        help="max symbols per Huffman chunk")
    parser.add_argument("--bound", type=float, default=1e-2,
                        help="relative error bound used for quantization")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repetitions per tensor (best-of)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail unless the parallel path is this much faster")
    parser.add_argument("--repro-scale", action="store_true",
                        help="use the repo's CPU-scaled architecture instead of "
                             "the paper-size rebuild")
    parser.add_argument("--smoke", action="store_true",
                        help="small model, single repetition, no timing assertion "
                             "(correctness-only CI mode)")
    args = parser.parse_args(argv)

    if args.smoke:
        return bench_entropy("simplecnn", args.workers, args.chunk, args.bound,
                             repeats=1, min_speedup=None)
    model_kwargs = None if args.repro_scale else PAPER_SCALE.get(args.model)
    return bench_entropy(args.model, args.workers, args.chunk, args.bound,
                         repeats=args.repeats, min_speedup=args.min_speedup,
                         model_kwargs=model_kwargs)


if __name__ == "__main__":
    sys.exit(main())

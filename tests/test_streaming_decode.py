"""Streaming zero-copy decode path: bit-identity with the batch decoders.

Covers every layer of the incremental pipeline — the ``ChunkBandConsumer``
over HUF3 streams, the lossless ``decompressor()`` API, the SZ2/SZ3
``SZStreamDecoder``, and the FedSZ container ``StreamingStateDecoder`` — under
the PR's non-negotiable invariant: a stream fed in arbitrary pieces decodes
bit-identically to the batch path on every backend at every worker count, and
corrupt or truncated input raises :class:`ValueError` exactly when the batch
path would.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.huffman import HuffmanCoder
from repro.compressors.lossless import available_lossless, get_lossless
from repro.compressors.sz2 import SZ2Compressor
from repro.compressors.sz3 import SZ3Compressor
from repro.core.config import FedSZConfig
from repro.core.pipeline import FedSZCompressor
from repro.fl.codec import FedSZUpdateCodec, RawUpdateCodec
from repro.utils.bitstream import StreamBuffer
from repro.utils.serialization import pack_bytes_dict, unpack_bytes_dict

BACKENDS = ("serial", "thread", "process")


def _feed_pieces(consumer, blob: bytes, piece: int) -> None:
    for start in range(0, len(blob), piece):
        consumer.feed(blob[start : start + piece])


def _small_state(seed: int = 5) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": rng.normal(0, 1, (8, 3, 3, 3)).astype(np.float32),
        "conv.bias": rng.normal(0, 1, 8).astype(np.float32),
        "fc.weight": rng.normal(0, 0.3, (10, 72)).astype(np.float32),
        "empty": np.zeros(0, dtype=np.float32),
    }


class TestStreamBuffer:
    def test_feed_view_and_has(self):
        buf = StreamBuffer()
        assert buf.feed(b"abc") == 3
        buf.feed(b"defg")
        assert buf.available == 7
        assert bytes(buf.view()) == b"abcdefg"
        assert bytes(buf.view(2, 5)) == b"cde"
        assert buf.has(4, offset=3) and not buf.has(5, offset=3)

    def test_expect_pins_length(self):
        buf = StreamBuffer()
        buf.expect(4)
        buf.feed(b"abc")
        assert not buf.complete
        buf.feed(b"d")
        assert buf.complete
        with pytest.raises(ValueError):
            buf.feed(b"e")


class TestChunkBandConsumer:
    @pytest.mark.parametrize("piece", [1, 7, 64, 1 << 20])
    def test_piecewise_equivalence(self, piece):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 80, size=1500).astype(np.int64)
        coder = HuffmanCoder(chunk_size=128)
        blob = coder.encode(codes)
        expected = coder.decode(blob)
        consumer = coder.stream_consumer()
        _feed_pieces(consumer, blob, piece)
        got = consumer.finish()
        assert np.array_equal(got, expected) and got.dtype == expected.dtype

    def test_required_prefix_decodes_chunk(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 9, size=1024).astype(np.int64)
        coder = HuffmanCoder(chunk_size=64)
        blob = coder.encode(codes)
        probe = coder.stream_consumer()
        probe.feed(blob)
        assert probe.header_ready and probe.chunks_total == 16
        for chunk in (0, 3, probe.chunks_total - 1):
            prefix = probe.required_prefix(chunk)
            assert prefix <= len(blob)
            consumer = coder.stream_consumer()
            consumer.feed(blob[:prefix])
            # the documented contract: that prefix suffices for chunks 0..k
            assert consumer.chunks_decoded >= chunk + 1

    def test_truncation_at_every_byte_raises(self):
        codes = np.arange(60, dtype=np.int64)
        coder = HuffmanCoder(chunk_size=16)
        blob = coder.encode(codes)
        for cut in range(len(blob)):
            consumer = coder.stream_consumer()
            consumer.feed(blob[:cut])
            with pytest.raises(ValueError):
                consumer.finish()

    def test_bitflip_parity_with_batch(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(0, 24, size=700).astype(np.int64)
        coder = HuffmanCoder(chunk_size=64)
        blob = bytearray(coder.encode(codes))
        for pos in range(0, len(blob), 11):
            corrupt = bytes(blob[:pos]) + bytes([blob[pos] ^ 0x40]) + bytes(blob[pos + 1:])
            try:
                expected = coder.decode(corrupt)
            except ValueError:
                expected = None
            consumer = coder.stream_consumer()
            try:
                consumer.feed(corrupt)
                got = consumer.finish()
            except ValueError:
                got = None
            if expected is None or got is None:
                assert expected is None and got is None, f"parity broke at byte {pos}"
            else:
                assert np.array_equal(got, expected)

    def test_crc_failure_surfaces_as_valueerror(self):
        codes = np.arange(200, dtype=np.int64) % 17
        coder = HuffmanCoder(chunk_size=32)
        blob = bytearray(coder.encode(codes))
        blob[-1] ^= 0x01  # flip a bit inside the packed chunk bits
        consumer = coder.stream_consumer()
        split = len(blob) // 2
        with pytest.raises(ValueError):
            consumer.feed(bytes(blob[:split]))
            consumer.feed(bytes(blob[split:]))
            consumer.finish()

    def test_band_split_across_two_packets(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 10, size=2048).astype(np.int64)
        coder = HuffmanCoder(chunk_size=128)
        blob = coder.encode(codes)
        probe = coder.stream_consumer()
        probe.feed(blob)
        # cut strictly inside chunk 1's byte range: after its chunk starts,
        # before its required prefix completes
        lo, hi = probe.required_prefix(0), probe.required_prefix(1)
        assert hi - lo >= 2, "need a multi-byte second chunk for this test"
        cut = (lo + hi) // 2
        consumer = coder.stream_consumer()
        consumer.feed(blob[:cut])
        decoded_mid = consumer.chunks_decoded
        consumer.feed(blob[cut:])
        assert np.array_equal(consumer.finish(), coder.decode(blob))
        assert decoded_mid >= 1  # chunk 0 decoded while chunk 1 was split

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_backend_worker_matrix(self, backend, workers):
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 200, size=4096).astype(np.int64)
        reference = HuffmanCoder(chunk_size=256)
        blob = reference.encode(codes)
        coder = HuffmanCoder(chunk_size=256, max_workers=workers, backend=backend)
        consumer = coder.stream_consumer()
        _feed_pieces(consumer, blob, 1024)
        assert np.array_equal(consumer.finish(), reference.decode(blob))


class TestLosslessStreaming:
    @pytest.mark.parametrize("name", available_lossless())
    def test_piecewise_equivalence(self, name):
        codec = get_lossless(name)
        rng = np.random.default_rng(6)
        plain = rng.integers(0, 8, size=20000).astype(np.uint8).tobytes()
        blob = codec.compress(plain)
        for piece in (1, 13, 4096):
            dec = codec.decompressor()
            out = bytearray()
            for start in range(0, len(blob), piece):
                out += dec.feed(blob[start : start + piece])
            out += dec.finish()
            assert bytes(out) == codec.decompress(blob)

    @pytest.mark.parametrize("name", available_lossless())
    def test_corruption_parity(self, name):
        codec = get_lossless(name)
        plain = bytes(range(256)) * 40
        blob = bytearray(codec.compress(plain))
        cases = [bytes(blob[:len(blob) // 2])]  # truncation
        for pos in range(0, len(blob), max(1, len(blob) // 8)):
            cases.append(bytes(blob[:pos]) + bytes([blob[pos] ^ 0x10])
                         + bytes(blob[pos + 1:]))
        for corrupt in cases:
            try:
                expected = codec.decompress(corrupt)
            except Exception:
                # the batch lossless layer surfaces raw library errors; the
                # lossy layer normalizes them — the streaming decompressor
                # must already raise ValueError here
                expected = None
            dec = codec.decompressor()
            try:
                out = bytearray(dec.feed(corrupt))
                out += dec.finish()
                got = bytes(out)
            except ValueError:
                got = None
            assert (expected is None) == (got is None)
            if expected is not None:
                assert got == expected


@pytest.mark.parametrize("cls", [SZ2Compressor, SZ3Compressor])
class TestSZStreamDecoder:
    def _payload(self, cls, n=3000, seed=8, **kwargs):
        compressor = cls(error_bound=1e-2, **kwargs)
        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(0, 0.1, n)).astype(np.float64)
        return compressor, data, compressor.compress(data)

    @pytest.mark.parametrize("piece", [1, 37, 1 << 20])
    def test_piecewise_equivalence(self, cls, piece):
        compressor, _, payload = self._payload(cls)
        expected = compressor.decompress(payload)
        decoder = compressor.stream_decoder()
        _feed_pieces(decoder, payload, piece)
        got = decoder.finish()
        assert np.array_equal(got, expected) and got.dtype == expected.dtype
        assert decoder.bytes_received == len(payload)

    def test_empty_array_roundtrip(self, cls):
        compressor = cls(error_bound=1e-2)
        payload = compressor.compress(np.zeros(0, dtype=np.float32))
        decoder = compressor.stream_decoder()
        decoder.feed(payload)
        assert decoder.finish().size == 0

    def test_truncation_at_every_byte_raises(self, cls):
        compressor, _, payload = self._payload(cls, n=200)
        for cut in range(len(payload)):
            decoder = compressor.stream_decoder()
            with pytest.raises(ValueError):
                decoder.feed(payload[:cut])
                decoder.finish()

    def test_bitflip_parity_with_batch(self, cls):
        compressor, _, payload = self._payload(cls, n=400)
        blob = bytearray(payload)
        for pos in range(0, len(blob), 17):
            corrupt = bytes(blob[:pos]) + bytes([blob[pos] ^ 0x20]) + bytes(blob[pos + 1:])
            try:
                expected = compressor.decompress(corrupt)
            except ValueError:
                expected = None
            decoder = compressor.stream_decoder()
            try:
                decoder.feed(corrupt)
                got = decoder.finish()
            except ValueError:
                got = None
            if expected is None or got is None:
                assert expected is None and got is None, f"parity broke at byte {pos}"
            else:
                assert np.array_equal(got, expected)

    def test_chained_lossless_backend(self, cls):
        compressor, _, payload = self._payload(cls, lossless_backend="bzip2")
        decoder = compressor.stream_decoder()
        _feed_pieces(decoder, payload, 101)
        assert np.array_equal(decoder.finish(), compressor.decompress(payload))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_backend_worker_matrix(self, cls, backend, workers):
        compressor, _, payload = self._payload(
            cls, n=6000, entropy_chunk=256, entropy_workers=workers,
            entropy_backend=backend)
        reference = cls(error_bound=1e-2, entropy_chunk=256)
        expected = reference.decompress(payload)
        decoder = compressor.stream_decoder()
        _feed_pieces(decoder, payload, 2048)
        assert np.array_equal(decoder.finish(), expected)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), piece=st.integers(1, 512))
    def test_property_piecewise_equivalence(self, cls, seed, piece):
        compressor, _, payload = self._payload(cls, n=600, seed=seed)
        decoder = compressor.stream_decoder()
        _feed_pieces(decoder, payload, piece)
        assert np.array_equal(decoder.finish(), compressor.decompress(payload))


class TestPipelineStreaming:
    def test_state_decoder_matches_batch_with_report(self):
        compressor = FedSZCompressor(FedSZConfig())
        state = _small_state()
        payload = compressor.compress_state_dict(state)
        expected, ref_report = compressor.decompress_with_report(payload)
        decoder = compressor.stream_decoder()
        _feed_pieces(decoder, payload, 257)
        got, report = decoder.finish()
        assert list(got) == list(expected)
        for key in expected:
            assert np.array_equal(got[key], expected[key])
            assert got[key].dtype == expected[key].dtype
        assert report.compressed_bytes == ref_report.compressed_bytes
        assert report.original_bytes == ref_report.original_bytes
        assert decoder.plan is not None
        assert decoder.bytes_received == len(payload)

    def test_decompress_stream_yields_every_tensor(self):
        compressor = FedSZCompressor(FedSZConfig())
        state = _small_state()
        payload = compressor.compress_state_dict(state)
        chunks = [payload[i : i + 512] for i in range(0, len(payload), 512)]
        names = [name for name, _ in compressor.decompress_stream(chunks)]
        assert sorted(names) == sorted(state)

    def test_manifest_must_come_first(self):
        compressor = FedSZCompressor(FedSZConfig())
        payload = compressor.compress_state_dict(_small_state())
        entries = unpack_bytes_dict(payload)
        reordered = {k: entries[k] for k in list(entries)[::-1]}
        shuffled = pack_bytes_dict(reordered)
        # the batch decoder is order-insensitive; streaming requires
        # manifest-first and must say so
        batch = compressor.decompress_state_dict(shuffled)
        assert list(batch)
        decoder = compressor.stream_decoder()
        with pytest.raises(ValueError, match="__manifest__"):
            decoder.feed(shuffled)
            decoder.finish()

    def test_truncation_raises(self):
        compressor = FedSZCompressor(FedSZConfig())
        payload = compressor.compress_state_dict(_small_state())
        for cut in range(0, len(payload), 7):
            decoder = compressor.stream_decoder()
            with pytest.raises(ValueError):
                decoder.feed(payload[:cut])
                decoder.finish()

    def test_trailing_bytes_tolerated_like_batch(self):
        compressor = FedSZCompressor(FedSZConfig())
        state = _small_state()
        payload = compressor.compress_state_dict(state) + b"trailing-junk"
        expected = compressor.decompress_state_dict(payload)
        decoder = compressor.stream_decoder()
        decoder.feed(payload)
        got, _ = decoder.finish()
        for key in expected:
            assert np.array_equal(got[key], expected[key])

    @pytest.mark.parametrize("codec_factory", [RawUpdateCodec,
                                               lambda: FedSZUpdateCodec(FedSZConfig())])
    def test_update_codec_stream_decoder(self, codec_factory):
        codec = codec_factory()
        state = _small_state()
        payload = codec.encode(state)
        expected = codec.decode(payload)
        decoder = codec.stream_decoder()
        _feed_pieces(decoder, payload, 333)
        got, _report = decoder.finish()
        assert list(got) == list(expected)
        for key in expected:
            assert np.array_equal(got[key], expected[key])
        assert decoder.decode_seconds >= 0.0

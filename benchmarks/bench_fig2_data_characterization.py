"""Figure 2: FL model parameters are spiky, scientific data is smooth.

Regenerates the comparison between snippets of flattened model weights and
slices of (synthetic) MIRANDA-like fields, reporting the normalized total
variation of each series and the resulting compressibility gap.
"""

from __future__ import annotations

import numpy as np

from bench_utils import save_results, trained_like_state
from repro.compressors import SZ2Compressor
from repro.data import miranda_like_field, spikiness
from repro.metrics import ExperimentRecord, Table


def _weight_snippets(n_snippets: int = 5, length: int = 500) -> list[np.ndarray]:
    state = trained_like_state("alexnet")
    flat = np.concatenate([v.ravel() for k, v in state.items() if "weight" in k])
    offsets = np.linspace(0, flat.size - length, n_snippets).astype(int)
    return [flat[o : o + length].astype(np.float64) for o in offsets]


def _science_slices(n_slices: int = 4, length: int = 400) -> list[np.ndarray]:
    kinds = ["density", "density", "velocity", "velocity"]
    return [miranda_like_field(length, seed=i, kind=kinds[i % len(kinds)]).astype(np.float64)
            for i in range(n_slices)]


def bench_fig2_data_characterization(benchmark):
    def run():
        weight_snips = _weight_snippets()
        science_snips = _science_slices()
        compressor = SZ2Compressor(error_bound=1e-2)
        rows = []
        for family, snippets in (("FL weights", weight_snips), ("Miranda-like", science_snips)):
            for idx, snip in enumerate(snippets):
                payload = compressor.compress(snip.astype(np.float32))
                rows.append({
                    "family": family,
                    "snippet": idx,
                    "spikiness": spikiness(snip),
                    "ratio": snip.astype(np.float32).nbytes / len(payload),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Figure 2 - signal character: FL weights vs scientific data",
                  ["family", "snippet", "spikiness (TV/range)", "SZ2 ratio @1e-2"])
    record = ExperimentRecord("fig2", "FL weights are spiky; scientific slices are smooth")
    for row in rows:
        table.add_row(row["family"], row["snippet"], f"{row['spikiness']:.4f}", f"{row['ratio']:.2f}x")
        record.add(**row)

    weight_spike = np.mean([r["spikiness"] for r in rows if r["family"] == "FL weights"])
    science_spike = np.mean([r["spikiness"] for r in rows if r["family"] == "Miranda-like"])
    summary = Table("Figure 2 - summary", ["family", "mean spikiness"])
    summary.add_row("FL weights", f"{weight_spike:.4f}")
    summary.add_row("Miranda-like", f"{science_spike:.4f}")
    save_results("fig2_data_characterization", [table, summary], record)

    assert weight_spike > science_spike, "paper claim: weights are spikier than scientific data"

"""Compression-error analysis and the differential-privacy connection (Section VII-D)."""

from repro.privacy.dp import epsilon_for_laplace_noise, laplace_mechanism_scale
from repro.privacy.dp_codec import DPFedSZConfig, DPFedSZUpdateCodec
from repro.privacy.error_analysis import (
    ErrorDistributionFit,
    analyze_error_distribution,
    compression_errors,
)

__all__ = [
    "compression_errors",
    "analyze_error_distribution",
    "ErrorDistributionFit",
    "laplace_mechanism_scale",
    "epsilon_for_laplace_noise",
    "DPFedSZConfig",
    "DPFedSZUpdateCodec",
]

"""Tests for FedAvg aggregation and server behaviour."""

import numpy as np
import pytest

from repro.data import make_dataset
from repro.fl import FedAvgServer, evaluate_model, fedavg_aggregate
from repro.nn import build_model


def _states(values):
    return [{"layer.weight": np.full((2, 2), v, dtype=np.float32),
             "layer.bias": np.full(2, v, dtype=np.float32)} for v in values]


class TestFedAvgAggregate:
    def test_uniform_average(self):
        out = fedavg_aggregate(_states([1.0, 3.0]))
        np.testing.assert_allclose(out["layer.weight"], 2.0)

    def test_weighted_average_by_samples(self):
        out = fedavg_aggregate(_states([0.0, 4.0]), weights=[3, 1])
        np.testing.assert_allclose(out["layer.weight"], 1.0)

    def test_single_client_identity(self):
        state = _states([7.0])[0]
        out = fedavg_aggregate([state])
        np.testing.assert_allclose(out["layer.weight"], state["layer.weight"])

    def test_preserves_dtype_and_keys(self):
        out = fedavg_aggregate(_states([1.0, 2.0, 3.0]))
        assert set(out) == {"layer.weight", "layer.bias"}
        assert out["layer.weight"].dtype == np.float32

    def test_weights_normalized(self):
        a = fedavg_aggregate(_states([0.0, 2.0]), weights=[1, 1])
        b = fedavg_aggregate(_states([0.0, 2.0]), weights=[100, 100])
        np.testing.assert_allclose(a["layer.weight"], b["layer.weight"])

    def test_mismatched_keys_rejected(self):
        states = _states([1.0, 2.0])
        del states[1]["layer.bias"]
        with pytest.raises(ValueError):
            fedavg_aggregate(states)

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([])

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            fedavg_aggregate(_states([1.0, 2.0]), weights=[1])
        with pytest.raises(ValueError):
            fedavg_aggregate(_states([1.0, 2.0]), weights=[0, 0])
        with pytest.raises(ValueError):
            fedavg_aggregate(_states([1.0, 2.0]), weights=[-1, 2])

    def test_aggregating_identical_states_is_identity(self):
        state = build_model("simplecnn", image_size=16).state_dict()
        out = fedavg_aggregate([state, state, state], weights=[1, 2, 3])
        for key in state:
            np.testing.assert_allclose(out[key], state[key], atol=1e-6)


class TestServer:
    def test_aggregate_updates_global_model(self):
        model = build_model("mlp", num_classes=4, image_size=8)
        server = FedAvgServer(model)
        new_state = {k: v + 1.0 for k, v in model.state_dict().items()}
        server.aggregate([new_state])
        np.testing.assert_allclose(server.global_state()["net.1.weight"],
                                   new_state["net.1.weight"])

    def test_evaluate_requires_dataset(self):
        server = FedAvgServer(build_model("mlp", num_classes=4, image_size=8))
        with pytest.raises(ValueError):
            server.evaluate()

    def test_evaluate_accuracy_in_unit_interval(self):
        ds = make_dataset("cifar10", n_samples=40, image_size=8)
        model = build_model("mlp", num_classes=10, image_size=8)
        server = FedAvgServer(model, test_dataset=ds)
        acc = server.evaluate()
        assert 0.0 <= acc <= 1.0

    def test_evaluate_model_function(self):
        ds = make_dataset("cifar10", n_samples=30, image_size=8)
        model = build_model("mlp", num_classes=10, image_size=8)
        acc = evaluate_model(model, ds)
        assert 0.0 <= acc <= 1.0
        assert model.training  # evaluation restores training mode

    def test_evaluate_model_preserves_eval_mode(self):
        # a model already in eval mode must not come back in training mode
        ds = make_dataset("cifar10", n_samples=30, image_size=8)
        model = build_model("mlp", num_classes=10, image_size=8).eval()
        evaluate_model(model, ds)
        assert all(not m.training for m in model.modules())

    def test_evaluate_empty_dataset_not_swapped_for_test_set(self):
        # an explicitly passed zero-length dataset must be evaluated as given,
        # not silently replaced by the configured (non-empty) test set
        ds = make_dataset("cifar10", n_samples=40, image_size=8)
        model = build_model("mlp", num_classes=10, image_size=8)
        server = FedAvgServer(model, test_dataset=ds)
        empty = ds.subset(np.zeros(0, dtype=np.int64))
        assert len(empty) == 0
        assert server.evaluate(empty) == 0.0

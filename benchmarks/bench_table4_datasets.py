"""Table IV: dataset characteristics used for FedSZ benchmarking.

Reports the sample counts, input dimensions, and class counts of the three
(synthetic stand-in) datasets, plus a measured learnability check on a small
generated split — the property the paper's accuracy experiments depend on.
"""

from __future__ import annotations

import numpy as np

from bench_utils import PAPER_DATASETS, save_results
from repro.data import dataset_spec, make_dataset
from repro.metrics import ExperimentRecord, Table


def _nearest_class_mean_accuracy(name: str) -> float:
    ds = make_dataset(name, n_samples=240, image_size=16, seed=3)
    flat = ds.images.reshape(len(ds), -1)
    classes = np.unique(ds.labels)
    means = np.stack([flat[ds.labels == c].mean(axis=0) for c in classes])
    distances = ((flat[:, None, :] - means[None]) ** 2).sum(axis=2)
    predictions = classes[np.argmin(distances, axis=1)]
    return float((predictions == ds.labels).mean())


def bench_table4_datasets(benchmark):
    def run():
        rows = []
        for name in PAPER_DATASETS:
            spec = dataset_spec(name)
            rows.append({
                "dataset": name,
                "paper_samples": spec.n_samples,
                "input_dimension": f"{spec.image_size}x{spec.image_size}x{spec.in_channels}",
                "classes": spec.num_classes,
                "ncm_accuracy": _nearest_class_mean_accuracy(name),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Table IV - dataset characteristics",
                  ["dataset", "# samples (paper)", "input dimension", "classes",
                   "synthetic learnability (NCM acc)"])
    record = ExperimentRecord("table4", "dataset characteristics and synthetic learnability")
    for row in rows:
        table.add_row(row["dataset"], f"{row['paper_samples']:,}", row["input_dimension"],
                      row["classes"], f"{row['ncm_accuracy']:.2%}")
        record.add(**row)
    save_results("table4_datasets", table, record)

    by_name = {r["dataset"]: r for r in rows}
    assert by_name["cifar10"]["classes"] == 10
    assert by_name["fmnist"]["classes"] == 10
    assert by_name["caltech101"]["classes"] == 101
    # every synthetic dataset must be learnable well above chance
    for row in rows:
        assert row["ncm_accuracy"] > 3.0 / row["classes"]

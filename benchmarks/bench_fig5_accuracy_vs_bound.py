"""Figure 5: inference accuracy across models/datasets while varying the REL bound.

Runs federated training with FedSZ at relative error bounds from 1e-5 to 1e-1
(plus an uncompressed reference) and reports the final validation accuracy for
each bound.  The reproduced claim is the shape of the curve: flat (within noise
of the uncompressed run) for bounds <= 1e-2 and collapsing at 1e-1 and above.
"""

from __future__ import annotations

import numpy as np

from bench_utils import fl_settings, is_quick, quick_fl_data, save_results
from repro.core import FedSZConfig
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec
from repro.metrics import ExperimentRecord, Table, format_bound
from repro.nn import build_model

BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 5e-1)


def bench_fig5_accuracy_vs_bound(benchmark):
    cfg = fl_settings()
    datasets = ("cifar10",) if is_quick() else ("cifar10", "fmnist", "caltech101")

    def run():
        rows = []
        for dataset in datasets:
            train, test = quick_fl_data(dataset, seed=21)
            in_channels = 1 if dataset == "fmnist" else 3
            num_classes = 101 if dataset == "caltech101" else 10

            def factory():
                return build_model(cfg["model"], num_classes=num_classes,
                                   in_channels=in_channels, image_size=cfg["image_size"], seed=0)

            baseline = FederatedSimulation(factory, train, test, n_clients=cfg["n_clients"],
                                           codec=RawUpdateCodec(), lr=cfg["lr"],
                                           batch_size=cfg["batch_size"], seed=22).run(cfg["rounds"])
            rows.append({"dataset": dataset, "bound": None,
                         "accuracy": baseline.final_accuracy, "ratio": 1.0})
            for bound in BOUNDS:
                codec = FedSZUpdateCodec(FedSZConfig(error_bound=bound))
                result = FederatedSimulation(factory, train, test, n_clients=cfg["n_clients"],
                                             codec=codec, lr=cfg["lr"],
                                             batch_size=cfg["batch_size"], seed=22).run(cfg["rounds"])
                rows.append({"dataset": dataset, "bound": bound,
                             "accuracy": result.final_accuracy,
                             "ratio": result.mean_compression_ratio})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Figure 5 - final accuracy vs relative error bound",
                  ["dataset", "REL bound", "final accuracy", "mean compression ratio"])
    record = ExperimentRecord("fig5", "accuracy vs error bound sweep")
    for row in rows:
        bound_text = "uncompressed" if row["bound"] is None else format_bound(row["bound"])
        table.add_row(row["dataset"], bound_text, f"{row['accuracy']:.2%}", f"{row['ratio']:.2f}x")
        record.add(**row)
    save_results("fig5_accuracy_vs_bound", table, record)

    for dataset in datasets:
        subset = {r["bound"]: r["accuracy"] for r in rows if r["dataset"] == dataset}
        baseline = subset[None]
        # bounds <= 1e-2 stay close to the uncompressed accuracy...
        for bound in (1e-5, 1e-4, 1e-3, 1e-2):
            assert subset[bound] >= baseline - 0.20
        # ...and the largest bound collapses the model
        assert subset[5e-1] <= max(subset[1e-3], subset[1e-2]) + 0.05
        # ratio grows monotonically-ish with the bound
        ratios = [r["ratio"] for r in rows if r["dataset"] == dataset and r["bound"] is not None]
        assert ratios[-1] > ratios[0]

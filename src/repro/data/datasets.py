"""Synthetic stand-ins for the paper's image-classification datasets.

Each dataset is generated from a class-conditional model: every class owns a
smooth random spatial template (a mixture of low-frequency cosine modes) and
samples are the template plus per-sample deformation and pixel noise.  This
gives the classifiers genuine structure to learn — accuracy rises with
training and degrades when weights are perturbed beyond the useful error
bound, which is the behaviour the paper's Figures 4 and 5 measure.

``DatasetSpec`` carries the Table IV characteristics (sample count, input
dimension, class count).  The full-size sample counts are the paper's; callers
normally request a smaller ``n_samples`` to fit the CPU budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["Dataset", "DatasetSpec", "available_datasets", "dataset_spec", "make_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset (the Table IV row)."""

    name: str
    n_samples: int
    image_size: int
    in_channels: int
    num_classes: int

    @property
    def input_dimension(self) -> tuple[int, int, int]:
        """(channels, height, width) of one sample."""
        return (self.in_channels, self.image_size, self.image_size)


@dataclass
class Dataset:
    """In-memory dataset: float32 images (N, C, H, W) and int64 labels (N,)."""

    name: str
    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset holding only ``indices`` (copying the slices)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.name, self.images[indices].copy(), self.labels[indices].copy(),
                       self.num_classes)

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of one sample."""
        return tuple(self.images.shape[1:])  # type: ignore[return-value]


#: Paper-scale dataset characteristics (Table IV).  ``image_size`` for the
#: Caltech101 stand-in is reduced from 224 to 64 to fit the CPU budget; the
#: class count and the relative difficulty ordering are preserved.
_SPECS: dict[str, DatasetSpec] = {
    "cifar10": DatasetSpec("cifar10", 60_000, 32, 3, 10),
    "fmnist": DatasetSpec("fmnist", 70_000, 28, 1, 10),
    "caltech101": DatasetSpec("caltech101", 9_000, 64, 3, 101),
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`make_dataset`."""
    return sorted(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the Table IV characteristics for ``name``."""
    try:
        return _SPECS[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}") from exc


def _class_templates(num_classes: int, in_channels: int, image_size: int,
                     rng: np.random.Generator, n_modes: int = 6) -> np.ndarray:
    """Smooth per-class spatial templates built from random low-frequency modes."""
    yy, xx = np.meshgrid(np.linspace(0, 1, image_size), np.linspace(0, 1, image_size),
                         indexing="ij")
    templates = np.zeros((num_classes, in_channels, image_size, image_size), dtype=np.float64)
    for c in range(num_classes):
        for ch in range(in_channels):
            field = np.zeros_like(yy)
            for _ in range(n_modes):
                fx, fy = rng.uniform(0.5, 3.0, size=2)
                phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
                amp = rng.uniform(0.4, 1.0)
                field += amp * np.cos(2 * np.pi * fx * xx + phase_x) * np.cos(2 * np.pi * fy * yy + phase_y)
            templates[c, ch] = field / n_modes
    return templates


def make_dataset(name: str, n_samples: int | None = None, seed: int | None = 0,
                 noise: float = 0.35, num_classes: int | None = None,
                 image_size: int | None = None) -> Dataset:
    """Generate a synthetic dataset matching the named spec.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (``"cifar10"``, ``"fmnist"``,
        ``"caltech101"``).
    n_samples:
        Number of samples to generate (defaults to a CPU-friendly 2,048 rather
        than the paper-scale count recorded in the spec).
    noise:
        Standard deviation of the per-pixel Gaussian noise; higher values make
        the classification task harder.
    num_classes / image_size:
        Optional overrides used by the fast test suite; when omitted the Table
        IV values are used (with Caltech101 images at 64x64).
    """
    spec = dataset_spec(name)
    rng = make_rng(seed)
    n = int(n_samples) if n_samples is not None else 2048
    classes = int(num_classes) if num_classes is not None else spec.num_classes
    size = int(image_size) if image_size is not None else spec.image_size

    templates = _class_templates(classes, spec.in_channels, size, rng)
    labels = rng.integers(0, classes, size=n)
    images = templates[labels]
    # per-sample smooth deformation (global brightness/contrast jitter) + pixel noise
    contrast = rng.uniform(0.8, 1.2, size=(n, 1, 1, 1))
    brightness = rng.normal(0.0, 0.1, size=(n, 1, 1, 1))
    images = images * contrast + brightness
    images = images + rng.normal(0.0, noise, size=images.shape)
    images = images.astype(np.float32)
    return Dataset(name=spec.name, images=images, labels=labels.astype(np.int64),
                   num_classes=classes)

"""Pluggable execution backends shared across the code base.

Every fan-out in the repository — the federated round engine (training /
shipping several clients per round), the per-tensor plan pipeline, and the
chunked Huffman entropy stage — goes through one :class:`ExecutionBackend`
abstraction with three built-in implementations:

* ``serial`` — strictly sequential execution on the calling thread, always
  bit-identical to a plain ``for`` loop (the deterministic reference the test
  suite pins the parallel paths against, and exactly what ``max_workers=1``
  selects on the other backends).
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Best when
  the work releases the GIL (NumPy BLAS kernels, simulated network sleeps);
  the historic default everywhere.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.  Scales
  pure-Python/CPU work past the GIL (the paper's many-core server decoding
  hundreds of client updates per round), at the price of a picklability
  contract: the mapped function must be a module-level callable and both its
  arguments and results must pickle.  Closures and lambdas are rejected by
  pickle itself.

Worker-count semantics are uniform across backends:

* ``workers=1`` — strictly sequential execution on the calling thread, no
  pool is created (bit-identical to the ``serial`` backend).
* ``workers=N`` — up to ``N`` items in flight at once.
* ``workers=None`` — the backend default: ``min(32, cpu_count + 4)`` for
  threads (the executor's own heuristic, tuned for I/O-ish overlap) but
  ``cpu_count`` for processes — a process pool is pure CPU fan-out, so the
  thread heuristic would oversubscribe it.

Process pools never nest: a ``process`` map issued from inside a process-pool
worker (e.g. a pipeline worker whose entropy stage also asks for processes)
degrades to sequential execution in that worker instead of forking
grandchildren.

This module is dependency-free on purpose: it sits below ``repro.fl``,
``repro.core``, and ``repro.compressors`` in the layering, so every side can
import it without cycles.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "map_parallel",
    "resolve_worker_count",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment marker set in every process-pool worker so nested ``process``
#: maps degrade to sequential execution instead of forking grandchildren.
_PROCESS_WORKER_ENV = "REPRO_EXECUTION_PROCESS_WORKER"


def _mark_process_worker() -> None:
    """Pool initializer: tag the worker so nested process maps stay flat."""
    os.environ[_PROCESS_WORKER_ENV] = "1"


def _in_process_worker() -> bool:
    return os.environ.get(_PROCESS_WORKER_ENV) == "1"


class _SerialExecutor(Executor):
    """`submit` semantics for the serial backend: run inline, wrap the result."""

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future


class ExecutionBackend(abc.ABC):
    """One way of running independent work items: serial, threads, or processes.

    Backends are stateless and picklable; pools live only for the duration of
    a single :meth:`map` or :meth:`executor` call, so instances are safe to
    share between threads and to embed in compressor objects that cross a
    process boundary themselves.
    """

    #: registry key; also what ``repr`` and the CLI show
    name: str = "base"

    #: True when workers contend for one GIL (threads): pure-CPU call sites
    #: clamp their fan-out to the physical cores on such backends, because
    #: extra workers are strict oversubscription.  GIL-free backends honour
    #: the requested count — their workers really do run concurrently.
    gil_bound: bool = False

    #: True when workers see (and may mutate) the caller's objects.  On a
    #: non-shared-memory backend (processes) arguments are copied to the
    #: worker, so in-place mutations are confined to the task and only the
    #: *returned* values travel back — callers that rely on side effects must
    #: re-absorb them from the results.
    shared_memory: bool = True

    @abc.abstractmethod
    def default_workers(self) -> int:
        """Worker count used when the caller passes ``workers=None``."""

    def resolve_workers(self, workers: int | None, n_items: int) -> int:
        """Effective worker count for ``n_items`` units of work.

        ``None`` resolves to :meth:`default_workers`; the result is always
        clamped to ``n_items`` (never spawn idle workers) and to a floor of 1.
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if workers is None:
            workers = self.default_workers()
        return max(1, min(workers, n_items))

    @abc.abstractmethod
    def _make_executor(self, workers: int) -> Executor:
        """A fresh executor with ``workers`` slots (``submit`` semantics)."""

    def executor(self, workers: int | None = None, n_items: int | None = None) -> Executor:
        """A context-managed executor for callers that need ``submit``.

        ``n_items`` (when known) participates in worker resolution exactly as
        in :meth:`map`; without it the requested (or default) count is used
        unclamped.
        """
        if n_items is not None:
            resolved = self.resolve_workers(workers, n_items)
        else:
            if workers is not None and workers < 1:
                raise ValueError("workers must be >= 1")
            resolved = max(1, workers if workers is not None else self.default_workers())
        return self._make_executor(resolved)

    def map(self, func: Callable[[T], R], items: Sequence[T],
            workers: int | None = None, chunksize: int | None = None) -> list[R]:
        """Apply ``func`` to every item, preserving order.

        With one resolved worker (or zero/one items) the call degenerates to a
        plain sequential loop on the calling thread, which keeps the behaviour
        deterministic for tests and avoids pool startup.  An exception raised
        by any ``func`` call propagates to the caller on every backend.

        ``chunksize`` batches items per task dispatch where the backend
        supports it (processes); ``None`` picks a batch that spreads the items
        about four tasks deep per worker to amortize pickling overhead.
        """
        items = list(items)
        if not items:
            return []
        workers = self.resolve_workers(workers, len(items))
        if workers == 1:
            return [func(item) for item in items]
        return self._map_concurrent(func, items, workers, chunksize)

    def _map_concurrent(self, func: Callable[[T], R], items: list[T],
                        workers: int, chunksize: int | None) -> list[R]:
        with self._make_executor(workers) as pool:
            return list(pool.map(func, items))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Sequential execution on the calling thread (the reference semantics)."""

    name = "serial"

    def default_workers(self) -> int:
        return 1

    def resolve_workers(self, workers: int | None, n_items: int) -> int:
        # validate like the pooled backends, but serial is always one worker
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        return 1

    def _make_executor(self, workers: int) -> Executor:
        return _SerialExecutor()


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution (GIL-sharing; best for BLAS / I/O overlap)."""

    name = "thread"
    gil_bound = True

    def default_workers(self) -> int:
        # the ThreadPoolExecutor heuristic: a few threads beyond the core
        # count keep I/O-ish work (simulated transfers, zlib) overlapped
        return min(32, (os.cpu_count() or 1) + 4)

    def _make_executor(self, workers: int) -> Executor:
        return ThreadPoolExecutor(max_workers=workers)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution (GIL-free; requires picklable tasks).

    The mapped function must be defined at module level and its arguments and
    results must pickle — the contract every task function in
    ``repro.compressors.huffman``, ``repro.core.pipeline``, and
    ``repro.fl.simulation`` honours.  Inside a process-pool worker the backend
    degrades to sequential execution, so nested fan-outs stay flat.
    """

    name = "process"
    shared_memory = False

    def default_workers(self) -> int:
        # one process per core: unlike threads there is nothing to overlap
        # past the cores, so the thread heuristic (+4) would oversubscribe
        return os.cpu_count() or 1

    def _make_executor(self, workers: int) -> Executor:
        if _in_process_worker():
            # never nest: submit-style use inside a process-pool worker runs
            # inline, mirroring the map() degrade
            return _SerialExecutor()
        return ProcessPoolExecutor(max_workers=workers,
                                   initializer=_mark_process_worker)

    def _map_concurrent(self, func: Callable[[T], R], items: list[T],
                        workers: int, chunksize: int | None) -> list[R]:
        if _in_process_worker():
            return [func(item) for item in items]
        if chunksize is None:
            chunksize = max(1, len(items) // (workers * 4))
        with self._make_executor(workers) as pool:
            return list(pool.map(func, items, chunksize=chunksize))


_BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add ``backend`` to the registry (keyed by its ``name``) and return it."""
    if not backend.name or backend.name == "base":
        raise ValueError("backend must define a non-default name")
    _BACKENDS[backend.name] = backend
    return backend


register_backend(SerialBackend())
register_backend(ThreadBackend())
register_backend(ProcessBackend())


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


def get_backend(backend: "str | ExecutionBackend") -> ExecutionBackend:
    """Resolve a backend name to its registry instance.

    Instances pass through unchanged, so APIs can accept either form.  An
    unknown name raises :class:`ValueError` with the available choices (the
    CLI surfaces this as a one-line error).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return _BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown execution backend {backend!r}; available: "
                         f"{', '.join(available_backends())}") from None


def resolve_worker_count(max_workers: int | None, n_items: int,
                         backend: "str | ExecutionBackend" = "thread") -> int:
    """Effective number of workers for ``n_items`` units of work on ``backend``.

    ``None`` resolves to the backend default — ``min(32, cpu_count + 4)`` for
    threads, ``cpu_count`` for processes, always 1 for serial — and the result
    is clamped to ``n_items`` (never spawn idle workers) and to a floor of 1.
    """
    return get_backend(backend).resolve_workers(max_workers, n_items)


def map_parallel(func: Callable[[T], R], items: Sequence[T],
                 max_workers: int | None = None,
                 backend: "str | ExecutionBackend" = "thread",
                 chunksize: int | None = None) -> list[R]:
    """Apply ``func`` to every item on the named backend, preserving order.

    The historic thread-pool helper, now a thin wrapper over
    :meth:`ExecutionBackend.map`; ``backend="serial"`` (or ``max_workers=1``
    on any backend) is the plain sequential loop.  The ``process`` backend
    requires ``func`` and the items to satisfy the picklability contract
    documented on :class:`ProcessBackend`.
    """
    return get_backend(backend).map(func, items, workers=max_workers,
                                    chunksize=chunksize)

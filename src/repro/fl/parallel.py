"""Deprecated shim — the helpers moved to their real homes.

``map_parallel`` and ``resolve_worker_count`` live in
:mod:`repro.utils.parallel` (the shared :class:`ExecutionBackend` layer), and
``train_clients_parallel`` in :mod:`repro.fl.simulation` next to the round
engine that drives it.  This module re-exports all three for one release so
historic ``from repro.fl.parallel import ...`` statements keep working, but
importing it emits a :class:`DeprecationWarning`; it will be removed in the
release after next.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.fl.parallel is deprecated: import map_parallel/resolve_worker_count "
    "from repro.utils.parallel and train_clients_parallel from "
    "repro.fl.simulation (this shim will be removed in the next release)",
    DeprecationWarning, stacklevel=2)

from repro.fl.simulation import train_clients_parallel  # noqa: E402
from repro.utils.parallel import map_parallel, resolve_worker_count  # noqa: E402

__all__ = ["map_parallel", "resolve_worker_count", "train_clients_parallel"]

"""Error-bounded linear quantization of prediction residuals.

The prediction-based compressors (SZ2, SZ3) turn each residual
``r = x - prediction`` into an integer code ``q = round(r / (2 * eps))`` so
that the reconstruction ``prediction + 2 * eps * q`` differs from ``x`` by at
most ``eps``.  Values whose code would fall outside the configured quantization
radius are flagged *unpredictable* and stored verbatim (lossless), exactly like
SZ's outlier handling.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["LinearQuantizer", "QuantizationResult"]


@dataclass
class QuantizationResult:
    """Output of :meth:`LinearQuantizer.quantize`.

    ``codes`` holds shifted non-negative symbols (ready for Huffman): code 0 is
    reserved for unpredictable values, predictable values map to
    ``q + radius + 1``.  ``outliers`` stores the verbatim float values for the
    positions where ``codes == 0``, in order of appearance.
    """

    codes: np.ndarray
    outliers: np.ndarray
    reconstructed: np.ndarray


class LinearQuantizer:
    """Uniform quantizer with a symmetric integer radius and outlier escape."""

    def __init__(self, radius: int = 32768) -> None:
        if radius < 1:
            raise ValueError("radius must be >= 1")
        self.radius = int(radius)

    def quantize(self, data: np.ndarray, predictions: np.ndarray, abs_bound: float) -> QuantizationResult:
        """Quantize ``data - predictions`` under the absolute bound."""
        data = np.asarray(data, dtype=np.float64)
        predictions = np.asarray(predictions, dtype=np.float64)
        if data.shape != predictions.shape:
            raise ValueError("data and predictions must have the same shape")
        if abs_bound <= 0:
            raise ValueError("abs_bound must be positive")
        # The quotient is screened in float64 *before* the int64 cast: a huge
        # residual-to-bound ratio (or a non-finite prediction) would otherwise
        # overflow the cast into arbitrary negative codes instead of taking the
        # outlier escape.  One float64 scratch buffer (`work`) serves as the
        # residual, the rounded quotient, the reconstruction candidate, and
        # finally the reconstruction itself; every operation is the same
        # float64 arithmetic as the naive expression-per-temporary form, so the
        # results are bit-identical while peak scratch drops from ~7 full-size
        # float64/int64 temporaries to this buffer plus the int64 codes.
        with np.errstate(over="ignore", invalid="ignore"):
            work = np.subtract(data, predictions)         # residual
            np.divide(work, 2.0 * abs_bound, out=work)
            np.rint(work, out=work)                       # the quotient q
            predictable = np.isfinite(work)
            # |q| <= radius without materializing a full-size |q| buffer
            predictable &= work <= float(self.radius)
            predictable &= work >= -float(self.radius)
            npred = np.logical_not(predictable)
            np.copyto(work, 0.0, where=npred)
            q = work.astype(np.int64)
            # the reconstruction itself must be screened too: with a huge
            # bound, `2 * abs_bound * q` can round past the float64 maximum
            # even when the quotient is small (e.g. data 1.75e308 predicted at
            # 1.6e308 with bound 1e307), so such positions take the outlier
            # escape instead of reconstructing as inf
            np.multiply(work, 2.0 * abs_bound, out=work)
            np.add(work, predictions, out=work)           # the candidate
            np.isfinite(work, out=npred)
            predictable &= npred
            np.logical_not(predictable, out=npred)
            np.copyto(q, 0, where=npred)
            np.copyto(work, data, where=npred)            # the reconstruction
        np.add(q, self.radius + 1, out=q, where=predictable)
        outliers = data[npred].astype(np.float64)
        return QuantizationResult(codes=q, outliers=outliers, reconstructed=work)

    def dequantize(self, codes: np.ndarray, outliers: np.ndarray, predictions: np.ndarray,
                   abs_bound: float) -> np.ndarray:
        """Invert :meth:`quantize` given the same predictions.

        Mirrors the scratch discipline of :meth:`quantize`: one float64
        buffer (`work`) serves as the shifted quotient, the scaled residual,
        and finally the reconstruction, with every operation the same float64
        arithmetic as the naive expression-per-temporary form — bit-identical
        results, one full-size temporary instead of four.
        """
        codes = np.asarray(codes, dtype=np.int64)
        predictions = np.asarray(predictions, dtype=np.float64)
        work = np.subtract(codes, self.radius + 1).astype(np.float64)
        with np.errstate(over="ignore", invalid="ignore"):
            # unpredictable positions (code 0 → q = -radius-1) may overflow
            # here; they are overwritten from the outlier list just below
            np.multiply(work, 2.0 * abs_bound, out=work)
            np.add(predictions, work, out=work)
        unpred = codes == 0
        n_unpred = int(unpred.sum())
        if n_unpred:
            if outliers.size < n_unpred:
                raise ValueError("not enough outlier values to dequantize")
            work[unpred] = outliers[:n_unpred]
        return work

    # -- payload helpers -----------------------------------------------------
    @staticmethod
    def pack_outliers(outliers: np.ndarray) -> bytes:
        """Serialize verbatim outlier values (float64, length prefixed)."""
        outliers = np.asarray(outliers, dtype=np.float64)
        return struct.pack("<Q", outliers.size) + outliers.tobytes()

    @staticmethod
    def unpack_outliers(payload: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
        """Inverse of :func:`pack_outliers`; returns the array and next offset."""
        (count,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        values = np.frombuffer(payload, dtype=np.float64, count=count, offset=offset).copy()
        return values, offset + 8 * count

"""Pluggable execution backends shared across the code base.

Every fan-out in the repository — the federated round engine (training /
shipping several clients per round), the per-tensor plan pipeline, and the
chunked Huffman entropy stage — goes through one :class:`ExecutionBackend`
abstraction with three built-in implementations:

* ``serial`` — strictly sequential execution on the calling thread, always
  bit-identical to a plain ``for`` loop (the deterministic reference the test
  suite pins the parallel paths against, and exactly what ``max_workers=1``
  selects on the other backends).
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Best when
  the work releases the GIL (NumPy BLAS kernels, simulated network sleeps);
  the historic default everywhere.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.  Scales
  pure-Python/CPU work past the GIL (the paper's many-core server decoding
  hundreds of client updates per round), at the price of a picklability
  contract: the mapped function must be a module-level callable and both its
  arguments and results must pickle.  Closures and lambdas are rejected by
  pickle itself.
* ``subinterpreter`` — a :class:`~concurrent.futures.InterpreterPoolExecutor`
  (PEP 734, Python 3.13+): one interpreter (and one GIL) per worker inside a
  single process.  Registered on every interpreter so it is discoverable, but
  running work on it raises a clean :class:`ValueError` when the executor
  class is missing.  Same picklability contract as ``process``.

Backends that pickle their arguments (``pickles_arguments`` trait) can ship
large NumPy buffers through a :class:`SharedMemoryArena` instead: the caller
packs arrays into one ``multiprocessing.shared_memory`` segment and hands
tasks a small picklable :class:`ArenaHandle` naming where each array lives.

Worker-count semantics are uniform across backends:

* ``workers=1`` — strictly sequential execution on the calling thread, no
  pool is created (bit-identical to the ``serial`` backend).
* ``workers=N`` — up to ``N`` items in flight at once.
* ``workers=None`` — the backend default: ``min(32, cpu_count + 4)`` for
  threads (the executor's own heuristic, tuned for I/O-ish overlap) but
  ``cpu_count`` for processes — a process pool is pure CPU fan-out, so the
  thread heuristic would oversubscribe it.

Process pools never nest: a ``process`` map issued from inside a process-pool
worker (e.g. a pipeline worker whose entropy stage also asks for processes)
degrades to sequential execution in that worker instead of forking
grandchildren.

Pools are per-call by default — every :meth:`~ExecutionBackend.map` spins one
up and tears it down.  Call sites that fan out repeatedly (a federated run
maps training and shipping every round) wrap the whole run in
:meth:`ExecutionBackend.persistent`, a scope backed by one long-lived pool:

* inside the scope, ``map``/``executor`` calls **from the thread that entered
  it** reuse the scope's pool (``executor`` returns a non-owning view whose
  ``shutdown`` is a no-op, so ``with`` blocks cannot kill the shared pool);
* calls from *other* threads — e.g. a nested fan-out issued inside a pool
  worker — keep the historic fresh-pool/sequential behaviour, which is what
  makes the scope deadlock-free by construction;
* ``serial`` (or a resolved worker count of 1) degrades to a no-op scope;
* an optional ``initializer(*initargs)`` runs once per worker as it spawns
  (and re-runs if a crashed process worker is respawned) — the hook the
  federated coordinator uses to install worker-resident client state once per
  run instead of shipping it with every task.

Every real pool construction (persistent or per-call) increments the
backend's ``pool_spinups`` counter, so benchmarks can show how many pools a
workload paid for.


This module is dependency-free on purpose: it sits below ``repro.fl``,
``repro.core``, and ``repro.compressors`` in the layering, so every side can
import it without cycles.
"""

from __future__ import annotations

import abc
import contextlib
import os
import sys
import threading
from concurrent import futures
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Iterable, Mapping, Sequence, TypeVar

import numpy as np

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SubinterpreterBackend",
    "PersistentPool",
    "SharedMemoryArena",
    "ArenaHandle",
    "ArenaView",
    "available_backends",
    "get_backend",
    "register_backend",
    "map_parallel",
    "resolve_worker_count",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment marker set in every process-pool worker so nested ``process``
#: maps degrade to sequential execution instead of forking grandchildren.
_PROCESS_WORKER_ENV = "REPRO_EXECUTION_PROCESS_WORKER"


def _mark_process_worker() -> None:
    """Pool initializer: tag the worker so nested process maps stay flat."""
    os.environ[_PROCESS_WORKER_ENV] = "1"


def _process_worker_init(initializer=None, initargs=()) -> None:
    """Process-pool initializer: mark the worker, then run the caller's hook.

    Module-level so it pickles; ``initializer`` and ``initargs`` ride along as
    ``initargs`` of the real :class:`ProcessPoolExecutor`, which is exactly
    where a persistent scope ships its once-per-worker state.
    """
    _mark_process_worker()
    if initializer is not None:
        initializer(*initargs)


def _in_process_worker() -> bool:
    return os.environ.get(_PROCESS_WORKER_ENV) == "1"


class _SerialExecutor(Executor):
    """`submit` semantics for the serial backend: run inline, wrap the result."""

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future


class PersistentPool:
    """A live :meth:`ExecutionBackend.persistent` scope: one long-lived pool.

    ``map`` mirrors :meth:`ExecutionBackend.map`'s ordered semantics on the
    shared executor; a task exception propagates to the caller and leaves the
    pool usable for subsequent maps (both thread and process pools survive
    task failures — only an unpicklable task or a worker hard-crash breaks a
    process pool).  ``maps`` counts dispatches through the scope, the
    observable evidence that call sites reused the pool instead of spinning
    fresh ones.
    """

    def __init__(self, executor: Executor, workers: int) -> None:
        self.executor = executor
        self.workers = workers
        #: number of map() calls served by this scope's pool
        self.maps = 0

    def map(self, func: Callable[[T], R], items: "list[T]",
            chunksize: int | None = None) -> "list[R]":
        if chunksize is None:
            # same batching as the per-call process path: about four task
            # dispatches deep per worker (thread pools ignore chunksize)
            chunksize = max(1, len(items) // (self.workers * 4))
        self.maps += 1
        return list(self.executor.map(func, items, chunksize=chunksize))


class _ScopedExecutor(Executor):
    """Non-owning view of a persistent pool.

    Returned by :meth:`ExecutionBackend.executor` inside a persistent scope so
    the ubiquitous ``with backend.executor(...) as pool:`` idiom keeps working:
    ``shutdown`` (and therefore ``__exit__``) is a no-op — the scope, not the
    call site, owns the pool's lifetime.
    """

    def __init__(self, executor: Executor) -> None:
        self._executor = executor

    def submit(self, fn, /, *args, **kwargs) -> Future:
        return self._executor.submit(fn, *args, **kwargs)

    def map(self, fn, *iterables, **kwargs):
        return self._executor.map(fn, *iterables, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass


class ExecutionBackend(abc.ABC):
    """One way of running independent work items: serial, threads, or processes.

    Backends are (almost) stateless and picklable; pools live only for the
    duration of a single :meth:`map` or :meth:`executor` call — unless the
    caller opens a :meth:`persistent` scope, whose one long-lived pool backs
    every ``map``/``executor`` call issued *from the entering thread* for the
    scope's lifetime.  The scope bookkeeping is thread-local and dropped on
    pickling, so instances remain safe to share between threads and to embed
    in compressor objects that cross a process boundary themselves.
    """

    #: registry key; also what ``repr`` and the CLI show
    name: str = "base"

    #: real (non-serial) executor pools this instance has constructed — the
    #: per-round fixed cost the persistent scope exists to amortize away
    pool_spinups: int = 0

    #: True when workers contend for one GIL (threads): pure-CPU call sites
    #: clamp their fan-out to the physical cores on such backends, because
    #: extra workers are strict oversubscription.  GIL-free backends honour
    #: the requested count — their workers really do run concurrently.
    gil_bound: bool = False

    #: True when workers see (and may mutate) the caller's objects.  On a
    #: non-shared-memory backend (processes) arguments are copied to the
    #: worker, so in-place mutations are confined to the task and only the
    #: *returned* values travel back — callers that rely on side effects must
    #: re-absorb them from the results.
    shared_memory: bool = True

    #: True when arguments and results cross a serialization (pickle)
    #: boundary on their way to and from workers.  Call sites that would ship
    #: large buffers check this trait and switch to a
    #: :class:`SharedMemoryArena` handle; on in-process backends the arena is
    #: pure overhead, so it stays off there.
    pickles_arguments: bool = False

    @abc.abstractmethod
    def default_workers(self) -> int:
        """Worker count used when the caller passes ``workers=None``."""

    def resolve_workers(self, workers: int | None, n_items: int) -> int:
        """Effective worker count for ``n_items`` units of work.

        ``None`` resolves to :meth:`default_workers`; the result is always
        clamped to ``n_items`` (never spawn idle workers) and to a floor of 1.
        """
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if workers is None:
            workers = self.default_workers()
        return max(1, min(workers, n_items))

    @abc.abstractmethod
    def _make_executor(self, workers: int, initializer: Callable | None = None,
                       initargs: tuple = ()) -> Executor:
        """A fresh executor with ``workers`` slots (``submit`` semantics).

        ``initializer(*initargs)`` runs once per worker as it spawns; backends
        that degrade to inline execution run it on the calling thread instead,
        so code inside a scope may rely on it having run wherever tasks run.
        """

    def _new_executor(self, workers: int, initializer: Callable | None = None,
                      initargs: tuple = ()) -> Executor:
        """:meth:`_make_executor` plus the ``pool_spinups`` accounting."""
        pool = self._make_executor(workers, initializer, initargs)
        if not isinstance(pool, _SerialExecutor):
            self.pool_spinups += 1
        return pool

    # -- persistent scope ---------------------------------------------------
    def _scope_stack(self) -> list:
        """This thread's stack of active persistent scopes (lazily created)."""
        local = self.__dict__.get("_persistent_local")
        if local is None:
            local = self.__dict__["_persistent_local"] = threading.local()
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        return stack

    def _active_scope(self) -> "PersistentPool | None":
        """The innermost persistent scope entered *by the calling thread*.

        Calls from any other thread (pool workers fanning out again) see
        ``None`` and keep the historic fresh-pool behaviour — reusing the
        scope's pool from inside one of its own workers would deadlock.
        """
        local = self.__dict__.get("_persistent_local")
        stack = getattr(local, "stack", None) if local is not None else None
        return stack[-1] if stack else None

    def _persistent_inline(self) -> bool:
        """True when a persistent scope must degrade to inline execution."""
        return False

    @contextlib.contextmanager
    def persistent(self, workers: int | None = None,
                   initializer: Callable | None = None, initargs: tuple = ()):
        """One long-lived pool backing every map/executor call in this scope.

        Yields the :class:`PersistentPool` (or ``None`` when the scope
        degrades: the ``serial`` backend, a resolved worker count of 1, or a
        nested process-pool worker — in which case ``initializer(*initargs)``
        still runs, inline, preserving the once-per-worker contract).  Only
        calls from the thread that entered the scope reuse the pool; see
        :meth:`_active_scope`.  The pool is shut down (waiting for stragglers)
        when the scope exits, even on error.
        """
        # resolve against an unbounded item count: the scope serves maps of
        # many different sizes, so per-call clamping happens at map() time
        resolved = self.resolve_workers(workers, sys.maxsize)
        if resolved == 1 or self._persistent_inline():
            if initializer is not None:
                initializer(*initargs)
            yield None
            return
        pool = self._new_executor(resolved, initializer, initargs)
        scope = PersistentPool(pool, resolved)
        stack = self._scope_stack()
        stack.append(scope)
        try:
            with pool:
                yield scope
        finally:
            stack.remove(scope)

    # -- pickling: thread-local scope state stays on this side --------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_persistent_local", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -----------------------------------------------------------------------
    def executor(self, workers: int | None = None, n_items: int | None = None) -> Executor:
        """A context-managed executor for callers that need ``submit``.

        ``n_items`` (when known) participates in worker resolution exactly as
        in :meth:`map`; without it the requested (or default) count is used
        unclamped.  Inside a persistent scope (entered on this thread) the
        returned executor is a non-owning view of the scope's pool whose
        ``shutdown`` is a no-op — the scope's worker count wins over
        ``workers``.
        """
        if n_items is not None:
            resolved = self.resolve_workers(workers, n_items)
        else:
            if workers is not None and workers < 1:
                raise ValueError("workers must be >= 1")
            resolved = max(1, workers if workers is not None else self.default_workers())
        scope = self._active_scope()
        if scope is not None and resolved > 1:
            return _ScopedExecutor(scope.executor)
        return self._new_executor(resolved)

    def map(self, func: Callable[[T], R], items: Sequence[T],
            workers: int | None = None, chunksize: int | None = None) -> list[R]:
        """Apply ``func`` to every item, preserving order.

        With one resolved worker (or zero/one items) the call degenerates to a
        plain sequential loop on the calling thread, which keeps the behaviour
        deterministic for tests and avoids pool startup.  An exception raised
        by any ``func`` call propagates to the caller on every backend.

        ``chunksize`` batches items per task dispatch where the backend
        supports it (processes); ``None`` picks a batch that spreads the items
        about four tasks deep per worker to amortize pickling overhead.

        Inside a persistent scope entered on the calling thread, the scope's
        pool serves the map instead of a fresh one.
        """
        items = list(items)
        if not items:
            return []
        workers = self.resolve_workers(workers, len(items))
        if workers == 1:
            return [func(item) for item in items]
        scope = self._active_scope()
        if scope is not None:
            return scope.map(func, items, chunksize)
        return self._map_concurrent(func, items, workers, chunksize)

    def _map_concurrent(self, func: Callable[[T], R], items: list[T],
                        workers: int, chunksize: int | None) -> list[R]:
        with self._new_executor(workers) as pool:
            return list(pool.map(func, items))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Sequential execution on the calling thread (the reference semantics)."""

    name = "serial"

    def default_workers(self) -> int:
        return 1

    def resolve_workers(self, workers: int | None, n_items: int) -> int:
        # validate like the pooled backends, but serial is always one worker
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        return 1

    def _make_executor(self, workers: int, initializer: Callable | None = None,
                       initargs: tuple = ()) -> Executor:
        if initializer is not None:
            initializer(*initargs)
        return _SerialExecutor()


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution (GIL-sharing; best for BLAS / I/O overlap)."""

    name = "thread"
    gil_bound = True

    def default_workers(self) -> int:
        # the ThreadPoolExecutor heuristic: a few threads beyond the core
        # count keep I/O-ish work (simulated transfers, zlib) overlapped
        return min(32, (os.cpu_count() or 1) + 4)

    def _make_executor(self, workers: int, initializer: Callable | None = None,
                       initargs: tuple = ()) -> Executor:
        return ThreadPoolExecutor(max_workers=workers, initializer=initializer,
                                  initargs=initargs)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution (GIL-free; requires picklable tasks).

    The mapped function must be defined at module level and its arguments and
    results must pickle — the contract every task function in
    ``repro.compressors.huffman``, ``repro.core.pipeline``, and
    ``repro.fl.simulation`` honours.  Inside a process-pool worker the backend
    degrades to sequential execution, so nested fan-outs stay flat.
    """

    name = "process"
    shared_memory = False
    pickles_arguments = True

    def default_workers(self) -> int:
        # one process per core: unlike threads there is nothing to overlap
        # past the cores, so the thread heuristic (+4) would oversubscribe
        return os.cpu_count() or 1

    def _persistent_inline(self) -> bool:
        # never nest: a persistent scope opened inside a process-pool worker
        # degrades to inline execution, mirroring the map() degrade
        return _in_process_worker()

    def _make_executor(self, workers: int, initializer: Callable | None = None,
                       initargs: tuple = ()) -> Executor:
        if _in_process_worker():
            # never nest: submit-style use inside a process-pool worker runs
            # inline, mirroring the map() degrade
            if initializer is not None:
                initializer(*initargs)
            return _SerialExecutor()
        return ProcessPoolExecutor(max_workers=workers,
                                   initializer=_process_worker_init,
                                   initargs=(initializer, initargs))

    def _map_concurrent(self, func: Callable[[T], R], items: list[T],
                        workers: int, chunksize: int | None) -> list[R]:
        if _in_process_worker():
            return [func(item) for item in items]
        if chunksize is None:
            chunksize = max(1, len(items) // (workers * 4))
        with self._new_executor(workers) as pool:
            return list(pool.map(func, items, chunksize=chunksize))


class SubinterpreterBackend(ExecutionBackend):
    """Per-subinterpreter execution (PEP 734) on Python 3.13+.

    Each worker runs in its own interpreter — with its own GIL — inside one
    process: GIL-free scaling like ``process`` with cheaper worker startup
    and no fork.  The executor pickles tasks and arguments across the
    interpreter boundary, so the picklability contract is exactly
    :class:`ProcessBackend`'s (and ``pickles_arguments`` is set: arena
    shipping applies here too).

    The backend is registered on every interpreter so tooling can list it,
    but :meth:`map` / :meth:`executor` raise :class:`ValueError` when
    :class:`concurrent.futures.InterpreterPoolExecutor` is absent.
    """

    name = "subinterpreter"
    shared_memory = False
    pickles_arguments = True

    @staticmethod
    def supported() -> bool:
        """True when this interpreter can create subinterpreter pools."""
        return hasattr(futures, "InterpreterPoolExecutor")

    def _require_support(self) -> None:
        if not self.supported():
            raise ValueError(
                "the 'subinterpreter' backend requires Python >= 3.13 "
                "(concurrent.futures.InterpreterPoolExecutor); this is "
                f"Python {sys.version.split()[0]} — use 'process' instead")

    def default_workers(self) -> int:
        # like processes: one interpreter per core, nothing to overlap past
        return os.cpu_count() or 1

    def map(self, func: Callable[[T], R], items: Sequence[T],
            workers: int | None = None, chunksize: int | None = None) -> list[R]:
        # raise the version error even for the workers==1 sequential degrade:
        # a backend that silently works single-worker but fails at 4 would be
        # a debugging trap
        self._require_support()
        return super().map(func, items, workers=workers, chunksize=chunksize)

    def executor(self, workers: int | None = None, n_items: int | None = None) -> Executor:
        self._require_support()
        return super().executor(workers, n_items)

    def _make_executor(self, workers: int, initializer: Callable | None = None,
                       initargs: tuple = ()) -> Executor:
        self._require_support()
        return futures.InterpreterPoolExecutor(max_workers=workers,
                                               initializer=initializer,
                                               initargs=initargs)


# ----------------------------------------------------------------------
# Shared-memory shipping for pickling backends
# ----------------------------------------------------------------------

#: Arrays inside an arena segment start on this many bytes, so every view is
#: as aligned as a freshly allocated ndarray.
_ARENA_ALIGN = 64


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership of it.

    Attaching normally registers the segment with
    ``multiprocessing.resource_tracker``, which unlinks it when *this*
    process exits — destroying a segment the creating side still owns.
    Python 3.13 grew ``track=False`` for exactly this; on older interpreters
    the segment is unregistered immediately after attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Registering-then-unregistering is NOT equivalent: pool workers share
        # the parent's tracker process, whose cache is a set keyed by name, so
        # a worker's unregister message would erase the parent's own
        # registration.  Suppress the registration instead.
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable description of a :class:`SharedMemoryArena` segment.

    Carries the segment name plus one ``(key, dtype, shape, offset)`` spec
    per array — a few hundred bytes regardless of tensor sizes, which is the
    point: tasks on a ``pickles_arguments`` backend ship this handle instead
    of serialized copies of the buffers.
    """

    segment: str
    specs: "tuple[tuple[str, str, tuple[int, ...], int], ...]"

    def open(self) -> "ArenaView":
        """Attach to the segment (typically inside a worker)."""
        return ArenaView(self)

    def load(self) -> "dict[str, np.ndarray]":
        """Attach, copy every array out, detach — the simple safe accessor."""
        with self.open() as view:
            return view.arrays(copy=True)


class ArenaView:
    """A live attachment to an arena segment (context-managed).

    ``arrays(copy=False)`` returns read-only zero-copy views into the shared
    segment; they are valid only while the view is open, and every reference
    to them must be dropped before :meth:`close` (an exported buffer turns
    the detach into a :class:`BufferError`).  Use ``copy=True`` for arrays
    that outlive the view.
    """

    def __init__(self, handle: ArenaHandle) -> None:
        self._handle = handle
        self._shm = _attach_segment(handle.segment)

    def arrays(self, copy: bool = False) -> "dict[str, np.ndarray]":
        """The packed arrays, keyed as they were packed (insertion order)."""
        out: dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in self._handle.specs:
            arr = np.ndarray(shape, dtype=np.dtype(dtype),
                             buffer=self._shm.buf, offset=offset)
            if copy:
                arr = arr.copy()
            else:
                arr.flags.writeable = False
            out[key] = arr
        return out

    def close(self) -> None:
        self._shm.close()

    def __enter__(self) -> "ArenaView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SharedMemoryArena:
    """Ship NumPy buffers to pickling backends without pickling them.

    Packs a mapping of arrays into one ``multiprocessing.shared_memory``
    segment; the picklable :attr:`handle` names the segment and where each
    array lives inside it, so a ``process`` (or ``subinterpreter``) task
    receives kilobytes of metadata instead of a serialized copy of every
    tensor.  Only worth using on backends with the ``pickles_arguments``
    trait — in-process backends see the caller's arrays anyway.

    Lifecycle: the creating side owns the segment.  It packs, hands
    :attr:`handle` to its tasks, and calls :meth:`close` (or exits the
    ``with`` block) once every task has finished.  Workers attach via
    ``handle.open()`` / ``handle.load()``; attachment never registers with
    the resource tracker, so a worker exiting cannot unlink the parent's
    segment.
    """

    def __init__(self, arrays: "Mapping[str, np.ndarray]") -> None:
        specs: list[tuple[str, str, tuple[int, ...], int]] = []
        packed: list[tuple[int, np.ndarray]] = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // _ARENA_ALIGN) * _ARENA_ALIGN
            specs.append((str(key), arr.dtype.str, tuple(arr.shape), offset))
            packed.append((offset, arr))
            offset += arr.nbytes
        # SharedMemory rejects size=0; an empty arena still needs a segment
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for off, arr in packed:
            dest = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=self._shm.buf, offset=off)
            dest[...] = arr
            del dest  # release the buffer export before any close/unlink
        self.handle = ArenaHandle(self._shm.name, tuple(specs))
        self._closed = False

    @property
    def nbytes(self) -> int:
        """Allocated segment size in bytes (alignment padding included)."""
        return self._shm.size

    def close(self) -> None:
        """Detach and destroy the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedMemoryArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add ``backend`` to the registry (keyed by its ``name``) and return it."""
    if not backend.name or backend.name == "base":
        raise ValueError("backend must define a non-default name")
    _BACKENDS[backend.name] = backend
    return backend


register_backend(SerialBackend())
register_backend(ThreadBackend())
register_backend(ProcessBackend())
register_backend(SubinterpreterBackend())


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


def get_backend(backend: "str | ExecutionBackend") -> ExecutionBackend:
    """Resolve a backend name to its registry instance.

    Instances pass through unchanged, so APIs can accept either form.  An
    unknown name raises :class:`ValueError` with the available choices (the
    CLI surfaces this as a one-line error).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return _BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown execution backend {backend!r}; available: "
                         f"{', '.join(available_backends())}") from None


def resolve_worker_count(max_workers: int | None, n_items: int,
                         backend: "str | ExecutionBackend" = "thread") -> int:
    """Effective number of workers for ``n_items`` units of work on ``backend``.

    ``None`` resolves to the backend default — ``min(32, cpu_count + 4)`` for
    threads, ``cpu_count`` for processes, always 1 for serial — and the result
    is clamped to ``n_items`` (never spawn idle workers) and to a floor of 1.
    """
    return get_backend(backend).resolve_workers(max_workers, n_items)


def map_parallel(func: Callable[[T], R], items: Sequence[T],
                 max_workers: int | None = None,
                 backend: "str | ExecutionBackend" = "thread",
                 chunksize: int | None = None) -> list[R]:
    """Apply ``func`` to every item on the named backend, preserving order.

    The historic thread-pool helper, now a thin wrapper over
    :meth:`ExecutionBackend.map`; ``backend="serial"`` (or ``max_workers=1``
    on any backend) is the plain sequential loop.  The ``process`` backend
    requires ``func`` and the items to satisfy the picklability contract
    documented on :class:`ProcessBackend`.
    """
    return get_backend(backend).map(func, items, workers=max_workers,
                                    chunksize=chunksize)

"""Tests for the lossless codecs."""

import numpy as np
import pytest

from repro.compressors.lossless import (
    BloscLZCodec,
    Bzip2Codec,
    GzipCodec,
    LosslessCodec,
    LzmaCodec,
    ShuffleRLECodec,
    ZlibCodec,
    ZstdLikeCodec,
    available_lossless,
    get_lossless,
)

ALL_CODECS = [BloscLZCodec, ShuffleRLECodec, ZlibCodec, GzipCodec, Bzip2Codec,
              LzmaCodec, ZstdLikeCodec, LosslessCodec]


@pytest.mark.parametrize("codec_cls", ALL_CODECS)
class TestRoundtripAllCodecs:
    def test_bytes_roundtrip(self, codec_cls):
        codec = codec_cls()
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
        assert codec.decompress(codec.compress(data)) == data

    def test_empty_roundtrip(self, codec_cls):
        codec = codec_cls()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_float_array_roundtrip(self, codec_cls):
        codec = codec_cls()
        arr = np.random.default_rng(1).normal(0, 0.05, size=(37, 11)).astype(np.float32)
        out = codec.decompress_array(codec.compress_array(arr))
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype and out.shape == arr.shape

    def test_odd_length_bytes(self, codec_cls):
        codec = codec_cls()
        data = b"\x01\x02\x03\x04\x05\x06\x07"  # not a multiple of 4
        assert codec.decompress(codec.compress(data)) == data


class TestCompressionBehaviour:
    def test_blosclz_beats_raw_on_float_weights(self):
        weights = np.random.default_rng(0).normal(0, 0.05, 50_000).astype(np.float32)
        compressed = BloscLZCodec().compress(weights.tobytes())
        assert len(compressed) < weights.nbytes

    def test_shuffle_rle_compresses_repetitive_floats(self):
        data = np.full(10_000, 1.25, dtype=np.float32).tobytes()
        codec = ShuffleRLECodec()
        compressed = codec.compress(data)
        assert len(compressed) < len(data) / 10
        assert codec.decompress(compressed) == data

    def test_lzma_best_ratio_on_structured_data(self):
        data = (b"federated learning " * 2000)
        sizes = {
            "xz": len(LzmaCodec().compress(data)),
            "blosclz": len(BloscLZCodec().compress(data)),
        }
        assert sizes["xz"] <= sizes["blosclz"]

    def test_zstd_like_faster_levels_than_gzip(self):
        # structural check on configuration rather than timing (timing is flaky in CI)
        assert ZstdLikeCodec().level < GzipCodec().level

    def test_blosclz_length_corruption_detected(self):
        codec = BloscLZCodec()
        payload = bytearray(codec.compress(b"0123456789abcdef"))
        payload[1] ^= 0xFF  # corrupt the recorded length
        with pytest.raises(Exception):
            codec.decompress(bytes(payload))


class TestRegistry:
    def test_available_contains_paper_codecs(self):
        names = available_lossless()
        for expected in ("blosclz", "zlib", "gzip", "zstd", "xz"):
            assert expected in names

    def test_get_lossless_instantiates(self):
        codec = get_lossless("blosclz")
        assert isinstance(codec, BloscLZCodec)

    def test_get_lossless_kwargs(self):
        codec = get_lossless("zlib", level=1)
        assert codec.level == 1

    def test_unknown_codec_raises(self):
        with pytest.raises(ValueError, match="unknown lossless codec"):
            get_lossless("snappy")

    def test_codec_names_unique(self):
        names = [get_lossless(name).name for name in available_lossless()]
        assert len(names) == len(set(names))

"""Federated CIFAR-10 with and without FedSZ compression.

Reproduces the paper's headline experiment in miniature: four FedAvg clients
train a small CNN on a synthetic CIFAR-10 stand-in for several communication
rounds, once shipping raw float32 updates and once shipping FedSZ bitstreams
(SZ2, relative error bound 1e-2), over a simulated 10 Mbps uplink.

The script prints the per-round accuracy of both runs (they should track each
other closely), the upload volume, and the modeled communication time saved.

Run with::

    python examples/fl_cifar10_fedsz.py [--rounds 8] [--clients 4] [--bound 1e-2]
"""

from __future__ import annotations

import argparse

from repro.core import FedSZConfig, NetworkModel
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec
from repro.nn import build_model
from repro.utils.timer import format_bytes, format_seconds


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=8, help="communication rounds")
    parser.add_argument("--clients", type=int, default=4, help="number of FL clients")
    parser.add_argument("--bound", type=float, default=1e-2, help="relative error bound")
    parser.add_argument("--samples", type=int, default=600, help="synthetic dataset size")
    parser.add_argument("--bandwidth", type=float, default=10.0, help="uplink bandwidth (Mbps)")
    parser.add_argument("--non-iid", action="store_true",
                        help="use a Dirichlet(0.5) label-skewed client partition")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    dataset = make_dataset("cifar10", n_samples=args.samples, image_size=16, seed=1)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=2)

    def factory():
        return build_model("simplecnn", num_classes=10, in_channels=3, image_size=16, seed=0)

    network = NetworkModel(bandwidth_mbps=args.bandwidth)
    scheme = "dirichlet" if args.non_iid else "iid"
    runs = {
        "uncompressed": RawUpdateCodec(),
        f"FedSZ (SZ2 @ {args.bound:g})": FedSZUpdateCodec(FedSZConfig(error_bound=args.bound)),
    }

    results = {}
    for label, codec in runs.items():
        sim = FederatedSimulation(factory, train, test, n_clients=args.clients, codec=codec,
                                  network=network, partition_scheme=scheme, lr=0.15, seed=3)
        print(f"\n=== {label} ===")
        result = sim.run(args.rounds)
        for record in result.rounds:
            print(f"round {record.round_index:2d}: accuracy {record.accuracy:6.2%}  "
                  f"upload {format_bytes(record.transmitted_bytes)}  "
                  f"comm time {format_seconds(record.communication_seconds)}")
        results[label] = result

    raw, fedsz = results.values()
    print("\n=== summary ===")
    print(f"final accuracy:  uncompressed {raw.final_accuracy:.2%}  "
          f"FedSZ {fedsz.final_accuracy:.2%}  "
          f"(difference {abs(raw.final_accuracy - fedsz.final_accuracy):.2%})")
    print(f"total upload:    uncompressed {format_bytes(raw.total_transmitted_bytes)}  "
          f"FedSZ {format_bytes(fedsz.total_transmitted_bytes)}  "
          f"({raw.total_transmitted_bytes / fedsz.total_transmitted_bytes:.2f}x reduction)")
    print(f"total comm time: uncompressed {format_seconds(raw.total_communication_seconds)}  "
          f"FedSZ {format_seconds(fedsz.total_communication_seconds)} at {args.bandwidth:g} Mbps")


if __name__ == "__main__":
    main()

"""Round scheduling: seeded scenario draws and the staleness admission policy.

The :class:`RoundScheduler` owns what used to be
``FederatedSimulation.plan_round``: the seeded, worker-independent draw of
which clients participate in a round, which of them drop out, and which
straggle.  Pulling it into a service makes the draw reusable by the
:class:`~repro.fl.coordinator.coordinator.Coordinator` and by journal replay
(a resumed round re-derives the identical plan from the scenario seed and
cross-checks it against the journaled one).

:class:`StalenessPolicy` decides whether an update that missed its round's
deadline may still be absorbed later — the asynchronous-straggler half of
ROADMAP open item 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundPlan", "RoundScheduler", "StalenessPolicy", "resolve_scenario_seed"]

#: Domain-separation constant mixed into every scenario draw (historic value —
#: changing it would silently re-draw every seeded experiment in the repo).
_SCENARIO_STREAM = 0x5CE9A210


def resolve_scenario_seed(seed: "int | None") -> int:
    """The scenario seed an explicit ``seed`` (or ``None``) resolves to.

    ``seed=None`` means "give me a different run every time": a fresh seed is
    drawn from OS entropy instead of silently pinning the scenario to seed 0.
    The drawn value is returned (and journaled by durable runs), so even an
    unseeded run is reproducible after the fact.
    """
    if seed is not None:
        return int(seed)
    return int(np.random.SeedSequence().entropy) % (2 ** 63)


@dataclass(frozen=True)
class RoundPlan:
    """One round's scenario draw: who participates, who never reports in."""

    round_index: int
    #: surviving participants (sorted client ids) — their updates are trained,
    #: shipped, and (unless late under a deadline) aggregated this round
    participants: tuple[int, ...]
    #: sampled clients that dropped out before reporting
    dropped: tuple[int, ...] = ()
    #: participants whose train/transfer time is straggler-inflated
    stragglers: tuple[int, ...] = ()

    def as_tuple(self) -> tuple[list[int], list[int], list[int]]:
        """The historic ``plan_round`` return shape (three lists)."""
        return list(self.participants), list(self.dropped), list(self.stragglers)


class RoundScheduler:
    """Seeded per-round scenario draws for a fleet of ``n_clients``.

    The draw depends only on the scenario seed, the scenario knobs, and the
    round index — never on worker counts, backends, or the wall clock — so a
    run is reproducible at any parallelism level and after a journal resume.
    """

    def __init__(self, n_clients: int, participation: "float | int" = 1.0,
                 dropout_prob: float = 0.0, straggler_prob: float = 0.0,
                 seed: int = 0) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if isinstance(participation, bool) or not isinstance(participation, (int, float)):
            raise ValueError("participation must be a fraction in (0, 1] or an int count")
        if isinstance(participation, int):
            if not 1 <= participation <= n_clients:
                raise ValueError(f"participation count must be in [1, {n_clients}], "
                                 f"got {participation}")
        elif not 0.0 < participation <= 1.0:
            raise ValueError(f"participation fraction must be in (0, 1], got {participation}")
        if not 0.0 <= dropout_prob <= 1.0:
            raise ValueError("dropout_prob must be in [0, 1]")
        if not 0.0 <= straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1]")
        self.n_clients = int(n_clients)
        self.participation = participation
        self.dropout_prob = float(dropout_prob)
        self.straggler_prob = float(straggler_prob)
        self.seed = int(seed)

    @property
    def full_participation(self) -> bool:
        """True when every round deterministically includes the whole fleet."""
        if self.dropout_prob or self.straggler_prob:
            return False
        # branch on type first: an int participation of 1 is a *count* of one
        # client, not the 1.0 full-participation fraction
        if isinstance(self.participation, int):
            return self.participation == self.n_clients
        return self.participation == 1.0

    def participation_count(self) -> int:
        """Number of clients sampled each round."""
        if isinstance(self.participation, int):
            return self.participation
        return max(1, round(self.participation * self.n_clients))

    def plan_round(self, round_index: int) -> RoundPlan:
        """Draw one round's scenario (participants, dropped, stragglers)."""
        n = self.n_clients
        if self.full_participation:
            return RoundPlan(round_index, tuple(range(n)))
        rng = np.random.default_rng([self.seed, _SCENARIO_STREAM, round_index])
        sampled = sorted(int(i) for i in rng.choice(n, size=self.participation_count(),
                                                    replace=False))
        dropped = [i for i in sampled
                   if self.dropout_prob and rng.random() < self.dropout_prob]
        survivors = [i for i in sampled if i not in dropped]
        stragglers = [i for i in survivors
                      if self.straggler_prob and rng.random() < self.straggler_prob]
        return RoundPlan(round_index, tuple(survivors), tuple(dropped),
                         tuple(stragglers))


@dataclass(frozen=True)
class StalenessPolicy:
    """Admission rule for updates that arrive after their round's deadline.

    A late update from round ``r`` may be absorbed into a later round ``r'``
    iff ``r' - r <= max_staleness``; anything older is rejected outright.  The
    default ``max_staleness=0`` admits a late update only into its own round —
    combined with a deadline it therefore *rejects* every late update, the
    conservative synchronous-FedAvg behaviour.
    """

    max_staleness: int = 0

    def __post_init__(self) -> None:
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")

    def admits(self, origin_round: int, current_round: int) -> bool:
        """May an update trained at ``origin_round`` join ``current_round``?"""
        if current_round < origin_round:
            raise ValueError(f"update from round {origin_round} cannot be admitted "
                             f"into earlier round {current_round}")
        return current_round - origin_round <= self.max_staleness

    def expired(self, origin_round: int, current_round: int) -> bool:
        """True when the update can never be admitted again (reject for good)."""
        return current_round - origin_round > self.max_staleness

"""Tests for the composite blocks and the im2col/col2im machinery."""

import numpy as np
import pytest

from repro.nn.blocks import Bottleneck, ConvBNReLU, InvertedResidual
from repro.nn.functional import col2im, conv_output_size, im2col, log_softmax, one_hot, softmax


def naive_conv2d(x, weight, bias, stride, padding):
    """Reference convolution implemented with explicit loops."""
    n, c, h, w = x.shape
    f, _, kh, kw = weight.shape
    h_out = (h + 2 * padding - kh) // stride + 1
    w_out = (w + 2 * padding - kw) // stride + 1
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, f, h_out, w_out))
    for ni in range(n):
        for fi in range(f):
            for i in range(h_out):
                for j in range(w_out):
                    patch = x_pad[ni, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[ni, fi, i, j] = (patch * weight[fi]).sum() + bias[fi]
    return out


class TestFunctional:
    def test_conv_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_im2col_matches_naive_convolution(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 6, 6))
        weight = rng.standard_normal((4, 3, 3, 3))
        bias = rng.standard_normal(4)
        cols = im2col(x, (3, 3), stride, padding)
        out = np.einsum("fk,nkl->nfl", weight.reshape(4, -1), cols)
        h_out = conv_output_size(6, 3, stride, padding)
        out = out.reshape(2, 4, h_out, h_out) + bias[None, :, None, None]
        np.testing.assert_allclose(out, naive_conv2d(x, weight, bias, stride, padding), rtol=1e-10)

    def test_col2im_adjoint_of_im2col(self, rng):
        # <im2col(x), y> == <x, col2im(y)> must hold for an operator and its adjoint
        x = rng.standard_normal((1, 2, 5, 5))
        y = rng.standard_normal((1, 2 * 3 * 3, 25))
        lhs = float((im2col(x, (3, 3), 1, 1) * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.standard_normal((5, 7)) * 50)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(probs >= 0)

    def test_log_softmax_consistent_with_softmax(self, rng):
        logits = rng.standard_normal((3, 4))
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits), rtol=1e-10)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3, dtype=np.float32)[[0, 2, 1]])


class TestConvBNReLU:
    def test_forward_shape_and_nonnegative(self, rng):
        block = ConvBNReLU(3, 8, kernel_size=3, stride=2, rng=rng)
        out = block(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 8, 4, 4)
        assert out.min() >= 0.0

    def test_relu6_variant_clipped(self, rng):
        block = ConvBNReLU(3, 4, kernel_size=1, relu6=True, rng=rng)
        out = block(rng.standard_normal((2, 3, 4, 4)).astype(np.float32) * 100)
        assert out.max() <= 6.0


class TestBottleneck:
    def test_identity_shortcut_shapes(self, rng):
        block = Bottleneck(16, 4, stride=1, rng=rng)  # out = 4*4 = 16 == in
        assert block.downsample is None
        x = rng.standard_normal((2, 16, 8, 8)).astype(np.float32)
        out = block(x)
        assert out.shape == x.shape
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_projection_shortcut_when_shapes_change(self, rng):
        block = Bottleneck(8, 8, stride=2, rng=rng)
        assert block.downsample is not None
        x = rng.standard_normal((2, 8, 8, 8)).astype(np.float32)
        out = block(x)
        assert out.shape == (2, 32, 4, 4)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_backward_populates_all_branch_gradients(self, rng):
        block = Bottleneck(8, 4, stride=2, rng=rng)
        x = rng.standard_normal((2, 8, 8, 8)).astype(np.float32)
        out = block(x)
        block.zero_grad()
        block.backward(np.ones_like(out))
        grads = [float(np.abs(p.grad).sum()) for _, p in block.named_parameters()]
        assert sum(g > 0 for g in grads) >= len(grads) * 0.7

    def test_residual_gradient_sums_branches(self, rng):
        # For an identity-shortcut block the input gradient must include the
        # pass-through term: with a zeroed residual branch it equals grad_out
        # exactly (after the output ReLU mask).
        block = Bottleneck(8, 2, stride=1, rng=rng)
        for _, param in block.conv3.named_parameters():
            param.data[:] = 0.0
        x = np.abs(rng.standard_normal((1, 8, 4, 4))).astype(np.float32) + 0.1
        out = block(x)
        grad = block.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, (out > 0).astype(float), atol=1e-6)


class TestInvertedResidual:
    def test_residual_used_only_when_shapes_match(self, rng):
        with_res = InvertedResidual(8, 8, stride=1, expand_ratio=2, rng=rng)
        without_res = InvertedResidual(8, 16, stride=1, expand_ratio=2, rng=rng)
        strided = InvertedResidual(8, 8, stride=2, expand_ratio=2, rng=rng)
        assert with_res.use_residual
        assert not without_res.use_residual
        assert not strided.use_residual

    def test_forward_backward_shapes(self, rng):
        block = InvertedResidual(8, 12, stride=2, expand_ratio=4, rng=rng)
        x = rng.standard_normal((2, 8, 8, 8)).astype(np.float32)
        out = block(x)
        assert out.shape == (2, 12, 4, 4)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_expand_ratio_one_skips_expansion(self, rng):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=1, rng=rng)
        # expansion disabled -> the block starts directly with the depthwise stage
        assert len(block.block) == 3

    def test_state_dict_contains_depthwise_and_bn(self, rng):
        block = InvertedResidual(4, 4, stride=1, expand_ratio=2, rng=rng)
        names = set(block.state_dict())
        assert any("running_mean" in n for n in names)
        assert any(n.endswith("weight") for n in names)

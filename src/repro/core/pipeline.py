"""The FedSZ compression/decompression pipeline (Figure 1 of the paper).

Client side (:meth:`FedSZCompressor.compress_state_dict`):

1. partition the ``state_dict`` into lossy and lossless tensors,
2. compress each lossy tensor with the configured EBLC (the per-tensor payload
   is self-describing: dtype, shape, absolute bound),
3. serialize the lossless partition into a single buffer and compress it with
   the configured lossless codec,
4. pack everything (plus a small manifest) into one bitstream.

Server side (:meth:`FedSZCompressor.decompress_state_dict`) reverses the steps
and returns a ``state_dict`` with the original tensor names, dtypes, and
shapes, ready for FedAvg aggregation.
"""

from __future__ import annotations

import struct
import time
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.compressors.base import LossyCompressor
from repro.compressors.lossless import LosslessCodec, get_lossless
from repro.compressors.registry import get_lossy
from repro.core.config import FedSZConfig
from repro.core.partition import PartitionedState, partition_state_dict
from repro.utils.serialization import pack_arrays, pack_bytes_dict, unpack_arrays, unpack_bytes_dict

__all__ = ["FedSZCompressor", "FedSZReport"]

#: bumped to 3 when the SZ2/SZ3 Huffman entropy stage switched to the chunked
#: version-3 bitstream (magic + CRC-32 + per-chunk index); version-2 streams
#: fail the version check instead of misparsing.  2 covered the SZ3 anchor
#: dtype flag, ZFP verbatim-block trailer, and SZx verbatim width escape.
_FORMAT_VERSION = 3
#: Lossy compressors whose payloads carry a Huffman entropy stage and
#: therefore accept the ``entropy_chunk``/``entropy_workers`` knobs.
_ENTROPY_CODED = ("sz2", "sz3")
#: Outer-bitstream keys owned by the format itself.  Tensor names may not
#: collide with them (or with the ``lossy::`` namespace prefix) — a state dict
#: using them is rejected at compression time instead of risking a bitstream
#: whose reserved entries are ambiguous to a decoder.
_RESERVED_KEYS = ("__manifest__", "__lossless__")
_LOSSY_PREFIX = "lossy::"


def lossy_kwargs_from_config(config: FedSZConfig) -> dict:
    """Factory kwargs for the configured lossy compressor.

    Merges ``lossy_options`` with the entropy-stage knobs for the compressors
    that have a Huffman stage (explicit ``lossy_options`` entries win).
    """
    kwargs = dict(config.lossy_options)
    if config.lossy_compressor in _ENTROPY_CODED:
        kwargs.setdefault("entropy_chunk", config.entropy_chunk)
        kwargs.setdefault("entropy_workers", config.entropy_workers)
    return kwargs


def _decode_or_valueerror(decode, payload: bytes, entry: str):
    """Run an inner-payload decoder, normalizing its failures to ValueError.

    The outer container is fully bounds-checked, but bytes corrupted *inside*
    an entry surface as whatever the backend raises (``zlib.error``,
    ``struct.error``, ``IndexError``, ...).  The documented contract is that a
    corrupt bitstream raises :class:`ValueError`, so everything else is
    wrapped.
    """
    try:
        return decode(payload)
    except ValueError:
        raise
    except Exception as exc:
        raise ValueError(f"corrupt FedSZ bitstream: entry {entry!r} failed to "
                         f"decode ({type(exc).__name__}: {exc})") from exc


def _check_tensor_names(state: dict) -> None:
    reserved = [name for name in state
                if name in _RESERVED_KEYS or name.startswith(_LOSSY_PREFIX)]
    if reserved:
        raise ValueError(
            f"tensor names {reserved!r} collide with reserved FedSZ bitstream keys "
            f"({', '.join(_RESERVED_KEYS)}, and the {_LOSSY_PREFIX!r} prefix); rename them")


@dataclass
class FedSZReport:
    """Per-update compression statistics (feeds Tables I and V and Figure 6)."""

    original_bytes: int
    compressed_bytes: int
    lossy_original_bytes: int
    lossy_compressed_bytes: int
    lossless_original_bytes: int
    lossless_compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float = 0.0

    @property
    def ratio(self) -> float:
        """Overall compression ratio of the client update."""
        return self.original_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")

    @property
    def lossy_ratio(self) -> float:
        """Compression ratio of the lossy partition alone."""
        if not self.lossy_compressed_bytes:
            return float("inf") if self.lossy_original_bytes else 1.0
        return self.lossy_original_bytes / self.lossy_compressed_bytes

    @property
    def lossless_ratio(self) -> float:
        """Compression ratio of the lossless partition alone."""
        if not self.lossless_compressed_bytes:
            return float("inf") if self.lossless_original_bytes else 1.0
        return self.lossless_original_bytes / self.lossless_compressed_bytes

    @property
    def throughput_mbps(self) -> float:
        """Compression throughput over the whole update (MB/s)."""
        if self.compress_seconds <= 0:
            return float("inf")
        return self.original_bytes / 1e6 / self.compress_seconds


class FedSZCompressor:
    """Compress and decompress model state dictionaries per the FedSZ scheme.

    Thread-safety: the bitstreams produced and consumed by a shared instance
    are deterministic under concurrent use (the round engine encodes several
    clients on a worker pool), but ``last_report`` is a single slot — after a
    parallel round it holds the statistics of one arbitrary client.  Read
    per-call statistics only from single-threaded contexts.
    """

    def __init__(self, config: FedSZConfig | None = None,
                 lossy: LossyCompressor | None = None,
                 lossless: LosslessCodec | None = None) -> None:
        self.config = config or FedSZConfig()
        self.lossy = lossy if lossy is not None else get_lossy(
            self.config.lossy_compressor,
            error_bound=self.config.error_bound,
            mode=self.config.error_mode,
            **lossy_kwargs_from_config(self.config),
        )
        self.lossless = lossless if lossless is not None else get_lossless(
            self.config.lossless_codec, **self.config.lossless_options)
        self.last_report: FedSZReport | None = None

    # ------------------------------------------------------------------
    def compress_state_dict(self, state: dict[str, np.ndarray]) -> bytes:
        """Compress a full state dict into a single FedSZ bitstream."""
        _check_tensor_names(state)
        start = time.perf_counter()
        partition = partition_state_dict(state, self.config)

        lossy_payloads: "OrderedDict[str, bytes]" = OrderedDict()
        for name, array in partition.lossy.items():
            lossy_payloads[name] = self.lossy.compress(array)

        lossless_raw = pack_arrays(dict(partition.lossless))
        lossless_payload = self.lossless.compress(lossless_raw)

        manifest = struct.pack("<IQ", _FORMAT_VERSION, len(state))
        bitstream = pack_bytes_dict({
            "__manifest__": manifest,
            "__lossless__": lossless_payload,
            **{f"lossy::{name}": payload for name, payload in lossy_payloads.items()},
        })
        elapsed = time.perf_counter() - start
        self.last_report = FedSZReport(
            original_bytes=partition.total_bytes,
            compressed_bytes=len(bitstream),
            lossy_original_bytes=partition.lossy_bytes,
            lossy_compressed_bytes=sum(len(p) for p in lossy_payloads.values()),
            lossless_original_bytes=partition.lossless_bytes,
            lossless_compressed_bytes=len(lossless_payload),
            compress_seconds=elapsed,
        )
        return bitstream

    # ------------------------------------------------------------------
    def decompress_state_dict(self, bitstream: bytes) -> "OrderedDict[str, np.ndarray]":
        """Reconstruct the state dict from a FedSZ bitstream."""
        start = time.perf_counter()
        entries = unpack_bytes_dict(bitstream)
        manifest = entries.pop("__manifest__", None)
        if manifest is None:
            raise ValueError("not a FedSZ bitstream: missing manifest")
        if len(manifest) != struct.calcsize("<IQ"):
            raise ValueError(f"corrupt FedSZ manifest: {len(manifest)} bytes")
        version, n_entries = struct.unpack("<IQ", manifest)
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported FedSZ bitstream version {version}")

        lossless_payload = entries.pop("__lossless__", b"")
        lossless_arrays = unpack_arrays(_decode_or_valueerror(
            self.lossless.decompress, lossless_payload, "__lossless__")) \
            if lossless_payload else {}

        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for key, payload in entries.items():
            if not key.startswith("lossy::"):
                raise ValueError(f"unexpected entry {key!r} in FedSZ bitstream")
            name = key[len("lossy::"):]
            state[name] = _decode_or_valueerror(self.lossy.decompress, payload, key)
        for name, array in lossless_arrays.items():
            state[name] = array
        if len(state) != n_entries:
            raise ValueError(f"corrupt FedSZ bitstream: manifest declares {n_entries} "
                             f"tensors but {len(state)} were decoded")
        elapsed = time.perf_counter() - start
        report = self.last_report
        if report is not None:
            # replace instead of mutating in place so a concurrent reader never
            # sees a half-updated report (see the thread-safety note above)
            self.last_report = replace(report, decompress_seconds=elapsed)
        return state

    # ------------------------------------------------------------------
    def roundtrip(self, state: dict[str, np.ndarray]) -> tuple["OrderedDict[str, np.ndarray]", FedSZReport]:
        """Compress then decompress ``state``; returns the reconstruction and report."""
        payload = self.compress_state_dict(state)
        recon = self.decompress_state_dict(payload)
        assert self.last_report is not None
        return recon, self.last_report

    def partition(self, state: dict[str, np.ndarray]) -> PartitionedState:
        """Expose the partitioning decision for inspection (Table III)."""
        return partition_state_dict(state, self.config)

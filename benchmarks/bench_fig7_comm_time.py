"""Figure 7: total communication time per model over different REL bounds at 10 Mbps.

Compresses each model's update with FedSZ at bounds 1e-5..1e-2, models the
transfer of the compressed bitstream over a 10 Mbps link, and compares against
shipping the uncompressed update.  Two quantities are reported:

* *network transfer time* — bytes over the link; this reproduces the paper's
  order-of-magnitude reduction directly (it only depends on the compression
  ratio), and
* *end-to-end time* — transfer plus the measured compress/decompress runtime of
  this reproduction's pure-Python compressors; it understates the paper's
  speedups (the C compressors are 10-30x faster per byte) but preserves the
  trend across error bounds.
"""

from __future__ import annotations

import numpy as np

from bench_utils import PAPER_MODELS, save_results, trained_like_state
from repro.core import FedSZCompressor, FedSZConfig, NetworkModel
from repro.fl import RawUpdateCodec
from repro.metrics import ExperimentRecord, Table, format_bound

BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2)
BANDWIDTH_MBPS = 10.0


def bench_fig7_comm_time(benchmark):
    network = NetworkModel(bandwidth_mbps=BANDWIDTH_MBPS)

    def run():
        rows = []
        for model_name in PAPER_MODELS:
            state = trained_like_state(model_name, seed=7)
            raw_bytes = len(RawUpdateCodec().encode(state))
            uncompressed_time = network.transfer_time(raw_bytes)
            rows.append({"model": model_name, "bound": None, "bytes": raw_bytes,
                         "transfer_s": uncompressed_time, "total_s": uncompressed_time,
                         "transfer_speedup": 1.0, "total_speedup": 1.0})
            for bound in BOUNDS:
                fedsz = FedSZCompressor(FedSZConfig(error_bound=bound))
                payload = fedsz.compress_state_dict(state)
                fedsz.decompress_state_dict(payload)
                report = fedsz.last_report
                transfer = network.transfer_time(len(payload))
                total = report.compress_seconds + report.decompress_seconds + transfer
                rows.append({"model": model_name, "bound": bound, "bytes": len(payload),
                             "transfer_s": transfer, "total_s": total,
                             "transfer_speedup": uncompressed_time / transfer,
                             "total_speedup": uncompressed_time / total})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(f"Figure 7 - communication time at {BANDWIDTH_MBPS:.0f} Mbps",
                  ["model", "REL bound", "payload bytes", "transfer time", "transfer speedup",
                   "end-to-end time (Python codecs)", "end-to-end speedup"])
    record = ExperimentRecord("fig7", "communication time vs error bound at 10 Mbps")
    for row in rows:
        bound_text = "uncompressed" if row["bound"] is None else format_bound(row["bound"])
        table.add_row(row["model"], bound_text, f"{row['bytes']:,}",
                      f"{row['transfer_s']:.2f}s", f"{row['transfer_speedup']:.2f}x",
                      f"{row['total_s']:.2f}s", f"{row['total_speedup']:.2f}x")
        record.add(**row)
    save_results("fig7_comm_time", table, record)

    # Paper findings, in shape: transfer time falls at every bound (by roughly
    # an order of magnitude at 1e-2 for the large models), and the end-to-end
    # speedup grows monotonically as the bound loosens.
    for model_name in PAPER_MODELS:
        model_rows = [r for r in rows if r["model"] == model_name and r["bound"] is not None]
        assert all(r["transfer_speedup"] > 1.0 for r in model_rows)
        at_1e2 = next(r for r in model_rows if r["bound"] == 1e-2)
        assert at_1e2["transfer_speedup"] > 4.0
        assert at_1e2["total_speedup"] > 1.5
        speedups = [r["total_speedup"] for r in model_rows]  # ordered 1e-5 .. 1e-2
        assert speedups[-1] == max(speedups)

"""Round-by-round federated simulation — the facade over the coordinator services.

:class:`FederatedSimulation` keeps the historic synchronous API (construct,
``plan_round``, ``run_round``, ``run``) and its bit-exact seeded outputs, but
the round engine itself now lives in :mod:`repro.fl.coordinator`:

* :class:`~repro.fl.coordinator.scheduler.RoundScheduler` owns the seeded
  scenario draws (participation sampling, dropouts, stragglers),
* :class:`~repro.fl.coordinator.transport.SimulatedTransport` owns the
  encode → transfer → decode pipeline (pooled over the execution backend, or
  asyncio-overlapped with ``overlap="async"`` where simulated delays become
  awaits and one thread holds every uplink in flight),
* :class:`~repro.fl.coordinator.aggregator.TreeAggregator` optionally replaces
  flat FedAvg with a hierarchical merge (``tree_fanout``), bit-identical at
  every fan-in,
* :class:`~repro.fl.coordinator.journal.RoundJournal` makes rounds durable
  (``journal_dir``): a run killed mid-round resumes (``resume=True``) and
  produces the same records as an uninterrupted run,
* :class:`~repro.fl.coordinator.scheduler.StalenessPolicy` governs updates
  that miss ``round_deadline_s`` (``max_staleness`` rounds of grace),
* and the :class:`~repro.fl.coordinator.coordinator.Coordinator` composes them.

Round-engine knobs (all default to the original strictly-sequential,
full-participation semantics, which the test suite pins bit-for-bit):

* ``max_workers`` / ``backend`` — client training and the per-client
  encode → transfer → decode pipeline fan out over an
  :class:`~repro.utils.parallel.ExecutionBackend` pool of this size
  (``serial`` / ``thread`` / ``process``); every backend/worker combination
  reproduces the sequential reference bit-for-bit.
* ``participation`` — clients sampled per round: a float in ``(0, 1]`` is a
  fraction of the fleet, an int ``> 1`` an absolute count.
* ``dropout_prob`` — probability that a sampled client is unavailable this
  round (its update never arrives and contributes no bytes).
* ``straggler_prob`` / ``straggler_slowdown`` — probability that a surviving
  client straggles, multiplying its reported training and transfer time.
* ``networks`` — optional per-client heterogeneous links; each client's codec
  is resolved against its own link through
  :meth:`~repro.fl.codec.UpdateCodec.for_network`.
* ``uplink`` — ``"serial"`` (shared uplink: round communication time is the
  sum) or ``"parallel"`` (independent links: the max).
* ``compute_factors`` — optional per-client device-speed factors (reported
  train time scaling only).
* ``tree_fanout`` — ``0`` for flat FedAvg (default); ``>= 2`` aggregates
  through a tree of that fan-in (bit-identical result).
* ``journal_dir`` / ``resume`` — durable rounds on disk; see FORMATS.md for
  the journal layout.
* ``round_deadline_s`` / ``max_staleness`` — late-update triage; the default
  (no deadline) changes nothing.
* ``overlap`` — ``"pool"`` (historic) or ``"async"`` (overlapped uplinks).
* ``streaming`` — decode each update through the codec's incremental stream
  decoder, fed on the link's analytic packet schedule so decompression
  overlaps the transfer (bit-identical outputs; per-client overlap is
  reported on ``ShipResult.decode_overlap_seconds``).
* ``streaming_encode`` — encode each update through the codec's incremental
  stream encoder and start the simulated transfer at the first ready payload
  piece, so compression overlaps the transfer window (bit-identical outputs;
  per-client hidden encode time is reported on
  ``ShipResult.encode_overlap_seconds``, and the round record carries the
  fleet's mean first-byte-out latency and peak encode scratch).
* ``aggregate_on_arrival`` — fold each decoded update into the running
  compensated aggregate as its ship completes instead of holding every state
  until the round ends; bit-identical to batch aggregation (same weights,
  same fold order), with server-side peak update residency bounded by the
  transport's concurrency instead of the round's fan-in.  Rounds with a
  ``round_deadline_s`` degrade to batch-at-end (membership is not known
  until every modeled transfer time is).
* ``persistent`` — ``True`` (default) backs :meth:`run` with one long-lived
  worker pool for the whole run and, on pickling backends, worker-resident
  client shards (train tasks ship O(model state), not O(dataset shard));
  ``False`` restores the historic fresh-pool-per-map path.  Bit-identical
  either way.
* ``delta`` — wrap every client codec in the v5 error-feedback delta codec
  (:class:`~repro.fl.delta.DeltaUpdateCodec`): from each client's second
  consecutive participation onward it ships the residual against the
  current broadcast state instead of the full state, with per-client error
  feedback keeping the reconstruction inside the configured bound.  Clients
  without a valid reference (first round, after a dropout or late ship,
  after a roster change, after a lost resume sidecar) degrade to a
  full-state frame — visible per round on ``RoundRecord.delta_degrades``.
* ``delta_codebooks`` — with ``delta``, additionally reuse each tensor's
  canonical Huffman code table across rounds while its symbol distribution
  stays within the drift threshold (``False`` is the ablation: delta
  framing and error feedback stay on, every encode builds fresh tables).

``seed=None`` now draws one fresh scenario seed and derives *everything*
(partitioning, client seeds, scenario draws) from it, so even an unseeded run
is internally consistent — and reproducible after the fact when journaled.
"""

from __future__ import annotations

import copy
from typing import Sequence

from repro.core.network import UPLINK_MODES, NetworkModel
from repro.data.datasets import Dataset
from repro.data.partition import partition_dataset
from repro.fl.client import FLClient
from repro.fl.codec import FedSZUpdateCodec, RawUpdateCodec, UpdateCodec
from repro.fl.coordinator.aggregator import TreeAggregator
from repro.fl.coordinator.coordinator import (OVERLAP_MODES, Coordinator,
                                              _train_client_task,
                                              train_clients_parallel)
from repro.fl.coordinator.journal import RoundJournal
from repro.fl.coordinator.records import RoundRecord, SimulationResult
from repro.fl.coordinator.scheduler import (RoundScheduler, StalenessPolicy,
                                            resolve_scenario_seed)
from repro.fl.coordinator.transport import (ShipResult, ShipTask,
                                            SimulatedTransport,
                                            ship_update_task)
from repro.fl.delta import DeltaUpdateCodec
from repro.fl.server import FedAvgServer
from repro.nn.module import Module
from repro.utils.parallel import ExecutionBackend, get_backend

__all__ = ["RoundRecord", "SimulationResult", "FederatedSimulation",
           "train_clients_parallel"]

# historic private names, kept as aliases for any code that reached in
# (_train_client_task is imported above under its historic name)
_ShipTask = ShipTask
_ShipResult = ShipResult
_ship_update_task = ship_update_task


def _delta_client_codec(codec: UpdateCodec, use_codebooks: bool) -> DeltaUpdateCodec:
    """One client's delta wrapper around a *private* inner codec.

    The delta codec arms per-ship state (reference, accumulator, codebook
    channels) onto its inner compressor, so clients cannot share an inner
    instance the way link-agnostic codecs otherwise do.  FedSZ inners keep
    sharing the plan policy (and through it the profiler cache) — only the
    compressor shell is per-client.
    """
    if isinstance(codec, FedSZUpdateCodec):
        inner: UpdateCodec = FedSZUpdateCodec(codec.config,
                                              policy=codec.compressor.policy)
    elif isinstance(codec, RawUpdateCodec):
        inner = RawUpdateCodec()
    else:
        inner = copy.deepcopy(codec)
    return DeltaUpdateCodec(inner, use_codebooks=use_codebooks)


class FederatedSimulation:
    """FedAvg over simulated clients with a configurable update codec."""

    def __init__(self, model_factory, train_dataset: Dataset, test_dataset: Dataset,
                 n_clients: int = 4, codec: UpdateCodec | None = None,
                 network: NetworkModel | None = None, partition_scheme: str = "iid",
                 dirichlet_alpha: float = 0.5, local_epochs: int = 1,
                 batch_size: int = 32, lr: float = 0.05, momentum: float = 0.9,
                 seed: int | None = 0, max_workers: int | None = 1,
                 participation: float | int = 1.0, dropout_prob: float = 0.0,
                 straggler_prob: float = 0.0, straggler_slowdown: float = 4.0,
                 networks: Sequence[NetworkModel] | None = None,
                 uplink: str = "serial",
                 compute_factors: Sequence[float] | None = None,
                 backend: "str | ExecutionBackend" = "thread",
                 tree_fanout: int = 0,
                 journal_dir=None, resume: bool = False,
                 round_deadline_s: float | None = None,
                 max_staleness: int = 0, overlap: str = "pool",
                 streaming: bool = False, streaming_encode: bool = False,
                 aggregate_on_arrival: bool = False,
                 persistent: bool = True, delta: bool = False,
                 delta_codebooks: bool = True) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.backend = get_backend(backend)  # unknown names raise ValueError
        if uplink not in UPLINK_MODES:
            raise ValueError(f"uplink must be one of {UPLINK_MODES}, got {uplink!r}")
        if overlap not in OVERLAP_MODES:
            raise ValueError(f"overlap must be one of {OVERLAP_MODES}, got {overlap!r}")
        if tree_fanout and tree_fanout < 2:
            raise ValueError(f"tree_fanout must be 0 (flat) or >= 2, got {tree_fanout}")
        if resume and journal_dir is None:
            raise ValueError("resume=True requires journal_dir")
        # the scheduler carries the scenario validation (identical messages to
        # the historic inline checks); the seed is patched in below once known
        scheduler_probe = RoundScheduler(n_clients, participation, dropout_prob,
                                         straggler_prob, seed=0)
        if straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1.0")
        if networks is not None and len(networks) != n_clients:
            raise ValueError(f"networks must have one entry per client ({n_clients}), got {len(networks)}")
        if compute_factors is not None and len(compute_factors) != n_clients:
            raise ValueError(f"compute_factors must have one entry per client ({n_clients})")

        self.model_factory = model_factory
        self.codec = codec or RawUpdateCodec()
        self.network = network or NetworkModel(bandwidth_mbps=10.0)
        self.local_epochs = int(local_epochs)
        self.test_dataset = test_dataset
        self.max_workers = max_workers
        self.participation = participation
        self.dropout_prob = float(dropout_prob)
        self.straggler_prob = float(straggler_prob)
        self.straggler_slowdown = float(straggler_slowdown)
        self.uplink = uplink
        self.client_networks = list(networks) if networks is not None \
            else [self.network] * n_clients
        # one codec per client, resolved against that client's uplink: a no-op
        # for link-agnostic codecs (for_network returns the shared instance),
        # per-link plan policies for the bandwidth-aware ones
        self.client_codecs = [self.codec.for_network(net)
                              for net in self.client_networks]
        self.delta = bool(delta)
        if self.delta:
            self.client_codecs = [_delta_client_codec(c, delta_codebooks)
                                  for c in self.client_codecs]

        # durable rounds: open (or reopen) the journal before anything seeded
        # happens, because a resumed run takes its scenario seed from the
        # journal — including runs originally launched with seed=None
        self.journal = RoundJournal(journal_dir, resume=resume) \
            if journal_dir is not None else None
        journal_state = self.journal.load() if resume else None
        if journal_state is not None and seed is not None \
                and int(seed) != journal_state.scenario_seed:
            raise ValueError(f"journal scenario seed {journal_state.scenario_seed} "
                             f"does not match this run's seed {seed}")
        self._scenario_seed = journal_state.scenario_seed \
            if journal_state is not None else resolve_scenario_seed(seed)

        self.scheduler = scheduler_probe
        self.scheduler.seed = self._scenario_seed

        # every seeded quantity derives from the one scenario seed: with an
        # explicit seed this reproduces the historic behaviour exactly, and
        # with seed=None the partition and the per-client seeds now follow the
        # drawn scenario seed instead of silently pinning to seed 0
        shards = partition_dataset(train_dataset, n_clients, scheme=partition_scheme,
                                   alpha=dirichlet_alpha, seed=self._scenario_seed)
        factors = list(compute_factors) if compute_factors is not None else [1.0] * n_clients
        self.clients = [
            FLClient(client_id=i, model=model_factory(), dataset=shard,
                     batch_size=batch_size, lr=lr, momentum=momentum,
                     seed=self._scenario_seed + i,
                     compute_factor=factors[i])
            for i, shard in enumerate(shards)
        ]
        global_model: Module = model_factory()
        aggregator = TreeAggregator(fan_in=tree_fanout) if tree_fanout else None
        self.server = FedAvgServer(global_model, test_dataset, aggregator=aggregator)

        self.transport = SimulatedTransport(backend=self.backend,
                                            max_workers=max_workers,
                                            streaming=streaming,
                                            streaming_encode=streaming_encode)
        self.coordinator = Coordinator(
            clients=self.clients, server=self.server, scheduler=self.scheduler,
            transport=self.transport, client_codecs=self.client_codecs,
            client_networks=self.client_networks,
            codec_name=f"delta+{self.codec.name}" if self.delta else self.codec.name,
            local_epochs=self.local_epochs,
            straggler_slowdown=self.straggler_slowdown, uplink=uplink,
            backend=self.backend, max_workers=max_workers, overlap=overlap,
            round_deadline_s=round_deadline_s,
            staleness=StalenessPolicy(max_staleness=max_staleness),
            journal=self.journal, journal_state=journal_state,
            persistent=persistent, aggregate_on_arrival=aggregate_on_arrival)

    # ------------------------------------------------------------------
    @property
    def _full_participation(self) -> bool:
        return self.scheduler.full_participation

    def _participation_count(self) -> int:
        return self.scheduler.participation_count()

    def plan_round(self, round_index: int) -> tuple[list[int], list[int], list[int]]:
        """Seeded scenario draw for one round: (participants, dropped, stragglers).

        Delegates to the :class:`RoundScheduler`; the historic three-list
        return shape is preserved.
        """
        return self.scheduler.plan_round(round_index).as_tuple()

    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one communication round and return its measurements."""
        return self.coordinator.run_round(round_index)

    def run(self, n_rounds: int = 10) -> SimulationResult:
        """Run ``n_rounds`` communication rounds and collect the records.

        When resuming from a journal, already-completed rounds replay from
        disk and only the remainder executes live — the combined result is
        identical on every deterministic field to an uninterrupted run.
        """
        return self.coordinator.run(n_rounds)


def make_fedsz_simulation(model_factory, train_dataset: Dataset, test_dataset: Dataset,
                          error_bound: float = 1e-2, **kwargs) -> FederatedSimulation:
    """Convenience constructor wiring a FedSZ codec at the given error bound."""
    from repro.core.config import FedSZConfig

    codec = FedSZUpdateCodec(FedSZConfig(error_bound=error_bound))
    return FederatedSimulation(model_factory, train_dataset, test_dataset, codec=codec, **kwargs)

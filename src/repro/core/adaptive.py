"""Per-tensor adaptive error bounds (the paper's first future-work direction).

Section VIII-B proposes tuning the compression hyper-parameters to mitigate the
accuracy loss compression introduces.  A single global relative bound treats a
16-element BatchNorm-adjacent projection and a million-element FC layer the
same way, even though a perturbation of the former moves the network's output
far more per element.  :class:`AdaptiveBoundPolicy` (defined in
:mod:`repro.core.plan` and re-exported here) assigns every lossy tensor its own
relative bound:

* tensors are ranked by their share of the parameter count: the largest tensor
  keeps the base bound and smaller tensors get bounds shrunk by
  ``(size / largest_size) ** size_exponent``, so small, high-leverage tensors
  are perturbed least,
* bounds are clamped to ``[min_bound, base_bound]`` so no tensor is ever
  compressed more aggressively than the user's requested operating point.

:class:`AdaptiveFedSZCompressor` is now a thin convenience wrapper: the bound
math lives in the ``size-adaptive`` plan policy and the standard plan-driven
pipeline applies it per tensor, so the bitstream is an ordinary version-4
stream (self-describing, order-independent) and the old order-dependent
dispatching shim is gone.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.config import FedSZConfig
from repro.core.pipeline import FedSZCompressor
from repro.core.plan import AdaptiveBoundPolicy, SizeAdaptivePolicy

__all__ = ["AdaptiveBoundPolicy", "AdaptiveFedSZCompressor"]


class AdaptiveFedSZCompressor(FedSZCompressor):
    """FedSZ pipeline that compresses each lossy tensor with its own bound.

    Equivalent to ``FedSZCompressor(config, policy=SizeAdaptivePolicy(...))``;
    kept as a named class for discoverability and for the ``last_bounds``
    convenience mapping (per-tensor bound values of the most recent compress).
    """

    def __init__(self, config: FedSZConfig | None = None,
                 policy: AdaptiveBoundPolicy | None = None) -> None:
        config = config or FedSZConfig()
        self.bound_policy = policy or AdaptiveBoundPolicy(base_bound=config.error_bound)
        super().__init__(config, policy=SizeAdaptivePolicy(
            base_bound=self.bound_policy.base_bound,
            min_bound=self.bound_policy.min_bound,
            size_exponent=self.bound_policy.size_exponent))
        self.last_bounds: "OrderedDict[str, float]" = OrderedDict()

    def compress_with_report(self, state):
        bitstream, report = super().compress_with_report(state)
        assert self.last_plan is not None
        self.last_bounds = self.last_plan.bounds()
        return bitstream, report

"""Tests for the chunked canonical Huffman coder (bitstream version 3)."""

import struct
import zlib

import numpy as np
import pytest

from repro.compressors.huffman import (
    DEFAULT_CHUNK_SYMBOLS,
    MAX_CODE_LENGTH,
    HuffmanCoder,
)

_HEADER = struct.Struct("<IQII")
_PREFIX_LEN = 8


def _parse_header(payload: bytes):
    """(alphabet, count, chunk_size, n_chunks, index array) of a v3 payload."""
    alphabet, count, chunk_size, n_chunks = _HEADER.unpack_from(payload, _PREFIX_LEN)
    index = np.frombuffer(payload, dtype="<u8", count=2 * n_chunks,
                          offset=_PREFIX_LEN + _HEADER.size + alphabet).reshape(n_chunks, 2)
    return alphabet, count, chunk_size, n_chunks, index


def _refresh_crc(payload: bytes) -> bytes:
    """Recompute the CRC field so structural checks behind it are reachable."""
    return payload[:4] + struct.pack("<I", zlib.crc32(payload[8:])) + payload[8:]


@pytest.fixture
def coder() -> HuffmanCoder:
    return HuffmanCoder()


class TestRoundtrip:
    def test_simple_sequence(self, coder):
        symbols = np.array([0, 1, 1, 2, 2, 2, 3, 3, 3, 3], dtype=np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_single_symbol_alphabet(self, coder):
        symbols = np.full(1000, 7, dtype=np.int64)
        decoded = coder.decode(coder.encode(symbols))
        np.testing.assert_array_equal(decoded, symbols)

    def test_two_symbols(self, coder):
        symbols = np.array([0, 1] * 50, dtype=np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_empty_input(self, coder):
        out = coder.decode(coder.encode(np.array([], dtype=np.int64)))
        assert out.size == 0

    def test_skewed_distribution(self, coder):
        rng = np.random.default_rng(0)
        symbols = rng.geometric(0.3, size=5000) - 1
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_uniform_large_alphabet(self, coder):
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 500, size=3000)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_quantization_like_stream(self, coder):
        # the typical SZ stream: one dominant central symbol, a spread around it
        rng = np.random.default_rng(2)
        symbols = np.clip(np.rint(rng.normal(1000, 3, size=20000)), 0, 2000).astype(np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_sparse_alphabet_with_gaps(self, coder):
        symbols = np.array([0, 1000, 0, 1000, 5, 0, 1000], dtype=np.int64)
        np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_various_integer_dtypes(self, coder):
        for dtype in (np.int16, np.int32, np.uint16, np.int64):
            symbols = np.arange(50, dtype=dtype)
            np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols.astype(np.int64))


class TestCompression:
    def test_skewed_data_compresses_well(self, coder):
        rng = np.random.default_rng(3)
        symbols = np.where(rng.random(50_000) < 0.95, 10, rng.integers(0, 20, 50_000))
        encoded = coder.encode(symbols)
        # ~0.5 bits/symbol entropy; int64 raw would be 400 KB
        assert len(encoded) < 50_000 * 2 / 8 + 1000

    def test_negative_symbols_rejected(self, coder):
        with pytest.raises(ValueError):
            coder.encode(np.array([1, -2, 3]))

    def test_code_lengths_bounded(self, coder):
        # extremely skewed frequencies would build very deep trees without clamping
        rng = np.random.default_rng(4)
        counts = (2 ** np.arange(24)).astype(np.int64)
        symbols = np.repeat(np.arange(24), np.minimum(counts, 5000))
        rng.shuffle(symbols)
        decoded = coder.decode(coder.encode(symbols))
        np.testing.assert_array_equal(np.sort(decoded), np.sort(symbols))

    def test_decode_with_table_alias(self, coder):
        symbols = np.array([1, 2, 3, 1, 2, 1], dtype=np.int64)
        payload = coder.encode(symbols)
        np.testing.assert_array_equal(coder.decode_with_table(payload), symbols)

    def test_max_code_length_constant(self):
        assert 8 <= MAX_CODE_LENGTH <= 24


def _distributions() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(11)
    return {
        "quantizer-like": np.clip(np.rint(rng.normal(500, 3, size=30_000)),
                                  0, 1000).astype(np.int64),
        "uniform": rng.integers(0, 200, size=20_000),
        "single-symbol": np.full(20_000, 7, dtype=np.int64),
        "two-symbols": np.tile([0, 1], 10_000).astype(np.int64),
        "sparse-gaps": rng.choice([0, 5, 1000, 4097], size=20_000),
    }


class TestChunkedFormat:
    def test_header_records_consistent_chunk_index(self):
        symbols = np.arange(50_000, dtype=np.int64) % 37
        payload = HuffmanCoder(chunk_size=1024).encode(symbols)
        alphabet, count, chunk_size, n_chunks, index = _parse_header(payload)
        assert (alphabet, count, chunk_size) == (37, 50_000, 1024)
        assert n_chunks == -(-50_000 // 1024)
        offsets, counts = index[:, 0].astype(np.int64), index[:, 1].astype(np.int64)
        assert offsets[0] == 0
        assert np.all(np.diff(offsets) > 0)
        assert counts.sum() == 50_000
        assert np.all(counts[:-1] == 1024)

    def test_small_streams_get_smaller_chunks(self):
        # a 64Ki-symbol stream must not end up as a single 64Ki chunk: the
        # encoder shrinks chunks so the decoder has parallelism to work with
        payload = HuffmanCoder().encode(np.zeros(1 << 16, dtype=np.int64))
        *_, n_chunks, _ = _parse_header(payload)
        assert n_chunks > 8

    def test_configured_chunk_size_is_a_cap(self):
        payload = HuffmanCoder(chunk_size=512).encode(np.zeros(100_000, dtype=np.int64))
        _, _, chunk_size, _, _ = _parse_header(payload)
        assert chunk_size == 512

    @pytest.mark.parametrize("name", sorted(_distributions()))
    def test_parallel_decode_bit_identical_to_reference(self, name):
        symbols = _distributions()[name]
        coder = HuffmanCoder(chunk_size=1024)
        payload = coder.encode(symbols)
        reference = coder.decode(payload, max_workers=1)
        parallel = coder.decode(payload, max_workers=4)
        np.testing.assert_array_equal(reference, symbols)
        np.testing.assert_array_equal(parallel, reference)

    def test_instance_worker_default_used(self):
        symbols = np.arange(30_000, dtype=np.int64) % 11
        sequential = HuffmanCoder(chunk_size=1024, max_workers=1)
        threaded = HuffmanCoder(chunk_size=1024, max_workers=4)
        payload = sequential.encode(symbols)
        assert payload == threaded.encode(symbols)  # encoding is worker-independent
        np.testing.assert_array_equal(threaded.decode(payload), symbols)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCoder(chunk_size=0)
        with pytest.raises(ValueError):
            HuffmanCoder(max_workers=0)

    def test_default_chunk_constant_sane(self):
        assert 1024 <= DEFAULT_CHUNK_SYMBOLS <= (1 << 20)


@pytest.fixture
def chunked_payload() -> tuple[np.ndarray, bytes]:
    rng = np.random.default_rng(5)
    symbols = np.clip(np.rint(rng.normal(40, 4, size=4000)), 0, 80).astype(np.int64)
    return symbols, HuffmanCoder(chunk_size=256).encode(symbols)


class TestCorruption:
    """Any corrupted or truncated payload must raise ValueError — never
    struct.error / IndexError, and never silently return wrong symbols."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_truncation_at_every_boundary_raises(self, workers, chunked_payload):
        _, payload = chunked_payload
        coder = HuffmanCoder()
        for cut in range(len(payload)):
            with pytest.raises(ValueError):
                coder.decode(payload[:cut], max_workers=workers)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_bitflip_fuzz_every_byte(self, workers, chunked_payload):
        symbols, payload = chunked_payload
        coder = HuffmanCoder()
        for i in range(len(payload)):
            mutated = bytearray(payload)
            mutated[i] ^= 1 << (i % 8)
            try:
                decoded = coder.decode(bytes(mutated), max_workers=workers)
            except ValueError:
                continue
            np.testing.assert_array_equal(decoded, symbols)

    def test_bad_magic_rejected(self, coder, chunked_payload):
        _, payload = chunked_payload
        with pytest.raises(ValueError, match="magic"):
            coder.decode(b"XXXX" + payload[4:])

    def test_crc_mismatch_rejected(self, coder, chunked_payload):
        _, payload = chunked_payload
        mutated = bytearray(payload)
        mutated[-1] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            coder.decode(bytes(mutated))

    @pytest.mark.parametrize("workers", [1, 4])
    def test_unused_window_detected(self, workers, coder):
        # single-symbol alphabet: the upper half of the window table is unused
        # (length 0); forcing a set bit into the stream must not silently
        # decode to symbol 0 with the cursor never advancing
        payload = bytearray(coder.encode(np.full(20_000, 3, dtype=np.int64)))
        payload[-4] |= 0x80
        with pytest.raises(ValueError, match="corrupt Huffman stream"):
            coder.decode(bytes(_refresh_crc(bytes(payload))), max_workers=workers)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_chunk_boundary_mismatch_detected(self, workers, chunked_payload):
        # shift the second chunk's recorded bit offset by one: both its chunk
        # and its predecessor now fail the decode-to-boundary check
        _, payload = chunked_payload
        alphabet, *_ = _parse_header(payload)
        entry = _PREFIX_LEN + _HEADER.size + alphabet + 16
        (offset,) = struct.unpack_from("<Q", payload, entry)
        mutated = bytearray(payload)
        mutated[entry:entry + 8] = struct.pack("<Q", offset + 1)
        with pytest.raises(ValueError, match="corrupt Huffman stream"):
            HuffmanCoder().decode(_refresh_crc(bytes(mutated)), max_workers=workers)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_trailing_bits_detected(self, workers):
        # declare 8 extra bits (and ship the extra byte): the final chunk no
        # longer ends exactly at total_bits, which the old `pos > total_bits`
        # check would have missed
        symbols = np.full(20_000, 3, dtype=np.int64)
        payload = HuffmanCoder(chunk_size=1024).encode(symbols)
        alphabet, _, _, n_chunks, _ = _parse_header(payload)
        at = _PREFIX_LEN + _HEADER.size + alphabet + 16 * n_chunks
        (total_bits,) = struct.unpack_from("<Q", payload, at)
        mutated = payload[:at] + struct.pack("<Q", total_bits + 8) + \
            payload[at + 8:] + b"\x00"
        with pytest.raises(ValueError, match="boundary"):
            HuffmanCoder().decode(_refresh_crc(mutated), max_workers=workers)

    def test_overstated_symbol_count_rejected(self, chunked_payload):
        _, payload = chunked_payload
        mutated = bytearray(payload)
        mutated[_PREFIX_LEN + 4:_PREFIX_LEN + 12] = struct.pack("<Q", 2 ** 40)
        with pytest.raises(ValueError, match="corrupt Huffman stream"):
            HuffmanCoder().decode(_refresh_crc(bytes(mutated)))

    def test_kraft_violating_length_table_rejected(self, coder):
        # three one-bit codes cannot coexist; the table build must refuse
        symbols = np.array([0, 1, 2] * 100, dtype=np.int64)
        payload = bytearray(coder.encode(symbols))
        lengths_at = _PREFIX_LEN + _HEADER.size
        payload[lengths_at:lengths_at + 3] = bytes([1, 1, 1])
        with pytest.raises(ValueError, match="corrupt Huffman stream"):
            coder.decode(_refresh_crc(bytes(payload)))

"""Synthetic datasets, federated partitioning, and batching.

Network access is unavailable offline, so the three image-classification
datasets the paper trains on (CIFAR-10, Fashion-MNIST, Caltech101) are replaced
by synthetic class-conditional generators with matching shapes and class counts
(Table IV).  The generators produce learnable structure (class-specific spatial
templates plus noise) so federated training actually converges, which is what
the accuracy experiments require.
"""

from repro.data.datasets import (
    Dataset,
    DatasetSpec,
    available_datasets,
    dataset_spec,
    make_dataset,
)
from repro.data.loader import BatchLoader, train_test_split
from repro.data.partition import dirichlet_partition, iid_partition, partition_dataset
from repro.data.scientific import miranda_like_field, spikiness, weight_like_signal

__all__ = [
    "Dataset",
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "make_dataset",
    "BatchLoader",
    "train_test_split",
    "iid_partition",
    "dirichlet_partition",
    "partition_dataset",
    "miranda_like_field",
    "weight_like_signal",
    "spikiness",
]

"""Thread-pool execution of client training within a round.

The paper's APPFL deployment runs clients as MPI ranks; this module provides
the equivalent intra-round parallelism for the in-process simulator.  NumPy
releases the GIL inside its BLAS kernels, so training several clients in
threads overlaps most of the heavy matrix work without any extra process or
serialization machinery.

The helper operates on plain callables so it composes with
:class:`~repro.fl.simulation.FederatedSimulation` (sequential by default) and
with custom training loops alike.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.fl.client import ClientUpdate, FLClient

__all__ = ["train_clients_parallel", "map_parallel"]

T = TypeVar("T")
R = TypeVar("R")


def map_parallel(func: Callable[[T], R], items: Sequence[T], max_workers: int | None = None) -> list[R]:
    """Apply ``func`` to every item using a thread pool, preserving order.

    With ``max_workers=1`` (or a single item) the call degenerates to a plain
    sequential map, which keeps the behaviour deterministic for tests.
    """
    items = list(items)
    if not items:
        return []
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    if max_workers == 1 or len(items) == 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(func, items))


def train_clients_parallel(clients: Sequence[FLClient], global_state: dict,
                           epochs: int = 1, max_workers: int | None = None) -> list[ClientUpdate]:
    """Broadcast ``global_state`` to every client and train them concurrently.

    Returns the per-client :class:`ClientUpdate` objects in client order, ready
    for FedAvg aggregation.  Each client owns a private model replica, so the
    only shared state between threads is the read-only global state dict.
    """
    for client in clients:
        client.receive_global(global_state)

    def _train(client: FLClient) -> ClientUpdate:
        return client.train_local(epochs=epochs)

    return map_parallel(_train, clients, max_workers=max_workers)

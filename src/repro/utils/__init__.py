"""Low-level utilities shared by the FedSZ reproduction.

The subpackage provides bit-level I/O (:mod:`repro.utils.bitstream`), wall-clock
timing helpers (:mod:`repro.utils.timer`), deterministic RNG construction
(:mod:`repro.utils.rng`), and small serialization helpers used by the
compression pipeline (:mod:`repro.utils.serialization`).
"""

from repro.utils.bitstream import BitReader, BitWriter
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.serialization import (
    pack_arrays,
    pack_bytes_dict,
    unpack_arrays,
    unpack_bytes_dict,
)
from repro.utils.timer import Timer, format_bytes, format_seconds

__all__ = [
    "BitReader",
    "BitWriter",
    "Timer",
    "format_bytes",
    "format_seconds",
    "make_rng",
    "spawn_rngs",
    "pack_arrays",
    "unpack_arrays",
    "pack_bytes_dict",
    "unpack_bytes_dict",
]

"""Tests for timers, formatting helpers, and RNG construction."""

import time

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timer import Timer, format_bytes, format_seconds


class TestTimer:
    def test_accumulates_elapsed_time(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.018
        assert len(timer.laps) == 2
        assert timer.mean_lap == pytest.approx(timer.elapsed / 2)

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []

    def test_mean_lap_empty(self):
        assert Timer().mean_lap == 0.0


class TestFormatting:
    @pytest.mark.parametrize("value,expected_unit", [
        (100, "B"), (2048, "KB"), (5 * 1024**2, "MB"), (3 * 1024**3, "GB"),
    ])
    def test_format_bytes_units(self, value, expected_unit):
        assert expected_unit in format_bytes(value)

    @pytest.mark.parametrize("value,expected_unit", [
        (5e-5, "us"), (0.02, "ms"), (3.0, "s"), (300.0, "min"),
    ])
    def test_format_seconds_units(self, value, expected_unit):
        out = format_seconds(value)
        assert out.endswith(expected_unit)


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(5).standard_normal(10)
        b = make_rng(5).standard_normal(10)
        np.testing.assert_array_equal(a, b)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.standard_normal(100) for r in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_rngs_reproducible(self):
        a = [r.standard_normal(5) for r in spawn_rngs(42, 2)]
        b = [r.standard_normal(5) for r in spawn_rngs(42, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

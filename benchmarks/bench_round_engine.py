"""Round-engine concurrency: parallel workers vs the sequential reference.

An 8-client FedAvg round over a simulated 2 Mbps uplink (``simulate_delay=True``,
the paper's MPI-delay-injection methodology) is executed sequentially
(``max_workers=1``) and with a 4-worker pool on the selected execution backend
(``--backend serial|thread|process``).  The parallel engine must be measurably
faster in wall clock — the injected per-client transfer delays overlap across
workers, and on multicore hosts the BLAS-heavy training does too — while
reproducing the sequential accuracies and byte counts bit-for-bit on every
backend.

Two entry points:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_round_engine.py -o
  python_files="bench_*.py" -o python_functions="bench_*"`` — the historic
  pytest-benchmark harness (thread backend, persists results),
* ``PYTHONPATH=src python benchmarks/bench_round_engine.py [--backend process]
  [--smoke]`` — direct CLI; ``--smoke`` is the correctness-only CI drill that
  exercises the backend's picklability contract end-to-end without timing
  assertions or clobbering committed results.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import fl_settings, quick_fl_data, save_results
from repro.core import NetworkModel
from repro.fl import FederatedSimulation, RawUpdateCodec
from repro.fl.coordinator.coordinator import TrainTask
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model
from repro.utils.parallel import SharedMemoryArena, get_backend

N_CLIENTS = 8
WORKERS = 4
ROUNDS = 2
BANDWIDTH_MBPS = 2.0


def _build_simulation(train, test, cfg, max_workers: int,
                      backend: str = "thread",
                      persistent: bool = True) -> FederatedSimulation:
    def factory():
        return build_model(cfg["model"], num_classes=10, in_channels=3,
                           image_size=cfg["image_size"], seed=0)

    network = NetworkModel(bandwidth_mbps=BANDWIDTH_MBPS, simulate_delay=True)
    return FederatedSimulation(factory, train, test, n_clients=N_CLIENTS,
                               codec=RawUpdateCodec(), network=network,
                               batch_size=cfg["batch_size"], lr=cfg["lr"], seed=11,
                               max_workers=max_workers, uplink="parallel",
                               backend=backend, persistent=persistent)


def _pickled_task_bytes(sim: FederatedSimulation) -> "tuple[int, int]":
    """Per-client train-task pickle size: full-ship vs worker-resident form.

    The full-ship task carries the client (dataset shard included) and the
    broadcast state inline — O(shard) per client per round on a pickling
    backend.  The resident task carries a fleet reference and a shared-memory
    arena handle — O(task metadata).
    """
    client = sim.clients[0]
    global_state = sim.server.global_state()
    full = len(pickle.dumps(TrainTask(
        client_id=client.client_id, epochs=1, round_index=0,
        global_state=global_state, client=client)))
    with SharedMemoryArena(global_state) as arena:
        resident = len(pickle.dumps(TrainTask(
            client_id=client.client_id, epochs=1, round_index=0,
            state_handle=arena.handle, fleet=("bench", 0))))
    return full, resident


def _run_engine(backend: str, workers: int = WORKERS, rounds: int = ROUNDS):
    """Sequential vs ``workers``-wide run on ``backend``; returns walls/results."""
    cfg = fl_settings()
    train, test = quick_fl_data("cifar10", seed=47)
    exec_backend = get_backend(backend)
    walls = {}
    results = {}
    spinups = {}
    for max_workers in (1, workers):
        sim = _build_simulation(train, test, cfg, max_workers, backend=backend)
        before = exec_backend.pool_spinups
        start = time.perf_counter()
        results[max_workers] = sim.run(rounds)
        walls[max_workers] = time.perf_counter() - start
        spinups[max_workers] = exec_backend.pool_spinups - before
    return walls, results, spinups


def _run_persistence_drill(backend: str, workers: int = WORKERS,
                           rounds: int = ROUNDS) -> dict:
    """Persistent runtime vs the historic fresh-pool path, bit-for-bit.

    Returns the per-mode pool-spinup counts plus the per-client pickled task
    bytes of each shipping form; raises when the two runs diverge on any
    deterministic field or when persistence fails to cut pool spinups.
    """
    cfg = fl_settings()
    train, test = quick_fl_data("cifar10", seed=47)
    exec_backend = get_backend(backend)
    runs, walls, spinups = {}, {}, {}
    for label, persistent in (("persistent", True), ("fresh", False)):
        sim = _build_simulation(train, test, cfg, workers, backend=backend,
                                persistent=persistent)
        before = exec_backend.pool_spinups
        start = time.perf_counter()
        runs[label] = sim.run(rounds)
        walls[label] = time.perf_counter() - start
        spinups[label] = exec_backend.pool_spinups - before
    full_bytes, resident_bytes = _pickled_task_bytes(sim)

    assert runs["persistent"].accuracies == runs["fresh"].accuracies
    for attr in ("transmitted_bytes", "communication_seconds", "client_losses"):
        assert [getattr(r, attr) for r in runs["persistent"].rounds] == \
            [getattr(r, attr) for r in runs["fresh"].rounds], \
            f"persistent run diverged from fresh pools on {attr}"
    assert resident_bytes < full_bytes, \
        f"resident task ({resident_bytes}B) not smaller than full-ship ({full_bytes}B)"
    if backend != "serial" and workers > 1:
        assert spinups["persistent"] <= 1 < spinups["fresh"], \
            f"expected one persistent pool vs many fresh ones, got {spinups}"
    return {"walls": walls, "spinups": spinups,
            "full_task_bytes": full_bytes, "resident_task_bytes": resident_bytes}


def _check_and_report(walls, results, backend: str, workers: int,
                      persist: bool, assert_speedup: bool,
                      spinups: "dict | None" = None,
                      persistence: "dict | None" = None) -> int:
    sequential, parallel = results[1], results[workers]
    speedup = walls[1] / walls[workers]

    table = Table(f"Round engine ({backend} backend) - {N_CLIENTS} clients, "
                  f"{ROUNDS} rounds, {BANDWIDTH_MBPS:g} Mbps simulated uplink",
                  ["workers", "wall (s)", "speedup", "final acc", "upload (KB)",
                   "pool spinups"])
    record = ExperimentRecord("round_engine",
                              "parallel round engine vs sequential reference")
    record.add(backend=backend, host_cores=os.cpu_count() or 1)
    for max_workers in (1, workers):
        result = results[max_workers]
        table.add_row(max_workers, f"{walls[max_workers]:.2f}",
                      f"{walls[1] / walls[max_workers]:.2f}x",
                      f"{result.final_accuracy:.1%}",
                      f"{result.total_transmitted_bytes / 1e3:.1f}",
                      (spinups or {}).get(max_workers, "-"))
        record.add(workers=max_workers, wall_seconds=walls[max_workers],
                   final_accuracy=result.final_accuracy,
                   transmitted_bytes=result.total_transmitted_bytes,
                   pool_spinups=(spinups or {}).get(max_workers))
    record.add(speedup=speedup)
    if persistence is not None:
        record.add(drill="persistent-vs-fresh", **{
            "persistent_wall_seconds": persistence["walls"]["persistent"],
            "fresh_wall_seconds": persistence["walls"]["fresh"],
            "persistent_pool_spinups": persistence["spinups"]["persistent"],
            "fresh_pool_spinups": persistence["spinups"]["fresh"],
            "full_task_bytes": persistence["full_task_bytes"],
            "resident_task_bytes": persistence["resident_task_bytes"]})
        print(f"\npersistent vs fresh pools ({backend}, {workers} workers): "
              f"{persistence['spinups']['persistent']} vs "
              f"{persistence['spinups']['fresh']} pool spinups, "
              f"train task {persistence['resident_task_bytes']:,}B resident vs "
              f"{persistence['full_task_bytes']:,}B full-ship, bit-identical")
    if persist:
        save_results("round_engine", table, record)
    else:
        print()
        print(table.render())

    # The parallel engine must reproduce the sequential reference bit-for-bit...
    assert parallel.accuracies == sequential.accuracies
    assert [r.transmitted_bytes for r in parallel.rounds] == \
        [r.transmitted_bytes for r in sequential.rounds]
    assert [r.communication_seconds for r in parallel.rounds] == \
        [r.communication_seconds for r in sequential.rounds]
    assert np.all([r.client_losses == s.client_losses
                   for r, s in zip(parallel.rounds, sequential.rounds)])
    # ... while finishing measurably sooner (transfer delays overlap).  The
    # timing assertion is skipped on shared CI runners, where scheduling noise
    # on a loaded 2-core box would make a single-round wall-clock comparison
    # flaky; the table above still reports the measured speedup there.
    if assert_speedup and not os.environ.get("CI"):
        assert walls[workers] < walls[1] * 0.8, \
            f"expected >1.25x speedup, got {speedup:.2f}x"
    return 0


def bench_round_engine(benchmark):
    """pytest-benchmark harness (historic entry point; thread backend)."""
    walls, results, spinups = benchmark.pedantic(lambda: _run_engine("thread"),
                                                 rounds=1, iterations=1)
    _check_and_report(walls, results, backend="thread", workers=WORKERS,
                      persist=True, assert_speedup=True, spinups=spinups,
                      persistence=_run_persistence_drill("thread"))


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend for the parallel engine side")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help="worker-pool size of the parallel run")
    parser.add_argument("--smoke", action="store_true",
                        help="correctness-only drill: no timing assertion, "
                             "results are not persisted (CI mode)")
    parser.add_argument("--persistent", action="store_true",
                        help="also run the persistent-runtime drill: one "
                             "long-lived pool + worker-resident clients vs "
                             "the fresh-pool path, asserting bit-identity "
                             "and the pool-spinup/pickled-bytes reduction")
    args = parser.parse_args(argv)

    walls, results, spinups = _run_engine(args.backend, workers=args.workers)
    persistence = _run_persistence_drill(args.backend, workers=args.workers) \
        if args.persistent else None
    # the serial backend (or a 1-worker pool) runs both sides sequentially:
    # parity is still checked, a speedup is not expected
    assert_speedup = not args.smoke and args.backend != "serial" and args.workers > 1
    return _check_and_report(walls, results, backend=args.backend,
                             workers=args.workers, persist=not args.smoke,
                             assert_speedup=assert_speedup, spinups=spinups,
                             persistence=persistence)


if __name__ == "__main__":
    sys.exit(main())

"""Coordinator services: tree aggregation, scheduling, journal, crash-resume."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import NetworkModel
from repro.data import make_dataset, train_test_split
from repro.fl import (
    FederatedSimulation,
    FlatAggregator,
    RawUpdateCodec,
    RoundJournal,
    RoundScheduler,
    StalenessPolicy,
    TreeAggregator,
    fedavg_aggregate,
)
from repro.fl.coordinator import PartialAggregate, RoundPlan, resolve_scenario_seed
from repro.fl.simulation import _ship_update_task, _ShipTask
from repro.nn import build_model
from repro.utils.serialization import packed_arrays_nbytes


def _factory():
    return build_model("simplecnn", num_classes=10, in_channels=3,
                       image_size=16, seed=0)


def _make_sim(train, test, **kwargs):
    defaults = dict(n_clients=3, seed=5, local_epochs=1, batch_size=16, lr=0.15)
    defaults.update(kwargs)
    return FederatedSimulation(_factory, train, test, **defaults)


def _deterministic_fields(result):
    """Every field of a SimulationResult that must be seed-reproducible."""
    return [(r.accuracy, r.uncompressed_bytes, r.transmitted_bytes,
             r.communication_seconds, tuple(r.client_losses),
             tuple(r.participants), tuple(r.dropped_clients),
             tuple(r.straggler_clients), tuple(r.late_clients),
             tuple(sorted(r.absorbed_clients.items())))
            for r in result.rounds]


@pytest.fixture(scope="module")
def fl_split():
    ds = make_dataset("cifar10", n_samples=240, image_size=16, seed=7)
    return train_test_split(ds, test_fraction=0.25, seed=3)


def _random_states(n, rng, with_ints=True):
    states = []
    for i in range(n):
        state = {"conv.weight": rng.standard_normal((4, 3, 3)).astype(np.float32),
                 "fc.bias": rng.standard_normal(6),
                 "scalar": np.float64(rng.standard_normal())}
        if with_ints:
            state["steps"] = np.asarray(rng.integers(0, 100, size=3), dtype=np.int64)
        states.append(state)
    return states


class TestTreeAggregator:
    @pytest.mark.parametrize("fan_in", [2, 3, 4, 7, 16])
    def test_bit_identical_to_flat_at_every_fan_in(self, fan_in):
        rng = np.random.default_rng(99)
        states = _random_states(11, rng)
        weights = list(rng.integers(1, 200, size=11))
        flat = fedavg_aggregate(states, weights)
        tree = TreeAggregator(fan_in=fan_in).aggregate(states, weights)
        assert list(flat) == list(tree)
        for key in flat:
            assert flat[key].dtype == tree[key].dtype
            assert np.array_equal(flat[key], tree[key]), key

    def test_extreme_weight_spread_still_bit_identical(self):
        rng = np.random.default_rng(3)
        states = _random_states(9, rng, with_ints=False)
        weights = [1e-6, 1e6, 1.0, 3.0, 1e-3, 7e5, 2.0, 1e4, 5.0]
        flat = fedavg_aggregate(states, weights)
        for fan_in in (2, 3, 5):
            tree = TreeAggregator(fan_in=fan_in).aggregate(states, weights)
            assert all(np.array_equal(flat[k], tree[k]) for k in flat)

    def test_single_state_is_exact_identity(self):
        rng = np.random.default_rng(17)
        state = _random_states(1, rng)[0]
        out = fedavg_aggregate([state], [37])
        for key, value in state.items():
            assert np.array_equal(np.asarray(value), out[key]), key

    def test_integer_entries_round_to_nearest(self):
        # the historic astype truncated toward zero: weights [1, 3] over
        # [0, 0] and [1, 3] average to [0.75, 2.25] -> nearest is [1, 2]
        states = [{"c": np.array([0, 0], dtype=np.int64)},
                  {"c": np.array([1, 3], dtype=np.int64)}]
        out = fedavg_aggregate(states, [1, 3])
        assert out["c"].dtype == np.int64
        assert np.array_equal(out["c"], np.array([1, 2]))

    def test_fan_in_below_two_rejected(self):
        with pytest.raises(ValueError, match="fan_in must be >= 2"):
            TreeAggregator(fan_in=1)

    def test_partial_merge_carries_weights(self):
        # merging partials of two halves must equal aggregating the whole
        rng = np.random.default_rng(5)
        states = _random_states(6, rng)
        weights = [5.0, 1.0, 2.0, 8.0, 3.0, 1.0]
        total = sum(weights)
        left = PartialAggregate.of(states[0], weights[0] / total)
        for state, weight in zip(states[1:3], weights[1:3]):
            left = left.merge(PartialAggregate.of(state, weight / total))
        right = PartialAggregate.of(states[3], weights[3] / total)
        for state, weight in zip(states[4:], weights[4:]):
            right = right.merge(PartialAggregate.of(state, weight / total))
        merged = left.merge(right)
        assert merged.count == 6
        full = fedavg_aggregate(states, weights)
        finalized = merged.finalize()
        assert all(np.array_equal(full[k], finalized[k]) for k in full)

    def test_validation_messages_preserved(self):
        with pytest.raises(ValueError, match="need at least one client state"):
            fedavg_aggregate([])
        state = {"w": np.ones(3)}
        with pytest.raises(ValueError, match="same length"):
            fedavg_aggregate([state, state], [1.0])
        with pytest.raises(ValueError, match="non-negative and not all zero"):
            fedavg_aggregate([state, state], [0.0, 0.0])
        with pytest.raises(ValueError, match="mismatched keys"):
            fedavg_aggregate([state, {"v": np.ones(3)}])
        with pytest.raises(ValueError, match="mismatched shapes"):
            FlatAggregator().aggregate([state, {"w": np.ones(4)}])


class TestRoundScheduler:
    def test_matches_simulation_plan_round(self, fl_split):
        train, test = fl_split
        sim = _make_sim(train, test, n_clients=4, seed=21, participation=0.75,
                        dropout_prob=0.25, straggler_prob=0.5)
        scheduler = RoundScheduler(4, participation=0.75, dropout_prob=0.25,
                                   straggler_prob=0.5, seed=21)
        for round_index in range(6):
            assert scheduler.plan_round(round_index).as_tuple() == \
                sim.plan_round(round_index)

    def test_full_participation_shortcut(self):
        scheduler = RoundScheduler(5, participation=1.0, seed=0)
        plan = scheduler.plan_round(3)
        assert plan.participants == (0, 1, 2, 3, 4)
        assert plan.dropped == () and plan.stragglers == ()
        # an int participation of 1 is a count, not the full-fleet fraction
        assert not RoundScheduler(5, participation=1, seed=0).full_participation

    def test_validation(self):
        with pytest.raises(ValueError, match="participation fraction"):
            RoundScheduler(4, participation=0.0)
        with pytest.raises(ValueError, match="participation count"):
            RoundScheduler(4, participation=9)
        with pytest.raises(ValueError, match="dropout_prob"):
            RoundScheduler(4, dropout_prob=1.5)
        with pytest.raises(ValueError, match="straggler_prob"):
            RoundScheduler(4, straggler_prob=-0.1)

    def test_resolve_scenario_seed(self):
        assert resolve_scenario_seed(42) == 42
        drawn = resolve_scenario_seed(None)
        assert 0 <= drawn < 2 ** 63
        # two unseeded draws must not collide (astronomically unlikely)
        assert resolve_scenario_seed(None) != drawn


class TestStalenessPolicy:
    def test_admission_matrix(self):
        policy = StalenessPolicy(max_staleness=2)
        assert policy.admits(3, 3)
        assert policy.admits(3, 4)
        assert policy.admits(3, 5)
        assert not policy.admits(3, 6)
        assert policy.expired(3, 6)
        assert not policy.expired(3, 5)

    def test_zero_staleness_rejects_any_later_round(self):
        policy = StalenessPolicy()
        assert policy.admits(2, 2)
        assert not policy.admits(2, 3)

    def test_invalid(self):
        with pytest.raises(ValueError, match="max_staleness"):
            StalenessPolicy(max_staleness=-1)
        with pytest.raises(ValueError, match="earlier round"):
            StalenessPolicy().admits(4, 3)


class TestRoundJournal:
    def test_fresh_dir_required_without_resume(self, tmp_path, fl_split):
        train, test = fl_split
        _make_sim(train, test, journal_dir=tmp_path / "j").run(1)
        with pytest.raises(ValueError, match="already holds a run"):
            _make_sim(train, test, journal_dir=tmp_path / "j")

    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(ValueError, match="no journal found"):
            RoundJournal(tmp_path / "missing", resume=True)

    def test_journaled_run_replays_bit_identical(self, tmp_path, fl_split):
        train, test = fl_split
        reference = _make_sim(train, test).run(2)
        live = _make_sim(train, test, journal_dir=tmp_path / "j").run(2)
        assert _deterministic_fields(live) == _deterministic_fields(reference)
        replayed = _make_sim(train, test, journal_dir=tmp_path / "j",
                             resume=True).run(2)
        assert _deterministic_fields(replayed) == _deterministic_fields(reference)
        # replay preserves the wall-clock measurements of the original run
        assert [r.mean_train_seconds for r in replayed.rounds] == \
            [r.mean_train_seconds for r in live.rounds]

    def test_truncated_tail_is_tolerated(self, tmp_path, fl_split):
        train, test = fl_split
        _make_sim(train, test, journal_dir=tmp_path / "j").run(1)
        log = tmp_path / "j" / "journal.jsonl"
        log.write_text(log.read_text() + '{"event": "round_start", "rou')
        state = RoundJournal(tmp_path / "j", resume=True).load()
        assert len(state.records) == 1 and state.partial is None

    def test_corrupt_middle_line_rejected(self, tmp_path, fl_split):
        train, test = fl_split
        _make_sim(train, test, journal_dir=tmp_path / "j").run(1)
        log = tmp_path / "j" / "journal.jsonl"
        lines = log.read_text().splitlines()
        lines[1] = lines[1][:10]
        log.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="unparseable event"):
            RoundJournal(tmp_path / "j", resume=True).load()

    def test_mismatched_run_rejected(self, tmp_path, fl_split):
        train, test = fl_split
        _make_sim(train, test, journal_dir=tmp_path / "j").run(1)
        with pytest.raises(ValueError, match="does not match this run's seed"):
            _make_sim(train, test, seed=6, journal_dir=tmp_path / "j", resume=True)
        with pytest.raises(ValueError, match="clients"):
            _make_sim(train, test, n_clients=2, journal_dir=tmp_path / "j",
                      resume=True)

    def test_resume_without_journal_dir_rejected(self, fl_split):
        train, test = fl_split
        with pytest.raises(ValueError, match="resume=True requires journal_dir"):
            _make_sim(train, test, resume=True)


def _truncate_journal(journal_dir, keep_events):
    """Emulate a crash: keep only the first ``keep_events`` journal lines."""
    log = journal_dir / "journal.jsonl"
    lines = log.read_text().splitlines()
    assert len(lines) > keep_events, "test needs a longer journal to truncate"
    log.write_text("\n".join(lines[:keep_events]) + "\n")


class TestCrashResume:
    def test_mid_round_crash_resumes_bit_identical(self, tmp_path, fl_split):
        train, test = fl_split
        reference_sim = _make_sim(train, test)
        reference = reference_sim.run(2)

        _make_sim(train, test, journal_dir=tmp_path / "j").run(2)
        # events: run_start, then per round: round_start + 3 ships + complete;
        # keeping 8 lines cuts round 1 after its round_start + 1 shipped client
        _truncate_journal(tmp_path / "j", keep_events=8)

        resumed_sim = _make_sim(train, test, journal_dir=tmp_path / "j",
                                resume=True)
        resumed = resumed_sim.run(2)
        assert _deterministic_fields(resumed) == _deterministic_fields(reference)
        ref_state = reference_sim.server.global_state()
        res_state = resumed_sim.server.global_state()
        assert all(np.array_equal(ref_state[k], res_state[k]) for k in ref_state)

    def test_round_boundary_crash_resumes_bit_identical(self, tmp_path, fl_split):
        train, test = fl_split
        reference = _make_sim(train, test).run(2)
        _make_sim(train, test, journal_dir=tmp_path / "j").run(2)
        # keep run_start + all 5 events of round 0: resume restarts round 1
        _truncate_journal(tmp_path / "j", keep_events=6)
        resumed = _make_sim(train, test, journal_dir=tmp_path / "j",
                            resume=True).run(2)
        assert _deterministic_fields(resumed) == _deterministic_fields(reference)

    def test_resume_extends_run(self, tmp_path, fl_split):
        train, test = fl_split
        reference = _make_sim(train, test).run(3)
        _make_sim(train, test, journal_dir=tmp_path / "j").run(2)
        extended = _make_sim(train, test, journal_dir=tmp_path / "j",
                             resume=True).run(3)
        assert _deterministic_fields(extended) == _deterministic_fields(reference)

    def test_crash_env_hook_hard_exits(self, tmp_path, fl_split, monkeypatch):
        train, test = fl_split
        recorded = {}

        def fake_exit(code):
            recorded["code"] = code
            raise SystemExit(code)

        monkeypatch.setattr(os, "_exit", fake_exit)
        monkeypatch.setenv("REPRO_JOURNAL_CRASH_AFTER", "3")
        with pytest.raises(SystemExit):
            _make_sim(train, test, journal_dir=tmp_path / "j").run(2)
        assert recorded["code"] == 42
        # the journal holds exactly the events appended before the crash
        lines = (tmp_path / "j" / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 3


class TestStalenessEndToEnd:
    def test_deadline_defers_and_staleness_absorbs(self, fl_split):
        train, test = fl_split
        slow = NetworkModel(bandwidth_mbps=0.001)
        sim = _make_sim(train, test, n_clients=2, network=slow,
                        round_deadline_s=1e-4, max_staleness=1)
        result = sim.run(3)
        assert result.rounds[0].participants == []
        assert result.rounds[0].late_clients == [0, 1]
        assert result.rounds[0].absorbed_clients == {}
        # round 1 absorbs round 0's late updates (origin recorded per client)
        assert result.rounds[1].absorbed_clients == {0: 0, 1: 0}
        # late bytes are still accounted to their origin round
        assert result.rounds[0].transmitted_bytes > 0

    def test_zero_staleness_rejects_late_updates(self, fl_split):
        train, test = fl_split
        slow = NetworkModel(bandwidth_mbps=0.001)
        sim = _make_sim(train, test, n_clients=2, network=slow,
                        round_deadline_s=1e-4, max_staleness=0)
        result = sim.run(2)
        assert all(r.absorbed_clients == {} for r in result.rounds)
        # nothing aggregated: accuracy stays at the untrained model's level
        assert result.rounds[0].accuracy == result.rounds[1].accuracy

    def test_no_deadline_means_no_behaviour_change(self, fl_split):
        train, test = fl_split
        result = _make_sim(train, test).run(1)
        assert result.rounds[0].late_clients == []
        assert result.rounds[0].absorbed_clients == {}


class TestAsyncOverlap:
    def test_async_matches_pool_bit_for_bit(self, fl_split):
        train, test = fl_split
        pool = _make_sim(train, test).run(2)
        overlapped = _make_sim(train, test, overlap="async").run(2)
        assert _deterministic_fields(overlapped) == _deterministic_fields(pool)

    def test_unknown_overlap_rejected(self, fl_split):
        train, test = fl_split
        with pytest.raises(ValueError, match="overlap must be one of"):
            _make_sim(train, test, overlap="fiber")


class TestTreeFanoutEndToEnd:
    @pytest.mark.parametrize("fan_in", [2, 3])
    def test_tree_run_matches_flat_run(self, fl_split, fan_in):
        train, test = fl_split
        flat = _make_sim(train, test).run(2)
        tree = _make_sim(train, test, tree_fanout=fan_in).run(2)
        assert _deterministic_fields(tree) == _deterministic_fields(flat)

    def test_invalid_fanout_rejected(self, fl_split):
        train, test = fl_split
        with pytest.raises(ValueError, match="tree_fanout"):
            _make_sim(train, test, tree_fanout=1)


class TestSatelliteRegressions:
    def test_seed_none_derives_everything_from_one_scenario_seed(self, fl_split):
        train, test = fl_split
        sim = _make_sim(train, test, seed=None)
        # client seeds derive from the drawn scenario seed, not from seed 0
        assert [c.seed for c in sim.clients] == \
            [sim._scenario_seed + i for i in range(len(sim.clients))]
        other = _make_sim(train, test, seed=None)
        assert other._scenario_seed != sim._scenario_seed

    def test_explicit_seed_keeps_historic_client_seeds(self, fl_split):
        train, test = fl_split
        sim = _make_sim(train, test, seed=5)
        assert [c.seed for c in sim.clients] == [5, 6, 7]

    def test_client_evaluate_restores_entry_mode(self, fl_split):
        train, test = fl_split
        sim = _make_sim(train, test)
        client = sim.clients[0]
        client.model.train(False)
        client.evaluate()
        assert client.model.training is False
        client.model.train(True)
        client.evaluate()
        assert client.model.training is True

    def test_loader_seed_varies_per_round(self, fl_split):
        train, test = fl_split
        client = _make_sim(train, test).clients[0]
        seeds = {client._loader_seed(r) for r in range(5)}
        assert len(seeds) == 5, "rounds must not replay the same batch order"
        assert client._loader_seed(0) == client.seed  # round 0 is historic

    def test_analytic_raw_bytes_matches_encoder(self, small_state):
        assert packed_arrays_nbytes(small_state) == \
            len(RawUpdateCodec().encode(small_state))

    def test_ship_task_reports_analytic_raw_bytes(self, small_state):
        task = _ShipTask(client_id=0, state=small_state, codec=RawUpdateCodec(),
                         network=NetworkModel(bandwidth_mbps=10.0),
                         straggler_slowdown=1.0)
        result = _ship_update_task(task)
        assert result.raw_bytes == len(RawUpdateCodec().encode(small_state))
        assert result.payload is None  # payloads are only kept when journaling

    def test_round_plan_tuple_shape(self):
        plan = RoundPlan(2, (0, 2), (1,), (2,))
        assert plan.as_tuple() == ([0, 2], [1], [2])

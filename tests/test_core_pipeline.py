"""Tests for the end-to-end FedSZ compression pipeline."""

import numpy as np
import pytest

from repro.core import FedSZCompressor, FedSZConfig
from repro.nn import build_model


@pytest.fixture
def fedsz() -> FedSZCompressor:
    return FedSZCompressor(FedSZConfig(error_bound=1e-2, threshold=256))


class TestRoundtrip:
    def test_keys_shapes_dtypes_preserved(self, fedsz, small_state):
        recon = fedsz.decompress_state_dict(fedsz.compress_state_dict(small_state))
        assert set(recon) == set(small_state)
        for key in small_state:
            assert recon[key].shape == small_state[key].shape
            assert recon[key].dtype == small_state[key].dtype

    def test_lossless_partition_bit_exact(self, fedsz, small_state):
        partition = fedsz.partition(small_state)
        recon = fedsz.decompress_state_dict(fedsz.compress_state_dict(small_state))
        for name in partition.lossless:
            np.testing.assert_array_equal(recon[name], small_state[name])

    def test_lossy_partition_error_bounded(self, fedsz, small_state):
        partition = fedsz.partition(small_state)
        recon = fedsz.decompress_state_dict(fedsz.compress_state_dict(small_state))
        for name in partition.lossy:
            original = small_state[name].astype(np.float64)
            bound = 1e-2 * (original.max() - original.min())
            err = np.max(np.abs(recon[name].astype(np.float64) - original))
            assert err <= bound * (1 + 1e-6) + 1e-9

    def test_compression_reduces_size(self, fedsz):
        state = build_model("alexnet").state_dict()
        payload = fedsz.compress_state_dict(state)
        original = sum(v.nbytes for v in state.values())
        assert len(payload) < original / 2

    def test_report_populated(self, fedsz, small_state):
        _, report = fedsz.roundtrip(small_state)
        assert report.original_bytes > 0
        assert report.compressed_bytes > 0
        assert report.ratio > 1.0
        assert report.lossy_ratio >= 1.0
        assert report.compress_seconds > 0
        assert report.decompress_seconds > 0
        assert report.throughput_mbps > 0

    def test_empty_state_roundtrip(self, fedsz):
        recon = fedsz.decompress_state_dict(fedsz.compress_state_dict({}))
        assert recon == {}

    def test_state_with_only_metadata(self, fedsz):
        state = {"bn.running_mean": np.arange(8, dtype=np.float32),
                 "bn.bias": np.ones(8, dtype=np.float32)}
        recon = fedsz.decompress_state_dict(fedsz.compress_state_dict(state))
        for key, value in state.items():
            np.testing.assert_array_equal(recon[key], value)


class TestConfigurationVariants:
    @pytest.mark.parametrize("compressor", ["sz2", "sz3", "szx", "zfp"])
    def test_every_eblc_works_in_pipeline(self, compressor, small_state):
        fedsz = FedSZCompressor(FedSZConfig(lossy_compressor=compressor, error_bound=1e-2))
        recon, report = fedsz.roundtrip(small_state)
        assert set(recon) == set(small_state)
        assert report.ratio > 1.0

    @pytest.mark.parametrize("codec", ["blosclz", "zlib", "gzip", "zstd", "xz"])
    def test_every_lossless_codec_works_in_pipeline(self, codec, small_state):
        fedsz = FedSZCompressor(FedSZConfig(lossless_codec=codec))
        recon, _ = fedsz.roundtrip(small_state)
        assert set(recon) == set(small_state)

    @pytest.mark.parametrize("compressor", ["sz2", "sz3"])
    def test_entropy_workers_bit_identical_bitstreams(self, compressor, small_state):
        # the entropy knobs change how decoding is scheduled, never the bytes
        # on the wire or the reconstruction
        sequential = FedSZCompressor(FedSZConfig(
            lossy_compressor=compressor, error_bound=1e-2, entropy_chunk=1024))
        threaded = FedSZCompressor(FedSZConfig(
            lossy_compressor=compressor, error_bound=1e-2, entropy_chunk=1024,
            entropy_workers=4))
        payload = sequential.compress_state_dict(small_state)
        assert payload == threaded.compress_state_dict(small_state)
        recon_seq = sequential.decompress_state_dict(payload)
        recon_par = threaded.decompress_state_dict(payload)
        for key in recon_seq:
            np.testing.assert_array_equal(recon_seq[key], recon_par[key])

    def test_invalid_entropy_config_rejected(self):
        with pytest.raises(ValueError):
            FedSZConfig(entropy_chunk=0)
        with pytest.raises(ValueError):
            FedSZConfig(entropy_workers=0)

    def test_larger_bound_better_ratio(self, small_state):
        state = build_model("alexnet").state_dict()
        loose = FedSZCompressor(FedSZConfig(error_bound=1e-1)).compress_state_dict(state)
        tight = FedSZCompressor(FedSZConfig(error_bound=1e-4)).compress_state_dict(state)
        assert len(loose) < len(tight)

    def test_ratio_in_paper_band_for_alexnet_1e2(self):
        # Table V reports 5.5-12.6x for REL 1e-2 across models/datasets; random
        # initialized weights are less compressible than trained ones, so we
        # accept anything comfortably above 3x.
        state = build_model("alexnet").state_dict()
        _, report = FedSZCompressor(FedSZConfig(error_bound=1e-2)).roundtrip(state)
        assert report.ratio > 3.0

    def test_corrupt_bitstream_rejected(self, fedsz, small_state):
        payload = fedsz.compress_state_dict(small_state)
        with pytest.raises(Exception):
            fedsz.decompress_state_dict(b"garbage" + payload[7:])

    def test_missing_manifest_rejected(self, fedsz):
        from repro.utils.serialization import pack_bytes_dict
        with pytest.raises(ValueError, match="manifest"):
            fedsz.decompress_state_dict(pack_bytes_dict({"lossy::x": b"123"}))

    def test_model_load_after_roundtrip(self, fedsz):
        model = build_model("simplecnn", num_classes=4, image_size=16)
        recon = fedsz.decompress_state_dict(fedsz.compress_state_dict(model.state_dict()))
        model.load_state_dict(recon)  # must not raise
        x = np.zeros((1, 3, 16, 16), dtype=np.float32)
        assert model(x).shape == (1, 4)

    def test_inference_accuracy_preserved_at_1e2(self, tiny_split):
        # the paper's central accuracy claim, in miniature: predictions of a
        # model restored from a FedSZ bitstream at REL 1e-2 match the original
        # model on almost every sample
        train, test = tiny_split
        model = build_model("simplecnn", num_classes=10, image_size=16, seed=0)
        fedsz = FedSZCompressor(FedSZConfig(error_bound=1e-2))
        recon_state = fedsz.decompress_state_dict(fedsz.compress_state_dict(model.state_dict()))
        restored = build_model("simplecnn", num_classes=10, image_size=16, seed=1)
        restored.load_state_dict(recon_state)
        model.eval(); restored.eval()
        original_pred = model(test.images).argmax(axis=1)
        restored_pred = restored(test.images).argmax(axis=1)
        agreement = float((original_pred == restored_pred).mean())
        assert agreement > 0.9

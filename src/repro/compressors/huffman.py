"""Chunked canonical Huffman coding of integer symbol streams.

SZ2 and SZ3 entropy-code their quantization indices with Huffman before the
final lossless stage.  This module provides a self-contained canonical Huffman
coder over non-negative integer symbols:

* tree construction with :mod:`heapq` on the symbol histogram,
* code lengths limited to :data:`MAX_CODE_LENGTH` bits (package-merge style
  rebalancing by clamping and re-normalizing Kraft mass),
* vectorized encoding (all code bits emitted with NumPy in one shot),
* table-driven decoding (a flat lookup table indexed by ``MAX_CODE_LENGTH``-bit
  windows, the classic fast canonical decoder).

Bitstream format (version 3)
----------------------------

The symbol stream is split into fixed-size chunks that share one global code
table but are *independently decodable*: a per-chunk ``(bit_offset,
symbol_count)`` index in the header lets the decoder enter the bitstream at
any chunk boundary.  All integers little-endian::

    4s    magic b"HUF3"
    u32   CRC-32 of everything after this field
    u32   alphabet size A
    u64   total symbol count
    u32   chunk size (symbols per full chunk)
    u32   number of chunks
    u8[A] per-symbol code lengths (0 = unused symbol)
    per chunk: u64 bit offset, u64 symbol count
    u64   total bit count
    u8[]  packed code bits (MSB-first)

The chunk index is what makes the decode side parallel *and* vectorizable:

* ``max_workers=1`` (or ``backend="serial"``) decodes with the strictly
  sequential per-symbol reference loop (the deterministic baseline the tests
  pin the fast path against),
* ``max_workers>1`` splits the chunk list into bands and dispatches the bands
  to the configured :class:`~repro.utils.parallel.ExecutionBackend` (threads
  or processes).  Each band is a self-contained, picklable work unit — the
  worker receives its slice of the packed bit stream, the code-length table,
  and the band's chunk index, and *returns* the decoded symbol band rather
  than mutating a shared output array, so the same task function runs
  unchanged on a thread pool or across a process boundary.  Inside a band all
  chunks decode simultaneously as one vectorized NumPy "row walk": each step
  advances every chunk's bit cursor by one decoded symbol, so the sequential
  dependency only spans a chunk, not the stream.

A corrupted or truncated payload always raises :class:`ValueError`: every
header field is bounds-checked, the CRC covers the whole payload, an unused
lookup-table window (a code that exists in no symbol's prefix set) is
detected, and every chunk must decode to exactly its recorded boundary.

The encoded payload is self-describing: it stores the code-length table so the
decoder needs no side channel.
"""

from __future__ import annotations

import functools
import heapq
import os
import struct
import zlib

import numpy as np

from repro.utils.bitstream import StreamBuffer
from repro.utils.parallel import ExecutionBackend, get_backend

__all__ = ["HuffmanCoder", "ChunkBandConsumer", "ChunkBandProducer",
           "MAX_CODE_LENGTH", "DEFAULT_CHUNK_SYMBOLS"]

#: Longest permitted codeword.  16 keeps the decode lookup table at 64K entries.
MAX_CODE_LENGTH = 16

#: Default (and cap) for symbols per chunk.  Streams much smaller than
#: ``DEFAULT_CHUNK_SYMBOLS * _TARGET_CHUNKS`` get proportionally smaller chunks
#: so the vectorized decoder still sees enough chunks to amortize per-step
#: dispatch overhead across a wide row.
DEFAULT_CHUNK_SYMBOLS = 1 << 16

#: The encoder aims for about this many chunks per stream (bounded by
#: ``chunk_size`` above and ``_MIN_CHUNK_SYMBOLS`` below).  More chunks mean a
#: wider vectorized row walk and more thread-pool parallelism; fewer chunks
#: mean less per-chunk index overhead (16 bytes each).
_TARGET_CHUNKS = 512
_MIN_CHUNK_SYMBOLS = 1024

#: Below this many chunks the vectorized row walk is narrower than its own
#: per-step dispatch overhead; fall back to the scalar reference loop.
_MIN_VECTOR_CHUNKS = 8

_MAGIC = b"HUF3"
_HEADER = struct.Struct("<IQII")  # alphabet, count, chunk_size, n_chunks
_PREFIX_LEN = 8                   # magic + crc32


def _build_code_lengths(frequencies: np.ndarray) -> np.ndarray:
    """Return per-symbol code lengths from a frequency histogram.

    Standard Huffman construction; lengths exceeding :data:`MAX_CODE_LENGTH`
    are clamped and the length table re-normalized so the Kraft inequality
    still holds (a slight loss of optimality, never of correctness).
    """
    symbols = np.flatnonzero(frequencies)
    lengths = np.zeros(frequencies.size, dtype=np.int64)
    if symbols.size == 0:
        return lengths
    if symbols.size == 1:
        lengths[symbols[0]] = 1
        return lengths

    # heap entries: (freq, tiebreak, node) where node is a symbol or [left, right]
    counter = 0
    heap: list[tuple[int, int, object]] = []
    for sym in symbols:
        heap.append((int(frequencies[sym]), counter, int(sym)))
        counter += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, (n1, n2)))
        counter += 1

    # depth-first traversal assigning depths
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)

    if lengths.max() <= MAX_CODE_LENGTH:
        return lengths

    # Clamp over-long codes and restore the Kraft inequality by lengthening the
    # shortest codes until sum(2^-len) <= 1 again.
    lengths[lengths > MAX_CODE_LENGTH] = MAX_CODE_LENGTH
    used = np.flatnonzero(lengths)

    def kraft(ls: np.ndarray) -> float:
        return float(np.sum(2.0 ** (-ls[used].astype(np.float64))))

    while kraft(lengths) > 1.0:
        # lengthen the currently shortest codeword (cheapest in extra bits)
        candidates = used[lengths[used] < MAX_CODE_LENGTH]
        if candidates.size == 0:
            raise RuntimeError("cannot satisfy Kraft inequality within MAX_CODE_LENGTH")
        target = candidates[np.argmin(lengths[candidates])]
        lengths[target] += 1
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical code values given per-symbol lengths (0 = unused)."""
    codes = np.zeros(lengths.size, dtype=np.uint32)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    # canonical order: by (length, symbol)
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def _corrupt(detail: str) -> ValueError:
    return ValueError(f"corrupt Huffman stream: {detail}")


def _require(payload: bytes, offset: int, needed: int, what: str) -> None:
    """Raise ``ValueError`` unless ``needed`` bytes remain at ``offset``."""
    if needed < 0 or offset + needed > len(payload):
        raise _corrupt(f"{what} needs {needed} bytes at offset {offset}, "
                       f"but only {max(len(payload) - offset, 0)} remain")


def _build_decode_tables(lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat ``(symbol, code length)`` lookup tables over all 16-bit windows.

    Canonical codes are assigned in (length, symbol) order, which makes the
    per-code window ranges ``[code << pad, (code + 1) << pad)`` abut exactly
    starting at 0 — the whole table is two :func:`numpy.repeat` calls.  Window
    values past the covered range (possible when Kraft mass was clamped away)
    keep length 0, the decoder's "no such code" trap.
    """
    used = np.flatnonzero(lengths)
    if used.size == 0:
        raise _corrupt("empty code-length table for a non-empty stream")
    if int(lengths[used].max()) > MAX_CODE_LENGTH:
        raise _corrupt(f"code length exceeds {MAX_CODE_LENGTH}")
    order = used[np.lexsort((used, lengths[used]))]
    spans = np.int64(1) << (MAX_CODE_LENGTH - lengths[order])
    covered = int(spans.sum())
    if covered > (1 << MAX_CODE_LENGTH):
        raise _corrupt("code-length table violates the Kraft inequality")
    table_sym = np.zeros(1 << MAX_CODE_LENGTH, dtype=np.int64)
    table_len = np.zeros(1 << MAX_CODE_LENGTH, dtype=np.int64)
    table_sym[:covered] = np.repeat(order, spans)
    table_len[:covered] = np.repeat(lengths[order], spans)
    return table_sym, table_len


@functools.lru_cache(maxsize=128)
def _decode_tables_cached(length_table: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Memoized :func:`_build_decode_tables` keyed by the raw length-table bytes.

    Every band of one stream (and every stream re-using one code table, e.g.
    warm-codebook rounds) shares the same 64K-entry window tables, so the
    two ``np.repeat`` calls run once per distinct table per worker process
    instead of once per :func:`_decode_band_task`.  The cached arrays are
    marked read-only because they are shared across callers.
    """
    lengths = np.frombuffer(length_table, dtype=np.uint8).astype(np.int64)
    table_sym, table_len = _build_decode_tables(lengths)
    table_sym.setflags(write=False)
    table_len.setflags(write=False)
    return table_sym, table_len


def _byte_windows(bit_bytes: np.ndarray, pad_bytes: int) -> np.ndarray:
    """24-bit big-endian windows starting at every byte, zero-padded at the end.

    The 16-bit decode window at bit position ``p`` is
    ``(w24[p >> 3] >> (8 - (p & 7))) & 0xFFFF``.
    """
    padded = np.concatenate([bit_bytes, np.zeros(pad_bytes, dtype=np.uint8)]).astype(np.int64)
    return (padded[:-2] << 16) | (padded[1:-1] << 8) | padded[2:]


def _decode_band_task(task: "tuple[bytes, bytes, np.ndarray, np.ndarray, np.ndarray]") -> np.ndarray:
    """Decode one band of chunks from its slice of the packed bit stream.

    Module-level and fully self-contained so the banded decode can run on any
    :class:`~repro.utils.parallel.ExecutionBackend`, including a process pool:
    the task tuple ``(bit_slice, length_table, bit_offsets, sym_counts,
    chunk_ends)`` pickles cheaply (offsets are relative to the slice), and the
    decoded symbol band is *returned* instead of written into shared memory.
    The 64K-entry window tables come from the per-worker
    :func:`_decode_tables_cached` LRU, so a multi-band decode of one stream
    builds them once per worker instead of once per band.
    """
    bit_slice, length_table, bit_offsets, sym_counts, chunk_ends = task
    table_sym, table_len = _decode_tables_cached(length_table)
    bit_bytes = np.frombuffer(bit_slice, dtype=np.uint8)
    sym_starts = np.concatenate([[0], np.cumsum(sym_counts)[:-1]])
    out = np.empty(int(sym_counts.sum()), dtype=np.int64)
    if bit_offsets.size < _MIN_VECTOR_CHUNKS:
        HuffmanCoder._decode_scalar(bit_bytes, bit_offsets, sym_counts, sym_starts,
                                    chunk_ends, table_sym, table_len, out)
        return out
    steps_cap = int(sym_counts.max())
    # Pad the byte windows so a corrupt stream can drift up to
    # MAX_CODE_LENGTH bits per step past the end without an out-of-bounds
    # gather; the drift itself is caught by the chunk-boundary check.
    w24 = _byte_windows(bit_bytes, 3 + (steps_cap * MAX_CODE_LENGTH + 7) // 8)
    comb = (table_sym << 5) | table_len
    HuffmanCoder._decode_band_vectorized(w24, comb, bit_offsets, sym_counts,
                                         sym_starts, chunk_ends, out)
    return out


class ChunkBandConsumer:
    """Incremental decoder for v3 ``HUF3`` streams: feed bytes, get symbols.

    The per-chunk ``(bit_offset, symbol_count)`` index makes any *byte prefix*
    of the stream useful: chunk ``k`` is decodable as soon as the prefix covers
    the header plus ``ceil(chunk_end_bit(k) / 8)`` bytes of the packed bit
    stream.  This consumer exploits that to overlap decode time with arrival
    time (the paper's ``t_D`` hiding inside ``S'/B``): :meth:`feed` accepts
    stream bytes in any chunking — per simulated packet, per decompressor
    output burst, or all at once — parses the header progressively, and
    eagerly decodes every chunk whose bytes have fully arrived.  Bands of
    newly-ready chunks go through exactly the same scalar/vectorized decode
    kernels as :meth:`HuffmanCoder.decode`, so the symbols are bit-identical
    to a non-streaming decode at any worker count on any backend.

    The stream's CRC-32 covers the *entire* payload, so it can only be
    verified once the last byte arrives: :meth:`finish` checks it (and the
    declared total length) before releasing the symbol array.  Structural
    corruption that a prefix already proves — bad magic, inconsistent chunk
    geometry, a chunk that decodes past its recorded boundary, over-long
    streams — raises :class:`ValueError` from :meth:`feed` at the earliest
    byte that exposes it.  Callers must treat the symbols as tentative until
    :meth:`finish` returns.
    """

    def __init__(self, max_workers: int | None = 1,
                 backend: "str | ExecutionBackend" = "serial") -> None:
        self.backend = get_backend(backend)
        self.max_workers = max_workers
        self._buf = StreamBuffer()
        self._crc = 0
        self._crc_pos = _PREFIX_LEN  # next byte offset to fold into the CRC
        self._crc_stored: int | None = None
        self._header: "tuple | None" = None  # (lengths, bit_offsets, sym_counts, sym_starts, chunk_ends, count, bits_at)
        self._tables: "tuple[np.ndarray, np.ndarray] | None" = None
        self._out: "np.ndarray | None" = None
        self._next_chunk = 0
        self._finished: "np.ndarray | None" = None

    # -- public surface ------------------------------------------------
    @property
    def header_ready(self) -> bool:
        """True once the full header (code table + chunk index) has arrived."""
        return self._header is not None

    @property
    def chunks_total(self) -> "int | None":
        """Number of chunks in the stream (``None`` before the header)."""
        return self._header[1].size if self._header is not None else None

    @property
    def chunks_decoded(self) -> int:
        """Chunks decoded so far."""
        return self._next_chunk

    @property
    def symbols_decoded(self) -> int:
        """Symbols decoded so far (a prefix of the final array)."""
        if self._header is None or self._next_chunk == 0:
            return 0
        _, _, sym_counts, sym_starts, _, _, _ = self._header
        return int(sym_starts[self._next_chunk - 1] + sym_counts[self._next_chunk - 1])

    @property
    def bytes_received(self) -> int:
        """Stream bytes fed so far."""
        return self._buf.available

    def required_prefix(self, chunk: int) -> int:
        """Bytes of stream prefix sufficient to decode chunks ``0..chunk``.

        Only available once the header has arrived; this is the quantity the
        FORMATS.md streaming contract specifies.
        """
        if self._header is None:
            raise ValueError("header has not arrived yet")
        _, _, _, _, chunk_ends, count, bits_at = self._header
        if count == 0:
            return bits_at
        return bits_at + ((int(chunk_ends[chunk]) + 7) >> 3)

    def feed(self, data) -> int:
        """Consume arriving stream bytes; decodes every newly-complete chunk.

        Returns the number of symbols decoded so far.  Raises
        :class:`ValueError` on structurally corrupt input.
        """
        if self._finished is not None:
            raise ValueError("cannot feed a finished Huffman stream consumer")
        self._buf.feed(data)
        if self._header is None:
            self._try_parse_header()
        self._update_crc()
        if self._header is not None:
            self._decode_ready()
        return self.symbols_decoded

    def finish(self) -> np.ndarray:
        """Verify total length and CRC-32, then return the decoded symbols."""
        if self._finished is not None:
            return self._finished
        if self._header is None:
            raise _corrupt(f"stream truncated inside the header "
                           f"({self._buf.available} bytes arrived)")
        if not self._buf.complete:
            raise _corrupt(f"stream truncated: {self._buf.available} of "
                           f"{self._buf.expected} bytes arrived")
        self._update_crc()
        if self._crc != self._crc_stored:
            raise _corrupt("CRC-32 mismatch")
        self._decode_ready()
        lengths, bit_offsets, *_ = self._header
        if self._next_chunk != bit_offsets.size:
            raise _corrupt("stream ended before every chunk decoded")
        self._finished = self._out if self._out is not None \
            else np.zeros(0, dtype=np.int64)
        return self._finished

    # -- internals -----------------------------------------------------
    def _update_crc(self) -> None:
        if self._crc_pos < self._buf.available:
            self._crc = zlib.crc32(self._buf.view(self._crc_pos), self._crc)
            self._crc_pos = self._buf.available

    def _try_parse_header(self) -> None:
        """Parse the fixed header, code table, and chunk index once present.

        Runs the same structural validation as
        :meth:`HuffmanCoder._parse_header` — everything except the CRC, which
        needs the whole stream and is deferred to :meth:`finish`.
        """
        buf = self._buf
        fixed = _PREFIX_LEN + _HEADER.size
        if not buf.has(fixed):
            return
        if bytes(buf.view(0, 4)) != _MAGIC:
            raise _corrupt("bad magic (not a version-3 Huffman stream)")
        (self._crc_stored,) = struct.unpack("<I", buf.view(4, _PREFIX_LEN))
        alphabet, count, chunk_size, n_chunks = _HEADER.unpack(buf.view(fixed - _HEADER.size, fixed))
        offset = fixed
        if not buf.has(alphabet + 16 * n_chunks + 8, offset):
            return
        lengths = np.frombuffer(buf.view(offset, offset + alphabet),
                                dtype=np.uint8).astype(np.int64)
        offset += alphabet
        index = np.frombuffer(buf.view(offset, offset + 16 * n_chunks),
                              dtype="<u8").reshape(n_chunks, 2).astype(np.int64)
        offset += 16 * n_chunks
        (total_bits,) = struct.unpack("<Q", buf.view(offset, offset + 8))
        offset += 8

        if count == 0:
            if n_chunks != 0 or total_bits != 0:
                raise _corrupt("empty stream declares chunks or bits")
        else:
            if chunk_size < 1 or n_chunks != -(-count // chunk_size):
                raise _corrupt(f"{n_chunks} chunks cannot cover {count} symbols "
                               f"at {chunk_size} symbols per chunk")
            sym_counts = index[:, 1]
            expected = np.full(n_chunks, chunk_size, dtype=np.int64)
            expected[-1] = count - (n_chunks - 1) * chunk_size
            if not np.array_equal(sym_counts, expected):
                raise _corrupt("chunk symbol counts disagree with the stream length")
            bit_offsets = index[:, 0]
            spans = np.diff(np.concatenate([bit_offsets, [total_bits]]))
            if bit_offsets[0] != 0 or np.any(spans < sym_counts) or \
                    np.any(spans > sym_counts * MAX_CODE_LENGTH):
                raise _corrupt("chunk bit offsets are inconsistent with their symbol counts")

        bit_offsets = index[:, 0]
        sym_counts = index[:, 1]
        sym_starts = np.concatenate([[0], np.cumsum(sym_counts)[:-1]]) \
            if n_chunks else np.zeros(0, dtype=np.int64)
        chunk_ends = np.concatenate([bit_offsets[1:], [total_bits]]) \
            if n_chunks else np.zeros(0, dtype=np.int64)
        # from here on the total stream length is pinned; over-feeding raises
        self._buf.expect(offset + (total_bits + 7) // 8)
        self._header = (lengths, bit_offsets, sym_counts, sym_starts,
                        chunk_ends, count, offset)
        if count:
            self._tables = _decode_tables_cached(lengths.astype(np.uint8).tobytes())
            self._out = np.empty(count, dtype=np.int64)

    def _ready_chunks(self) -> int:
        """Index one past the last chunk whose bytes have fully arrived."""
        _, _, _, _, chunk_ends, count, bits_at = self._header
        if count == 0:
            return 0
        avail_bits = (self._buf.available - bits_at) << 3
        # chunk k is ready when ceil(chunk_ends[k] / 8) bytes arrived, i.e.
        # chunk_ends[k] <= available whole bits
        return int(np.searchsorted(chunk_ends, avail_bits, side="right"))

    def _decode_ready(self) -> None:
        """Eagerly decode every chunk whose bytes have arrived."""
        lo, hi = self._next_chunk, self._ready_chunks()
        if hi <= lo:
            return
        lengths, bit_offsets, sym_counts, sym_starts, chunk_ends, count, bits_at = self._header
        table_sym, table_len = self._tables
        workers = self.backend.resolve_workers(self.max_workers, hi - lo)
        if workers > 1 and hi - lo >= 2 * _MIN_VECTOR_CHUNKS:
            # wide burst (a large feed or a fast wire): band it out exactly
            # like the non-streaming parallel decode
            cap = workers if not self.backend.gil_bound else \
                min(workers, os.cpu_count() or 1)
            n_bands = max(1, min(cap, (hi - lo) // _MIN_VECTOR_CHUNKS))
            edges = np.linspace(lo, hi, n_bands + 1).astype(int)
            length_table = lengths.astype(np.uint8).tobytes()
            bands = [(int(edges[b]), int(edges[b + 1])) for b in range(n_bands)
                     if edges[b] < edges[b + 1]]
            tasks = []
            for b_lo, b_hi in bands:
                byte0 = int(bit_offsets[b_lo]) >> 3
                byte_hi = (int(chunk_ends[b_hi - 1]) + 7) >> 3
                tasks.append((bytes(self._buf.view(bits_at + byte0, bits_at + byte_hi)),
                              length_table,
                              bit_offsets[b_lo:b_hi] - (byte0 << 3),
                              sym_counts[b_lo:b_hi],
                              chunk_ends[b_lo:b_hi] - (byte0 << 3)))
            decoded = self.backend.map(_decode_band_task, tasks,
                                       workers=workers, chunksize=1)
            for (b_lo, b_hi), band_out in zip(bands, decoded):
                base = int(sym_starts[b_lo])
                self._out[base:base + band_out.size] = band_out
        else:
            # narrow burst: rebase the ready band onto its zero-copy window
            # and run the in-process kernels directly
            byte0 = int(bit_offsets[lo]) >> 3
            byte_hi = (int(chunk_ends[hi - 1]) + 7) >> 3
            bit_bytes = np.frombuffer(
                self._buf.view(bits_at + byte0, bits_at + byte_hi), dtype=np.uint8)
            rel_offsets = bit_offsets[lo:hi] - (byte0 << 3)
            rel_ends = chunk_ends[lo:hi] - (byte0 << 3)
            band_starts = sym_starts[lo:hi] - int(sym_starts[lo])
            band_out = np.empty(int(sym_counts[lo:hi].sum()), dtype=np.int64)
            if hi - lo < _MIN_VECTOR_CHUNKS:
                HuffmanCoder._decode_scalar(bit_bytes, rel_offsets, sym_counts[lo:hi],
                                            band_starts, rel_ends, table_sym,
                                            table_len, band_out)
            else:
                steps_cap = int(sym_counts[lo:hi].max())
                w24 = _byte_windows(bit_bytes,
                                    3 + (steps_cap * MAX_CODE_LENGTH + 7) // 8)
                comb = (table_sym << 5) | table_len
                HuffmanCoder._decode_band_vectorized(
                    w24, comb, rel_offsets, sym_counts[lo:hi], band_starts,
                    rel_ends, band_out)
            base = int(sym_starts[lo])
            self._out[base:base + band_out.size] = band_out
        self._next_chunk = hi


#: Bytes of vectorized-emission scratch per (symbol, bit-position) matrix
#: cell: the ``shift`` int64 (8) + ``valid`` bool (1) + ``shifted`` uint64 (8)
#: + ``bits`` uint8 (1) temporaries of the bit-emission kernel.
_EMIT_SCRATCH_PER_CELL = 18


class ChunkBandProducer:
    """Incremental encoder for v3 ``HUF3`` streams: the twin of
    :class:`ChunkBandConsumer`.

    The encoder has every symbol in memory before the first bit is packed, so
    after one cheap symbol pass (histogram, code lengths, canonical codes,
    chunk geometry) the *entire* header — code-length table, per-chunk
    ``(bit_offset, symbol_count)`` index, and total bit count — is pinned:
    :attr:`pinned_header` and :attr:`stream_length` are available before any
    band exists.  :meth:`bands` then emits each chunk's packed code bits the
    moment that chunk's symbols are coded, in chunk order, cut at byte
    boundaries so the concatenated bands are bit-identical to the batch
    encoder's single :func:`numpy.packbits` pass.

    Packing per chunk instead of per stream also bounds the vectorized
    emission scratch (the ``symbols x max_code_length`` bit matrix) to one
    chunk: :attr:`peak_scratch_bytes` reports the analytic high-water mark,
    which is what the round engine surfaces as encode scratch.

    The one field that cannot be pinned early is the stream CRC-32 at byte
    offset 4: it covers the packed bands, so :meth:`magic_and_crc` only
    becomes available once :meth:`bands` is exhausted.  Consumers that need
    the stream in byte order therefore stage bands until the prefix is
    released — :meth:`chunks` does exactly that and yields the byte-order
    stream (prefix, pinned header, then each band), whose concatenation
    equals :meth:`HuffmanCoder.encode` for the same ``chunk_size``.  See the
    producer-side framing contract in FORMATS.md.
    """

    def __init__(self, symbols: np.ndarray,
                 chunk_size: int = DEFAULT_CHUNK_SYMBOLS,
                 lengths: "np.ndarray | None" = None) -> None:
        if not 1 <= chunk_size <= 0xFFFFFFFF:
            raise ValueError("chunk_size must be in [1, 2**32 - 1] (stored as u32)")
        symbols = np.ascontiguousarray(symbols).ravel()
        if symbols.size and symbols.min() < 0:
            raise ValueError("Huffman symbols must be non-negative")
        self._count = count = symbols.size
        self._crc: "int | None" = None
        self._bands_done = count == 0
        if count == 0:
            self.n_chunks = 0
            self.code_lengths: "bytes | None" = None
            self.pinned_header = _HEADER.pack(0, 0, chunk_size, 0) + \
                struct.pack("<Q", 0)
            self._crc = zlib.crc32(self.pinned_header)
            self.stream_length = _PREFIX_LEN + len(self.pinned_header)
            self.peak_scratch_bytes = 0
            return
        self._symbols = symbols = symbols.astype(np.int64, copy=False)
        pinned = lengths is not None
        if pinned:
            # a pinned table from a previous build (warm codebook reuse);
            # it must cover the whole alphabet — an uncovered symbol would
            # produce an undecodable stream, so fail loudly here
            lengths = np.asarray(lengths, dtype=np.int64)
            alphabet = lengths.size
            if alphabet == 0 or int(symbols.max()) >= alphabet:
                raise ValueError("pinned code-length table does not cover the "
                                 "symbol alphabet")
            if int(lengths.max()) > MAX_CODE_LENGTH:
                raise ValueError(f"pinned code length exceeds {MAX_CODE_LENGTH}")
        else:
            alphabet = int(symbols.max()) + 1
            freqs = np.bincount(symbols, minlength=alphabet)
            lengths = _build_code_lengths(freqs)
        self._codes = _canonical_codes(lengths).astype(np.uint64)
        self._sym_lengths = lengths[symbols]
        if pinned and int(self._sym_lengths.min()) == 0:
            raise ValueError("pinned code-length table assigns no code to a "
                             "present symbol")
        self._max_len = int(lengths.max())
        bit_ends = np.cumsum(self._sym_lengths)
        total_bits = int(bit_ends[-1])

        chunk = min(chunk_size, max(_MIN_CHUNK_SYMBOLS, count // _TARGET_CHUNKS))
        self._starts = starts = np.arange(0, count, chunk, dtype=np.int64)
        self.n_chunks = starts.size
        offsets = np.zeros(starts.size, dtype=np.uint64)
        offsets[1:] = bit_ends[starts[1:] - 1].astype(np.uint64)
        index = np.empty((starts.size, 2), dtype="<u8")
        index[:, 0] = offsets
        index[:, 1] = np.minimum(chunk, count - starts).astype(np.uint64)

        self.code_lengths = lengths.astype(np.uint8).tobytes()
        header = bytearray(_HEADER.size + alphabet + 16 * starts.size + 8)
        _HEADER.pack_into(header, 0, alphabet, count, chunk, starts.size)
        pos = _HEADER.size
        header[pos:pos + alphabet] = self.code_lengths
        pos += alphabet
        header[pos:pos + 16 * starts.size] = index.tobytes()
        pos += 16 * starts.size
        struct.pack_into("<Q", header, pos, total_bits)
        self.pinned_header = bytes(header)
        self._total_bits = total_bits
        self.stream_length = _PREFIX_LEN + len(self.pinned_header) + \
            (total_bits + 7) // 8
        widest = int(index[:, 1].max())
        self.peak_scratch_bytes = widest * self._max_len * _EMIT_SCRATCH_PER_CELL

    def bands(self):
        """Yield each chunk's packed code bits the moment the chunk is coded.

        Bands are cut at byte boundaries (leftover bits carry into the next
        band; the final band is zero-padded), so their concatenation equals
        the batch encoder's packed bit stream byte for byte.  The running
        CRC-32 folds each band in as it is packed; :meth:`magic_and_crc`
        unlocks when the generator is exhausted.
        """
        if self._count == 0:
            return
        crc = zlib.crc32(self.pinned_header)
        carry = np.zeros(0, dtype=np.uint8)
        bitpos = np.arange(self._max_len, dtype=np.int64)
        emitted = 0
        for k in range(self.n_chunks):
            s0 = int(self._starts[k])
            s1 = int(self._starts[k + 1]) if k + 1 < self.n_chunks else self._count
            chunk_lens = self._sym_lengths[s0:s1]
            chunk_codes = self._codes[self._symbols[s0:s1]]
            shift = chunk_lens[:, None] - 1 - bitpos[None, :]
            valid = shift >= 0
            shifted = chunk_codes[:, None] >> np.maximum(shift, 0).astype(np.uint64)
            bits = (shifted & np.uint64(1)).astype(np.uint8)[valid]
            if carry.size:
                bits = np.concatenate([carry, bits])
            if k + 1 < self.n_chunks:
                cut = bits.size & ~7  # pack whole bytes, carry the remainder
                band = np.packbits(bits[:cut]).tobytes()
                carry = bits[cut:]
                emitted += cut
            else:
                band = np.packbits(bits).tobytes()
                emitted += bits.size
                carry = np.zeros(0, dtype=np.uint8)
            crc = zlib.crc32(band, crc)
            self._crc = crc
            yield band
        if emitted != self._total_bits:
            raise RuntimeError("producer emitted a different bit count than "
                               "the pinned index declares")
        self._bands_done = True

    def magic_and_crc(self) -> bytes:
        """The 8-byte stream prefix (magic + CRC-32 of everything after it).

        The CRC covers the packed bands, so this is only available once
        :meth:`bands` has been exhausted (immediately for an empty stream).
        """
        if not self._bands_done:
            raise ValueError("the HUF3 CRC covers the packed bands; drain "
                             "bands() before reading the stream prefix")
        return _MAGIC + struct.pack("<I", self._crc)

    def chunks(self):
        """Byte-order view of the stream: prefix, pinned header, then bands.

        Because the CRC at offset 4 is pinned last, bands are staged
        internally until packing completes; the staging high-water mark is
        the packed bit stream itself, never the emission scratch.  The
        concatenation of the yielded pieces is byte-identical to
        :meth:`HuffmanCoder.encode` at the same ``chunk_size``.
        """
        staged = list(self.bands())
        yield self.magic_and_crc()
        yield self.pinned_header
        while staged:
            yield staged.pop(0)


class HuffmanCoder:
    """Encode/decode streams of non-negative integer symbols.

    ``chunk_size`` caps the number of symbols per chunk (the encoder may pick
    smaller chunks for short streams, see :data:`_TARGET_CHUNKS`).
    ``max_workers`` is the default decode concurrency: ``1`` selects the
    sequential reference decoder, larger values (or ``None`` for the backend
    default) the banded vectorized decoder.  ``backend`` names the
    :class:`~repro.utils.parallel.ExecutionBackend` the bands are dispatched
    on (``"serial"`` always runs the reference decoder).  Every combination
    produces bit-identical symbol arrays; instances are stateless per call,
    thread-safe, and picklable.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SYMBOLS,
                 max_workers: int | None = 1,
                 backend: "str | ExecutionBackend" = "thread") -> None:
        if not 1 <= chunk_size <= 0xFFFFFFFF:
            raise ValueError("chunk_size must be in [1, 2**32 - 1] (stored as u32)")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.chunk_size = int(chunk_size)
        self.max_workers = max_workers
        self.backend = get_backend(backend)

    # ------------------------------------------------------------------
    def _effective_chunk(self, count: int) -> int:
        """Symbols per chunk for a ``count``-symbol stream (never above the cap)."""
        return min(self.chunk_size, max(_MIN_CHUNK_SYMBOLS, count // _TARGET_CHUNKS))

    def encode(self, symbols: np.ndarray,
               lengths: "np.ndarray | None" = None) -> bytes:
        """Encode ``symbols`` (any integer dtype, values >= 0) to bytes.

        The stream is assembled chunk by chunk through
        :class:`ChunkBandProducer` into one preallocated buffer: packing per
        chunk bounds the vectorized-emission scratch to a single chunk's bit
        matrix instead of the whole stream's, and the single output buffer
        replaces the former chain of intermediate ``bytes`` concatenations.
        ``lengths`` optionally pins a code-length table from a previous build
        (warm codebook reuse), skipping the histogram + tree construction.
        """
        return self.assemble(ChunkBandProducer(symbols, self.chunk_size,
                                               lengths=lengths))

    @staticmethod
    def assemble(producer: ChunkBandProducer) -> bytes:
        """Drain ``producer`` into one contiguous stream buffer."""
        out = bytearray(producer.stream_length)
        pos = _PREFIX_LEN + len(producer.pinned_header)
        out[_PREFIX_LEN:pos] = producer.pinned_header
        for band in producer.bands():
            out[pos:pos + len(band)] = band
            pos += len(band)
        out[:_PREFIX_LEN] = producer.magic_and_crc()
        return bytes(out)

    def stream_producer(self, symbols: np.ndarray,
                        lengths: "np.ndarray | None" = None) -> ChunkBandProducer:
        """Return a :class:`ChunkBandProducer` over ``symbols``.

        The producer uses this coder's ``chunk_size``, so its byte-order
        stream (:meth:`ChunkBandProducer.chunks`) concatenates to exactly
        what :meth:`encode` returns.  ``lengths`` optionally pins a
        code-length table exactly as in :meth:`encode`.
        """
        return ChunkBandProducer(symbols, self.chunk_size, lengths=lengths)

    def stream_consumer(self, max_workers: int | None = None,
                        backend: "str | ExecutionBackend | None" = None
                        ) -> ChunkBandConsumer:
        """Return a :class:`ChunkBandConsumer` for incremental decoding.

        ``max_workers`` / ``backend`` default to this coder's configuration,
        matching what :meth:`decode` would use, so a streaming decode is
        bit-identical to the batch path under the same settings.
        """
        return ChunkBandConsumer(
            max_workers=self.max_workers if max_workers is None else max_workers,
            backend=self.backend if backend is None else backend)

    # ------------------------------------------------------------------
    def _parse_header(self, payload: bytes):
        """Validate the v3 container and return its parsed fields.

        Every declared length is bounds-checked against the remaining buffer
        (truncation can never surface as ``struct.error`` or ``IndexError``)
        and the CRC covers everything after itself, so any byte flip in the
        payload is detected here.
        """
        _require(payload, 0, _PREFIX_LEN + _HEADER.size, "header")
        if payload[:4] != _MAGIC:
            raise _corrupt("bad magic (not a version-3 Huffman stream)")
        (crc_stored,) = struct.unpack_from("<I", payload, 4)
        if zlib.crc32(memoryview(payload)[_PREFIX_LEN:]) != crc_stored:
            raise _corrupt("CRC-32 mismatch")
        alphabet, count, chunk_size, n_chunks = _HEADER.unpack_from(payload, _PREFIX_LEN)
        offset = _PREFIX_LEN + _HEADER.size

        _require(payload, offset, alphabet, "code-length table")
        lengths = np.frombuffer(payload, dtype=np.uint8, count=alphabet,
                                offset=offset).astype(np.int64)
        offset += alphabet

        _require(payload, offset, 16 * n_chunks, "chunk index")
        index = np.frombuffer(payload, dtype="<u8", count=2 * n_chunks,
                              offset=offset).reshape(n_chunks, 2).astype(np.int64)
        offset += 16 * n_chunks

        _require(payload, offset, 8, "total bit count")
        (total_bits,) = struct.unpack_from("<Q", payload, offset)
        offset += 8
        if len(payload) - offset != (total_bits + 7) // 8:
            raise _corrupt(f"bit stream holds {len(payload) - offset} bytes but "
                           f"{total_bits} bits are declared")

        if count == 0:
            if n_chunks != 0 or total_bits != 0:
                raise _corrupt("empty stream declares chunks or bits")
            return lengths, index, 0, 0, offset
        if chunk_size < 1 or n_chunks != -(-count // chunk_size):
            raise _corrupt(f"{n_chunks} chunks cannot cover {count} symbols "
                           f"at {chunk_size} symbols per chunk")
        sym_counts = index[:, 1]
        expected = np.full(n_chunks, chunk_size, dtype=np.int64)
        expected[-1] = count - (n_chunks - 1) * chunk_size
        if not np.array_equal(sym_counts, expected):
            raise _corrupt("chunk symbol counts disagree with the stream length")
        bit_offsets = index[:, 0]
        spans = np.diff(np.concatenate([bit_offsets, [total_bits]]))
        if bit_offsets[0] != 0 or np.any(spans < sym_counts) or \
                np.any(spans > sym_counts * MAX_CODE_LENGTH):
            raise _corrupt("chunk bit offsets are inconsistent with their symbol counts")
        return lengths, index, count, total_bits, offset

    def decode(self, payload: bytes, max_workers: int | None = None,
               backend: "str | ExecutionBackend | None" = None) -> np.ndarray:
        """Decode a byte string produced by :meth:`encode` back to ``int64``.

        ``max_workers`` and ``backend`` override the instance defaults for
        this call; one worker (or the ``serial`` backend) runs the sequential
        reference decoder, more the banded vectorized one (identical output
        either way).
        """
        lengths, index, count, total_bits, bits_at = self._parse_header(payload)
        if count == 0:
            return np.zeros(0, dtype=np.int64)

        n_chunks = index.shape[0]
        bit_offsets = index[:, 0]
        sym_counts = index[:, 1]
        sym_starts = np.concatenate([[0], np.cumsum(sym_counts)[:-1]])
        chunk_ends = np.concatenate([bit_offsets[1:], [total_bits]])
        bit_bytes = np.frombuffer(payload, dtype=np.uint8, offset=bits_at)

        exec_backend = self.backend if backend is None else get_backend(backend)
        workers = self.max_workers if max_workers is None else max_workers
        workers = exec_backend.resolve_workers(workers, n_chunks)
        if workers == 1 or n_chunks < _MIN_VECTOR_CHUNKS:
            table_sym, table_len = _decode_tables_cached(lengths.astype(np.uint8).tobytes())
            out = np.empty(count, dtype=np.int64)
            self._decode_scalar(bit_bytes, bit_offsets, sym_counts, sym_starts,
                                chunk_ends, table_sym, table_len, out)
            return out

        # Band the chunks and fan the bands out over the execution backend.
        # On a GIL-bound backend never split finer than the core count — a
        # band's cost is dominated by its per-step dispatch overhead, so extra
        # narrower bands only help while they actually run concurrently; a
        # process pool's workers always do, so there the knob is honoured.
        cap = workers if not exec_backend.gil_bound else \
            min(workers, os.cpu_count() or 1)
        n_bands = max(1, min(cap, n_chunks // _MIN_VECTOR_CHUNKS))
        edges = np.linspace(0, n_chunks, n_bands + 1).astype(int)
        length_table = lengths.astype(np.uint8).tobytes()

        tasks = []
        bands = [(int(edges[b]), int(edges[b + 1])) for b in range(n_bands)
                 if edges[b] < edges[b + 1]]
        for lo, hi in bands:
            # rebase the band onto its own byte slice so the task is a small,
            # self-contained (and cheaply picklable) unit of work
            byte0 = int(bit_offsets[lo]) >> 3
            byte_hi = (int(chunk_ends[hi - 1]) + 7) >> 3
            tasks.append((bit_bytes[byte0:byte_hi].tobytes(), length_table,
                          bit_offsets[lo:hi] - (byte0 << 3),
                          sym_counts[lo:hi],
                          chunk_ends[lo:hi] - (byte0 << 3)))
        decoded_bands = exec_backend.map(_decode_band_task, tasks,
                                         workers=workers, chunksize=1)
        out = np.empty(count, dtype=np.int64)
        for (lo, hi), band_out in zip(bands, decoded_bands):
            base = int(sym_starts[lo])
            out[base:base + band_out.size] = band_out
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _decode_scalar(bit_bytes: np.ndarray, bit_offsets: np.ndarray,
                       sym_counts: np.ndarray, sym_starts: np.ndarray,
                       chunk_ends: np.ndarray, table_sym: np.ndarray,
                       table_len: np.ndarray, out: np.ndarray) -> None:
        """Sequential per-symbol reference decoder (``max_workers=1``)."""
        w24 = _byte_windows(bit_bytes, 3)
        tbl_sym = table_sym.tolist()
        tbl_len = table_len.tolist()
        for c in range(bit_offsets.size):
            start, end = int(bit_offsets[c]), int(chunk_ends[c])
            n_syms = int(sym_counts[c])
            byte0 = start >> 3
            local = w24[byte0:((end - 1) >> 3) + 2].tolist()
            pos = start - (byte0 << 3)
            rel_end = end - (byte0 << 3)
            decoded = [0] * n_syms
            for i in range(n_syms):
                if pos >= rel_end:
                    raise _corrupt("chunk decoded past its recorded boundary")
                window = (local[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF
                length = tbl_len[window]
                if length == 0:
                    raise _corrupt("bit window matches no codeword")
                decoded[i] = tbl_sym[window]
                pos += length
            if pos != rel_end:
                raise _corrupt("chunk did not decode to its recorded boundary")
            base = int(sym_starts[c])
            out[base:base + n_syms] = decoded

    @staticmethod
    def _decode_band_vectorized(w24: np.ndarray, comb: np.ndarray,
                                bit_offsets: np.ndarray, sym_counts: np.ndarray,
                                sym_starts: np.ndarray, chunk_ends: np.ndarray,
                                out: np.ndarray) -> None:
        """Decode one band of chunks as a vectorized row walk.

        Every step advances all chunk cursors by one symbol: gather the 16-bit
        window under each cursor, look up ``(symbol << 5) | length`` in the
        combined table, store the row, advance.  An unused window entry has
        length 0, so a corrupt chunk's cursor stalls (or drifts) and fails the
        final boundary comparison.
        """
        width = bit_offsets.size
        cursors = bit_offsets.astype(np.int64).copy()
        steps = int(sym_counts.max())
        decoded = np.empty((steps, width), dtype=np.int64)
        # Chunk sizes are uniform except for the stream's trailing chunk; its
        # cursor is snapshotted when it runs out of symbols (the row keeps
        # walking harmlessly inside the padded windows, and its surplus
        # symbols are never copied out).
        short_rows = {int(r): int(sym_counts[r])
                      for r in np.flatnonzero(sym_counts < steps)}
        frozen: dict[int, int] = {}
        shifts = np.empty(width, dtype=np.int64)
        windows = np.empty(width, dtype=np.int64)
        for step in range(steps):
            for row, row_syms in short_rows.items():
                if step == row_syms:
                    frozen[row] = int(cursors[row])
            np.right_shift(cursors, 3, out=shifts)
            np.take(w24, shifts, out=windows)
            np.bitwise_and(cursors, 7, out=shifts)
            np.subtract(8, shifts, out=shifts)
            np.right_shift(windows, shifts, out=windows)
            np.bitwise_and(windows, 0xFFFF, out=windows)
            row_out = decoded[step]
            np.take(comb, windows, out=row_out)
            np.bitwise_and(row_out, 31, out=shifts)
            cursors += shifts
        for row, cursor in frozen.items():
            cursors[row] = cursor
        if not np.array_equal(cursors, chunk_ends):
            raise _corrupt("chunk did not decode to its recorded boundary")
        for c in range(width):
            n_syms = int(sym_counts[c])
            base = int(sym_starts[c])
            out[base:base + n_syms] = decoded[:n_syms, c] >> 5

    def decode_with_table(self, payload: bytes) -> np.ndarray:
        """Alias of :meth:`decode` kept for API symmetry with fast decoders."""
        return self.decode(payload)

"""Round-engine concurrency: parallel workers vs the sequential reference.

An 8-client FedAvg round over a simulated 2 Mbps uplink (``simulate_delay=True``,
the paper's MPI-delay-injection methodology) is executed sequentially
(``max_workers=1``) and with a 4-thread worker pool.  The parallel engine must
be measurably faster in wall clock — the injected per-client transfer delays
overlap across threads, and on multicore hosts the BLAS-heavy training does
too — while reproducing the sequential accuracies and byte counts bit-for-bit.
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_utils import fl_settings, quick_fl_data, save_results
from repro.core import NetworkModel
from repro.fl import FederatedSimulation, RawUpdateCodec
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model

N_CLIENTS = 8
WORKERS = 4
ROUNDS = 2
BANDWIDTH_MBPS = 2.0


def _build_simulation(train, test, cfg, max_workers: int) -> FederatedSimulation:
    def factory():
        return build_model(cfg["model"], num_classes=10, in_channels=3,
                           image_size=cfg["image_size"], seed=0)

    network = NetworkModel(bandwidth_mbps=BANDWIDTH_MBPS, simulate_delay=True)
    return FederatedSimulation(factory, train, test, n_clients=N_CLIENTS,
                               codec=RawUpdateCodec(), network=network,
                               batch_size=cfg["batch_size"], lr=cfg["lr"], seed=11,
                               max_workers=max_workers, uplink="parallel")


def bench_round_engine(benchmark):
    cfg = fl_settings()
    train, test = quick_fl_data("cifar10", seed=47)

    def run():
        walls = {}
        results = {}
        for workers in (1, WORKERS):
            sim = _build_simulation(train, test, cfg, workers)
            start = time.perf_counter()
            results[workers] = sim.run(ROUNDS)
            walls[workers] = time.perf_counter() - start
        return walls, results

    walls, results = benchmark.pedantic(run, rounds=1, iterations=1)
    sequential, parallel = results[1], results[WORKERS]
    speedup = walls[1] / walls[WORKERS]

    table = Table(f"Round engine - {N_CLIENTS} clients, {ROUNDS} rounds, "
                  f"{BANDWIDTH_MBPS:g} Mbps simulated uplink",
                  ["workers", "wall (s)", "speedup", "final acc", "upload (KB)"])
    record = ExperimentRecord("round_engine",
                              "parallel round engine vs sequential reference")
    for workers in (1, WORKERS):
        result = results[workers]
        table.add_row(workers, f"{walls[workers]:.2f}",
                      f"{walls[1] / walls[workers]:.2f}x",
                      f"{result.final_accuracy:.1%}",
                      f"{result.total_transmitted_bytes / 1e3:.1f}")
        record.add(workers=workers, wall_seconds=walls[workers],
                   final_accuracy=result.final_accuracy,
                   transmitted_bytes=result.total_transmitted_bytes)
    record.add(speedup=speedup)
    save_results("round_engine", table, record)

    # The parallel engine must reproduce the sequential reference bit-for-bit...
    assert parallel.accuracies == sequential.accuracies
    assert [r.transmitted_bytes for r in parallel.rounds] == \
        [r.transmitted_bytes for r in sequential.rounds]
    assert [r.communication_seconds for r in parallel.rounds] == \
        [r.communication_seconds for r in sequential.rounds]
    assert np.all([r.client_losses == s.client_losses
                   for r, s in zip(parallel.rounds, sequential.rounds)])
    # ... while finishing measurably sooner (transfer delays overlap).  The
    # timing assertion is skipped on shared CI runners, where scheduling noise
    # on a loaded 2-core box would make a single-round wall-clock comparison
    # flaky; the table above still reports the measured speedup there.
    if not os.environ.get("CI"):
        assert walls[WORKERS] < walls[1] * 0.8, \
            f"expected >1.25x speedup, got {speedup:.2f}x"

"""Tests for the error-bounded linear quantizer."""

import numpy as np
import pytest

from repro.compressors.quantizer import LinearQuantizer


class TestQuantize:
    def test_error_bound_respected(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, 5000)
        predictions = data + rng.normal(0, 0.1, 5000)
        bound = 0.01
        q = LinearQuantizer().quantize(data, predictions, bound)
        assert np.max(np.abs(q.reconstructed - data)) <= bound + 1e-12

    def test_perfect_prediction_gives_central_code(self):
        data = np.ones(10)
        quantizer = LinearQuantizer(radius=4)
        q = quantizer.quantize(data, data.copy(), 0.1)
        np.testing.assert_array_equal(q.codes, np.full(10, 5))  # radius + 1
        assert q.outliers.size == 0

    def test_outliers_flagged_and_exact(self):
        quantizer = LinearQuantizer(radius=2)
        data = np.array([0.0, 100.0, 0.0])
        predictions = np.zeros(3)
        q = quantizer.quantize(data, predictions, 0.01)
        assert q.codes[1] == 0
        assert q.outliers.size == 1
        np.testing.assert_allclose(q.reconstructed, data)

    def test_dequantize_matches_reconstruction(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0, 0.05, 1000)
        predictions = np.zeros(1000)
        quantizer = LinearQuantizer(radius=64)
        q = quantizer.quantize(data, predictions, 1e-3)
        recon = quantizer.dequantize(q.codes, q.outliers, predictions, 1e-3)
        np.testing.assert_allclose(recon, q.reconstructed)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            LinearQuantizer().quantize(np.zeros(3), np.zeros(4), 0.1)

    def test_nonpositive_bound_raises(self):
        with pytest.raises(ValueError):
            LinearQuantizer().quantize(np.zeros(3), np.zeros(3), 0.0)

    def test_invalid_radius_raises(self):
        with pytest.raises(ValueError):
            LinearQuantizer(radius=0)

    def test_dequantize_missing_outliers_raises(self):
        quantizer = LinearQuantizer(radius=1)
        codes = np.array([0, 0])
        with pytest.raises(ValueError):
            quantizer.dequantize(codes, np.array([1.0]), np.zeros(2), 0.1)


class TestOutlierPacking:
    def test_pack_unpack_roundtrip(self):
        values = np.array([1.5, -2.25, 1e-30])
        payload = LinearQuantizer.pack_outliers(values)
        out, offset = LinearQuantizer.unpack_outliers(payload)
        np.testing.assert_array_equal(out, values)
        assert offset == len(payload)

    def test_pack_empty(self):
        payload = LinearQuantizer.pack_outliers(np.array([]))
        out, offset = LinearQuantizer.unpack_outliers(payload)
        assert out.size == 0
        assert offset == 8

    def test_unpack_with_offset(self):
        values = np.array([3.0, 4.0])
        payload = b"PREFIX" + LinearQuantizer.pack_outliers(values)
        out, _ = LinearQuantizer.unpack_outliers(payload, offset=6)
        np.testing.assert_array_equal(out, values)

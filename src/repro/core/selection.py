"""Compressor and error-bound selection (Problems 1 and 2, Section IV).

Problem 1 (Eqn. 2): among candidate EBLCs and error bounds, maximize the
compression ratio and minimize the runtime subject to the runtime staying below
the uncompressed transfer time and the ratio staying in ``[1, S]``.

Problem 2 (Eqn. 3): choose the error bound that minimizes communication cost
while keeping the inference-accuracy drop within a tolerance.

Both are solved by exhaustive evaluation over the (small) candidate grid, which
is exactly how the paper arrives at SZ2 + REL 1e-2.  The measurement machinery
lives in :mod:`repro.core.profiling` — :func:`select_compressor` is a thin
wrapper over a :class:`~repro.core.profiling.CodecProfiler` that keeps the
historic grid-of-evaluations API, adds the *full* Eqn.-1 feasibility check
(``t_C + t_D + S'/B < S/B``, not just ``t_C`` against the transfer time), and
optionally scales host timings to an edge device via
:class:`~repro.core.network.DeviceProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.compressors.base import ErrorBoundMode
from repro.core.network import DeviceProfile, compression_is_worthwhile
from repro.core.profiling import CodecProfiler, CostModel

__all__ = ["CandidateEvaluation", "select_compressor", "select_error_bound"]


@dataclass
class CandidateEvaluation:
    """Measured behaviour of one (compressor, error bound) candidate.

    Timings are host-measured (or cost-model-derived) seconds, scaled by the
    :class:`DeviceProfile` when one was passed to :func:`select_compressor`.
    """

    compressor: str
    error_bound: float
    ratio: float
    compress_seconds: float
    decompress_seconds: float
    max_abs_error: float
    feasible: bool

    @property
    def runtime(self) -> float:
        """Total compression + decompression runtime."""
        return self.compress_seconds + self.decompress_seconds


def _score(candidate: CandidateEvaluation, runtime_weight: float) -> float:
    """Scalarization of the two objectives (higher is better)."""
    return candidate.ratio - runtime_weight * candidate.runtime


def select_compressor(data: np.ndarray, candidates: Sequence[str] = ("sz2", "sz3", "szx", "zfp"),
                      error_bounds: Iterable[float] = (1e-2, 1e-3, 1e-4),
                      mode: ErrorBoundMode | str = ErrorBoundMode.REL,
                      bandwidth_mbps: float = 10.0, runtime_weight: float = 0.5,
                      latency_s: float = 0.0,
                      device: DeviceProfile | None = None,
                      cost_model: "CostModel | str | None" = None,
                      sample_limit: int | None = None,
                      ) -> tuple[CandidateEvaluation, list[CandidateEvaluation]]:
    """Solve Problem 1 on ``data`` by measuring every candidate.

    Returns the selected candidate (the best feasible scalarized score) and the
    full evaluation grid so callers can report the whole Table I-style
    comparison.  Feasibility is the paper's Eqn. (1) in full: compressing,
    shipping the smaller payload, and decompressing must beat shipping the
    original bytes over the same link, with the ratio in ``[1, S]``.

    ``device`` scales the host-measured timings to an edge device (Table I's
    Raspberry-Pi-class client) before the feasibility check; ``cost_model``
    (``"analytic"`` or a :class:`~repro.core.profiling.CostModel`) replaces the
    wall clock for deterministic selection; ``sample_limit`` profiles a seeded
    contiguous sample instead of the whole array (``None``, the default,
    measures everything — the historic behaviour).
    """
    data = np.asarray(data)
    if data.size == 0:
        raise ValueError("cannot select a compressor for empty data")
    profiler = CodecProfiler(candidates=candidates, error_bounds=error_bounds,
                             mode=mode, sample_limit=sample_limit,
                             cost_model=cost_model)
    profile = profiler.profile_tensor("select", data)
    evaluations: list[CandidateEvaluation] = []
    for measurement in profile.measurements:
        compress_s, decompress_s = profile.estimated_roundtrip_seconds(
            measurement, device=device)
        feasible = (compression_is_worthwhile(
            compress_s, decompress_s, data.nbytes,
            profile.estimated_compressed_bytes(measurement),
            bandwidth_mbps, latency_s)
            and 1.0 <= measurement.ratio <= data.size)
        evaluations.append(CandidateEvaluation(
            compressor=measurement.codec,
            error_bound=measurement.error_bound,
            ratio=measurement.ratio,
            compress_seconds=compress_s,
            decompress_seconds=decompress_s,
            max_abs_error=measurement.max_abs_error,
            feasible=feasible,
        ))
    feasible_set = [e for e in evaluations if e.feasible]
    pool = feasible_set if feasible_set else evaluations
    best = max(pool, key=lambda e: _score(e, runtime_weight))
    return best, evaluations


def select_error_bound(accuracy_fn: Callable[[float], float],
                       cost_fn: Callable[[float], float],
                       error_bounds: Iterable[float] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1),
                       baseline_accuracy: float | None = None,
                       tolerance: float = 0.005) -> float:
    """Solve Problem 2: the largest bound whose accuracy stays within tolerance.

    ``accuracy_fn(eps)`` returns validation accuracy with FedSZ at bound
    ``eps``; ``cost_fn(eps)`` returns the communication cost (e.g. compressed
    bytes).  ``baseline_accuracy`` defaults to the accuracy at the smallest
    bound, which approximates the uncompressed model.  Among bounds whose
    accuracy drop is within ``tolerance`` the one with the lowest cost is
    returned; if no bound qualifies the most accurate bound is returned.
    """
    bounds = sorted(float(b) for b in error_bounds)
    if not bounds:
        raise ValueError("error_bounds must be non-empty")
    accuracies = {b: float(accuracy_fn(b)) for b in bounds}
    costs = {b: float(cost_fn(b)) for b in bounds}
    reference = baseline_accuracy if baseline_accuracy is not None else accuracies[bounds[0]]
    acceptable = [b for b in bounds if reference - accuracies[b] <= tolerance]
    if acceptable:
        return min(acceptable, key=lambda b: costs[b])
    return max(bounds, key=lambda b: accuracies[b])

"""Network transfer model and the compression-benefit criterion (Eqn. 1).

The paper's decision rule: compression pays off when
``t_C + t_D + S'/B_N < S/B_N`` — the time to compress, decompress, and ship the
smaller payload must beat shipping the original.  :func:`crossover_bandwidth`
solves the equality for ``B_N``, reproducing Figure 8's ~500 Mbps crossover.

:class:`DeviceProfile` translates compression timings measured on the host CPU
into the edge-device (Raspberry Pi 5 class) timings Table I reports, and
:class:`NetworkModel` turns payload sizes into transfer times for the simulated
bandwidths of Figures 7-9 (optionally sleeping, mirroring the paper's
MPI-delay-injection methodology).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "communication_time",
    "compression_is_worthwhile",
    "crossover_bandwidth",
    "NetworkModel",
    "DeviceProfile",
]


def communication_time(size_bytes: float, bandwidth_mbps: float, latency_s: float = 0.0) -> float:
    """Seconds to transfer ``size_bytes`` over a link of ``bandwidth_mbps`` (megabits/s)."""
    if bandwidth_mbps <= 0:
        raise ValueError("bandwidth must be positive")
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    return latency_s + (size_bytes * 8.0) / (bandwidth_mbps * 1e6)


def compression_is_worthwhile(compress_s: float, decompress_s: float, original_bytes: float,
                              compressed_bytes: float, bandwidth_mbps: float,
                              latency_s: float = 0.0) -> bool:
    """Evaluate Eqn. (1): does compressing reduce the end-to-end transfer time?"""
    with_compression = (compress_s + decompress_s
                        + communication_time(compressed_bytes, bandwidth_mbps, latency_s))
    without_compression = communication_time(original_bytes, bandwidth_mbps, latency_s)
    return with_compression < without_compression


def crossover_bandwidth(compress_s: float, decompress_s: float, original_bytes: float,
                        compressed_bytes: float) -> float:
    """Bandwidth (Mbps) at which compression stops being worthwhile.

    Below the returned bandwidth compression wins; above it the fixed
    compression cost dominates (Figure 8).  Returns ``inf`` when compression is
    free or removes no bytes are saved.
    """
    saved_bytes = original_bytes - compressed_bytes
    overhead = compress_s + decompress_s
    if overhead <= 0:
        return float("inf")
    if saved_bytes <= 0:
        return 0.0
    return (saved_bytes * 8.0) / (overhead * 1e6)


@dataclass(frozen=True)
class DeviceProfile:
    """Scales host-measured compute times to a target edge device.

    ``compute_factor`` is the ratio (target device time) / (host time); the
    default of 3.0 approximates a Raspberry Pi 5 relative to a workstation-class
    x86 core for NumPy-heavy workloads.  Used when reporting Table I-style edge
    timings from host measurements (the substitution is recorded in DESIGN.md).
    """

    name: str = "raspberry-pi-5"
    compute_factor: float = 3.0

    def scale(self, host_seconds: float) -> float:
        """Translate a host-measured duration to the profiled device."""
        return host_seconds * self.compute_factor


@dataclass
class NetworkModel:
    """A point-to-point link with fixed bandwidth and latency.

    ``simulate_delay=True`` reproduces the paper's methodology of injecting
    real sleeps proportional to the payload size into the communication path;
    with the default ``False`` the transfer time is returned analytically,
    which keeps the benchmark suite fast while producing identical numbers.
    """

    bandwidth_mbps: float = 10.0
    latency_s: float = 0.0
    simulate_delay: bool = False

    def transfer_time(self, size_bytes: float) -> float:
        """Seconds needed to move ``size_bytes`` across the link."""
        return communication_time(size_bytes, self.bandwidth_mbps, self.latency_s)

    def transfer(self, size_bytes: float) -> float:
        """Model one transfer; sleeps for the transfer time when simulating."""
        duration = self.transfer_time(size_bytes)
        if self.simulate_delay:
            time.sleep(duration)
        return duration

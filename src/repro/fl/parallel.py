"""Thread-pool execution of client training, encoding, and decoding.

The paper's APPFL deployment runs clients as MPI ranks; this module provides
the equivalent intra-round parallelism for the in-process simulator.  NumPy
releases the GIL inside its BLAS kernels, so training several clients in
threads overlaps most of the heavy matrix work without any extra process or
serialization machinery.

Concurrency knobs
-----------------

* ``max_workers=1`` — strictly sequential execution, bit-identical to a plain
  ``for`` loop (the deterministic reference the test suite pins the parallel
  path against).
* ``max_workers=N`` — up to ``N`` items in flight at once.
* ``max_workers=None`` — let the executor pick (``min(32, cpu_count + 4)``).

:class:`~repro.fl.simulation.FederatedSimulation` threads its ``max_workers``
setting through these helpers for all three per-client stages of a round
(train, encode, decode).  The generic mapping helpers live in
:mod:`repro.utils.parallel` (they are shared with the chunked Huffman decoder,
which sits below ``repro.fl`` in the layering) and are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

from typing import Sequence

from repro.fl.client import ClientUpdate, FLClient
from repro.utils.parallel import map_parallel, resolve_worker_count

__all__ = ["map_parallel", "resolve_worker_count", "train_clients_parallel"]


def train_clients_parallel(clients: Sequence[FLClient], global_state: dict,
                           epochs: int = 1, max_workers: int | None = None) -> list[ClientUpdate]:
    """Broadcast ``global_state`` to every client and train them concurrently.

    Returns the per-client :class:`ClientUpdate` objects in client order, ready
    for FedAvg aggregation.  Each client owns a private model replica (and
    ``receive_global`` copies the broadcast arrays), so no state is shared
    between the training threads.
    """
    for client in clients:
        client.receive_global(global_state)

    def _train(client: FLClient) -> ClientUpdate:
        return client.train_local(epochs=epochs)

    return map_parallel(_train, clients, max_workers=max_workers)

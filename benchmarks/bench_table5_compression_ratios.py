"""Table V: FedSZ compression ratios for every model, dataset, and error bound.

Runs the complete FedSZ pipeline (partition → SZ2 → blosc-lz → bitstream) on
each model built for each dataset's input shape, at relative error bounds from
1e-1 to 1e-4, and reports the end-to-end update compression ratio.
"""

from __future__ import annotations

import numpy as np

from bench_utils import PAPER_DATASETS, PAPER_MODELS, save_results, trained_like_state
from repro.core import FedSZCompressor, FedSZConfig
from repro.metrics import ExperimentRecord, Table, format_bound

BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4)

#: Paper Table V values (CIFAR-10 column) for the rendered side-by-side.
PAPER_CIFAR10 = {
    "alexnet": {1e-1: 54.54, 1e-2: 12.61, 1e-3: 5.54, 1e-4: 3.52},
    "mobilenetv2": {1e-1: 11.07, 1e-2: 5.39, 1e-3: 3.23, 1e-4: 1.94},
    "resnet50": {1e-1: 20.21, 1e-2: 7.02, 1e-3: 4.04, 1e-4: 2.73},
}


def bench_table5_compression_ratios(benchmark):
    def run():
        rows = []
        for dataset in PAPER_DATASETS:
            for model_name in PAPER_MODELS:
                state = trained_like_state(model_name, dataset=dataset, seed=3)
                for bound in BOUNDS:
                    fedsz = FedSZCompressor(FedSZConfig(error_bound=bound))
                    payload = fedsz.compress_state_dict(state)
                    report = fedsz.last_report
                    rows.append({
                        "dataset": dataset,
                        "model": model_name,
                        "bound": bound,
                        "ratio": report.ratio,
                        "lossy_ratio": report.lossy_ratio,
                        "compressed_bytes": len(payload),
                        "original_bytes": report.original_bytes,
                    })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Table V - FedSZ compression ratios (SZ2 + blosc-lz)",
                  ["dataset", "model", "REL bound", "ratio", "lossy-partition ratio",
                   "paper ratio (CIFAR-10)"])
    record = ExperimentRecord("table5", "FedSZ compression ratios per model/dataset/bound")
    for row in rows:
        paper = PAPER_CIFAR10.get(row["model"], {}).get(row["bound"]) if row["dataset"] == "cifar10" else None
        table.add_row(row["dataset"], row["model"], format_bound(row["bound"]),
                      f"{row['ratio']:.2f}x", f"{row['lossy_ratio']:.2f}x",
                      f"{paper:.2f}x" if paper else "-")
        record.add(**row)
    save_results("table5_compression_ratios", table, record)

    # Shape checks mirroring the paper's observations.
    for dataset in PAPER_DATASETS:
        for model_name in PAPER_MODELS:
            ratios = [r["ratio"] for r in rows
                      if r["dataset"] == dataset and r["model"] == model_name]
            assert ratios == sorted(ratios, reverse=True), "ratio must fall as the bound tightens"
    at_1e2 = [r["ratio"] for r in rows if r["bound"] == 1e-2]
    assert min(at_1e2) > 3.0, "every model should compress >3x at the recommended bound"
    alexnet_1e1 = np.mean([r["ratio"] for r in rows if r["model"] == "alexnet" and r["bound"] == 1e-1])
    mobilenet_1e1 = np.mean([r["ratio"] for r in rows if r["model"] == "mobilenetv2" and r["bound"] == 1e-1])
    assert alexnet_1e1 > mobilenet_1e1, "AlexNet compresses best at loose bounds (Table V)"

"""Tests for the persistent fleet runtime: long-lived pool scopes on the
execution backends, worker-resident clients in the coordinator, and the
durable drift-aware profile cache — plus the bit-identity matrix proving the
persistent path reproduces the fresh-pool reference exactly."""

import os
import pickle

import numpy as np
import pytest

from repro.core.config import FedSZConfig
from repro.core.profiling import CodecProfiler, ProfiledPolicy
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec
from repro.fl.client import FLClient
from repro.fl.coordinator.coordinator import TrainTask, _train_client_task
from repro.fl.coordinator.residency import (discard_fleet, install_fleet,
                                            resident_client)
from repro.nn import build_model
from repro.utils.parallel import get_backend


def _factory():
    return build_model("simplecnn", num_classes=10, in_channels=3, image_size=16, seed=0)


def _make_sim(tiny_split, **kwargs):
    train, test = tiny_split
    kwargs.setdefault("codec", RawUpdateCodec())
    kwargs.setdefault("lr", 0.1)
    kwargs.setdefault("seed", 5)
    return FederatedSimulation(_factory, train, test, **kwargs)


def _deterministic_fields(result):
    return [(r.accuracy, r.uncompressed_bytes, r.transmitted_bytes,
             r.communication_seconds, tuple(r.client_losses),
             tuple(r.participants)) for r in result.rounds]


# module-level and picklable for the process backend
def _square(x):
    return x * x


def _boom(x):
    if x == 2:
        raise ValueError("worker task failure")
    return x


# ---------------------------------------------------------------------------
# Persistent pool scope on the execution backends
# ---------------------------------------------------------------------------

class TestPersistentScope:
    def test_one_pool_serves_many_maps(self):
        backend = get_backend("thread")
        before = backend.pool_spinups
        with backend.persistent(2) as scope:
            assert scope is not None
            for _ in range(3):
                assert backend.map(_square, [1, 2, 3], workers=2) == [1, 4, 9]
            with backend.executor(workers=2) as pool:
                assert pool.submit(_square, 5).result() == 25
        assert backend.pool_spinups - before == 1

    def test_fresh_pools_without_scope(self):
        backend = get_backend("thread")
        before = backend.pool_spinups
        for _ in range(2):
            backend.map(_square, [1, 2, 3], workers=2)
        assert backend.pool_spinups - before == 2

    def test_scope_survives_worker_exception(self):
        """Satellite requirement: a failed map must not poison the pool."""
        backend = get_backend("thread")
        before = backend.pool_spinups
        with backend.persistent(2):
            with pytest.raises(ValueError, match="worker task failure"):
                backend.map(_boom, [1, 2, 3], workers=2)
            assert backend.map(_square, [1, 2, 3], workers=2) == [1, 4, 9]
        assert backend.pool_spinups - before == 1

    def test_serial_scope_is_noop_but_runs_initializer(self):
        backend = get_backend("serial")
        ran = []
        with backend.persistent(4, initializer=ran.append, initargs=(1,)) as scope:
            assert scope is None
            assert backend.map(_square, [2]) == [4]
        assert ran == [1]

    def test_single_worker_scope_degrades(self):
        backend = get_backend("thread")
        before = backend.pool_spinups
        with backend.persistent(1) as scope:
            assert scope is None
        assert backend.pool_spinups == before

    def test_pickled_backend_drops_scope_state(self):
        backend = get_backend("thread")
        with backend.persistent(2):
            clone = pickle.loads(pickle.dumps(backend))
            assert clone._active_scope() is None

    def test_process_scope_initializer_installs_state(self, tiny_split):
        """The process pool's initializer makes the fleet resident once."""
        train, _ = tiny_split
        client = FLClient(client_id=0, model=_factory(), dataset=train, seed=3)
        backend = get_backend("process")
        before = backend.pool_spinups
        with backend.persistent(2, initializer=install_fleet,
                                initargs=("t-proc", 0, {0: client})):
            task = TrainTask(client_id=0, epochs=1, round_index=0,
                             global_state=client.model.state_dict(),
                             fleet=("t-proc", 0))
            updates = backend.map(_train_client_task, [task, task], workers=2)
        assert len(updates) == 2
        assert updates[0].client_id == 0
        assert backend.pool_spinups - before == 1


# ---------------------------------------------------------------------------
# Worker-resident fleet registry
# ---------------------------------------------------------------------------

class TestResidency:
    def test_resolve_and_discard(self, tiny_split):
        train, _ = tiny_split
        client = FLClient(client_id=7, model=_factory(), dataset=train, seed=3)
        install_fleet("t-reg", 0, {7: client})
        try:
            assert resident_client("t-reg", 0, 7) is client
            with pytest.raises(LookupError, match="generation"):
                resident_client("t-reg", 1, 7)
            with pytest.raises(LookupError, match="not part of"):
                resident_client("t-reg", 0, 8)
        finally:
            discard_fleet("t-reg")
        with pytest.raises(LookupError, match="no resident fleet"):
            resident_client("t-reg", 0, 7)
        discard_fleet("t-reg")  # idempotent

    def test_reinstall_replaces_generation(self, tiny_split):
        train, _ = tiny_split
        a = FLClient(client_id=0, model=_factory(), dataset=train, seed=1)
        b = FLClient(client_id=0, model=_factory(), dataset=train, seed=2)
        install_fleet("t-gen", 0, {0: a})
        try:
            install_fleet("t-gen", 1, {0: b})
            assert resident_client("t-gen", 1, 0) is b
            with pytest.raises(LookupError):
                resident_client("t-gen", 0, 0)
        finally:
            discard_fleet("t-gen")


# ---------------------------------------------------------------------------
# Bit-identity: persistent runtime vs the fresh-pool path
# ---------------------------------------------------------------------------

class TestPersistentBitIdentity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matrix_matches_fresh_path(self, tiny_split, backend, workers):
        """Acceptance criterion: seeded records are bit-identical with
        persistent pools + worker-resident clients vs fresh pools, across
        serial/thread/process x workers {1, 4}."""
        fresh = _make_sim(tiny_split, n_clients=4, max_workers=workers,
                          backend=backend, persistent=False).run(2)
        persistent = _make_sim(tiny_split, n_clients=4, max_workers=workers,
                               backend=backend, persistent=True).run(2)
        assert _deterministic_fields(persistent) == _deterministic_fields(fresh)

    def test_fedsz_bitstreams_match_fresh_path(self, tiny_split):
        def run(persistent):
            codec = FedSZUpdateCodec(FedSZConfig(error_bound=1e-2))
            return _make_sim(tiny_split, n_clients=3, max_workers=3,
                             codec=codec, persistent=persistent).run(2)
        fresh, persistent = run(False), run(True)
        assert _deterministic_fields(persistent) == _deterministic_fields(fresh)

    def test_persistent_run_spins_one_pool(self, tiny_split):
        backend = get_backend("thread")
        before = backend.pool_spinups
        _make_sim(tiny_split, n_clients=4, max_workers=4,
                  backend="thread", persistent=True).run(2)
        assert backend.pool_spinups - before == 1


# ---------------------------------------------------------------------------
# Roster invalidation
# ---------------------------------------------------------------------------

class TestRosterInvalidation:
    def test_shared_memory_backend_bumps_generation(self, tiny_split):
        """Satellite requirement: worker-resident state is invalidated when
        the client roster changes between rounds."""
        train, _ = tiny_split
        sim = _make_sim(tiny_split, n_clients=4, max_workers=4, backend="thread")
        coord = sim.coordinator
        with coord.persistent_runtime():
            coord.run_round(0)
            resident = coord._resident
            assert resident.generation == 0
            replacement = FLClient(client_id=2, model=_factory(),
                                   dataset=coord.clients[2].dataset, seed=99)
            coord.clients[2] = replacement
            coord.run_round(1)
            assert resident.generation == 1
            assert resident.active
            # the registry now resolves the *new* client object
            assert resident_client(resident.token, 1, 2) is replacement

    def test_pickling_backend_deactivates_residency(self, tiny_split):
        # max_workers=1 keeps this cheap: the scope degrades inline but the
        # invalidation path is the same one a live process pool takes
        sim = _make_sim(tiny_split, n_clients=3, max_workers=1, backend="process")
        coord = sim.coordinator
        with coord.persistent_runtime():
            coord.run_round(0)
            resident = coord._resident
            replacement = FLClient(client_id=1, model=_factory(),
                                   dataset=coord.clients[1].dataset, seed=99)
            coord.clients[1] = replacement
            record = coord.run_round(1)
            assert resident.active is False
            # the round still trained the replacement via full-ship tasks
            assert len(record.client_losses) == 3

    def test_roster_change_matches_fresh_reference(self, tiny_split):
        """Invalidation is not just detected — the results stay correct."""
        def run(persistent):
            sim = _make_sim(tiny_split, n_clients=4, max_workers=4,
                            backend="thread", persistent=persistent)
            coord = sim.coordinator
            records = []
            with coord.persistent_runtime():
                records.append(coord.run_round(0))
                replacement = FLClient(client_id=0, model=_factory(),
                                       dataset=coord.clients[0].dataset,
                                       seed=coord.clients[0].seed)
                coord.clients[0] = replacement
                records.append(coord.run_round(1))
            return [(r.accuracy, tuple(r.client_losses), r.transmitted_bytes)
                    for r in records]
        assert run(True) == run(False)


# ---------------------------------------------------------------------------
# Durable profile cache
# ---------------------------------------------------------------------------

class TestDurableProfileCache:
    def _tensors(self, seed=0):
        rng = np.random.default_rng(seed)
        return {"w": rng.normal(size=(48, 32)).astype(np.float32),
                "b": rng.normal(size=(64,)).astype(np.float32)}

    def test_warm_start_is_measurement_free(self, tmp_path):
        path = tmp_path / "cache.json"
        cold = CodecProfiler(cost_model="analytic", profile_cache=path)
        profiles = cold.profile_tensors(self._tensors())
        assert cold.cache_info()["misses"] == 2
        assert path.exists()

        warm = CodecProfiler(cost_model="analytic", profile_cache=path)
        reloaded = warm.profile_tensors(self._tensors())
        assert warm.cache_info() == {"hits": 2, "misses": 0, "drifts": 0,
                                     "profiles": 2}
        for name in profiles:
            assert reloaded[name].measurements == profiles[name].measurements

    def test_drift_reuses_within_threshold(self, tmp_path):
        profiler = CodecProfiler(cost_model="analytic",
                                 profile_cache=tmp_path / "cache.json",
                                 drift_threshold=0.25)
        base = self._tensors()
        profiler.profile_tensors(base)
        nudged = {k: v + np.float32(1e-5) for k, v in base.items()}
        profiler.profile_tensors(nudged)
        info = profiler.cache_info()
        assert info["hits"] == 2 and info["drifts"] == 0

    def test_drift_remeasures_past_threshold(self, tmp_path):
        profiler = CodecProfiler(cost_model="analytic",
                                 profile_cache=tmp_path / "cache.json",
                                 drift_threshold=0.25)
        base = self._tensors()
        profiler.profile_tensors(base)
        shifted = {k: v * np.float32(10.0) for k, v in base.items()}
        profiler.profile_tensors(shifted)
        info = profiler.cache_info()
        assert info["drifts"] == 2 and info["misses"] == 2

    def test_grid_mismatch_starts_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        CodecProfiler(cost_model="analytic",
                      profile_cache=path).profile_tensors(self._tensors())
        other = CodecProfiler(cost_model="analytic", profile_cache=path,
                              error_bounds=(1e-2,))
        other.profile_tensors(self._tensors())
        assert other.cache_info()["misses"] == 2

    def test_corrupt_cache_starts_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        profiler = CodecProfiler(cost_model="analytic", profile_cache=path)
        profiler.profile_tensors(self._tensors())
        assert profiler.cache_info()["misses"] == 2

    def test_policy_rejects_cache_with_explicit_profiler(self, tmp_path):
        with pytest.raises(ValueError, match="belong to the profiler"):
            ProfiledPolicy(profiler=CodecProfiler(cost_model="analytic"),
                           profile_cache=tmp_path / "cache.json")

    def test_invalid_drift_threshold(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            CodecProfiler(cost_model="analytic", drift_threshold=0.0)


# ---------------------------------------------------------------------------
# Profile-cache counters in round records + warm rounds
# ---------------------------------------------------------------------------

def _profiled_codec(tmp_path=None, **options):
    policy_options = {"bandwidth_mbps": 10.0, "max_bound": 1e-2, **options}
    if tmp_path is not None:
        policy_options["profile_cache"] = os.fspath(tmp_path)
    config = FedSZConfig(error_bound=1e-2, policy="profiled",
                         policy_options=policy_options)
    return FedSZUpdateCodec(config)


class TestRoundRecordCounters:
    def test_raw_codec_reports_none(self, tiny_split):
        result = _make_sim(tiny_split, n_clients=2).run(1)
        assert result.rounds[0].profile_cache is None

    def test_profiled_codec_reports_counters(self, tiny_split, tmp_path):
        codec = _profiled_codec(tmp_path / "cache.json")
        result = _make_sim(tiny_split, n_clients=2, codec=codec).run(2)
        first, last = result.rounds[0].profile_cache, result.rounds[1].profile_cache
        assert set(first) == {"hits", "misses", "drifts", "profiles"}
        assert first["misses"] > 0
        # counters are cumulative: later rounds never report less
        assert last["hits"] >= first["hits"]
        assert last["misses"] >= first["misses"]

    def test_warm_cache_makes_later_rounds_measurement_free(self, tiny_split,
                                                            tmp_path):
        """Acceptance criterion: with a warm cache, round 2+ plan-building is
        profiler-measurement-free (drift-tolerant reuse turns every lookup
        into a hit)."""
        codec = _profiled_codec(tmp_path / "cache.json", drift_threshold=50.0)
        result = _make_sim(tiny_split, n_clients=2, codec=codec).run(3)
        counters = [r.profile_cache for r in result.rounds]
        assert counters[0]["misses"] > 0
        for later in counters[1:]:
            assert later["misses"] == counters[0]["misses"]
            assert later["drifts"] == 0
        assert counters[2]["hits"] > counters[0]["hits"]

    def test_second_run_starts_warm_from_disk(self, tiny_split, tmp_path):
        path = tmp_path / "cache.json"
        _make_sim(tiny_split, n_clients=2,
                  codec=_profiled_codec(path, drift_threshold=50.0)).run(1)
        codec = _profiled_codec(path, drift_threshold=50.0)
        result = _make_sim(tiny_split, n_clients=2, codec=codec).run(1)
        info = result.rounds[0].profile_cache
        assert info["misses"] == 0 and info["drifts"] == 0 and info["hits"] > 0


# ---------------------------------------------------------------------------
# Journal resume with a warm profile cache
# ---------------------------------------------------------------------------

class TestJournalResumeWarmCache:
    def test_resume_with_warm_cache_matches_uninterrupted(self, tiny_split,
                                                          tmp_path):
        """Satellite requirement: journal resume=True works with a warm
        profile cache — the resumed half plans from the cache the first half
        wrote, and the combined records match an uninterrupted reference."""
        journal = tmp_path / "journal"
        cache_a = tmp_path / "cache_a.json"
        cache_ref = tmp_path / "cache_ref.json"

        # first half: one journaled round, cache written to disk
        _make_sim(tiny_split, n_clients=2, codec=_profiled_codec(cache_a),
                  journal_dir=journal).run(1)
        assert cache_a.exists()

        # resumed half: replays round 0, runs round 1 live from the warm cache
        codec = _profiled_codec(cache_a)
        resumed_sim = _make_sim(tiny_split, n_clients=2, codec=codec,
                                journal_dir=journal, resume=True)
        assert codec.profiler.cache_info()["profiles"] > 0, \
            "resumed run should construct with the warm cache loaded"
        resumed = resumed_sim.run(2)

        # uninterrupted reference with its own (initially empty) cache file,
        # so drift-tolerant reuse follows the same measurement history
        reference = _make_sim(tiny_split, n_clients=2,
                              codec=_profiled_codec(cache_ref)).run(2)
        assert _deterministic_fields(resumed) == _deterministic_fields(reference)

"""The profiling subsystem: CodecProfiler, TensorProfile, ProfiledPolicy,
the verbatim fallback tier, and the profiled policy end to end through the
plan pipeline and the heterogeneous round engine.

Determinism is the backbone of every test here: with a cost model injected,
profiles — and therefore plans and bitstreams — are pure functions of the
tensor bytes, so they must be identical across execution backends at any
worker count.  Wall-clock speedup assertions are gated on
``os.cpu_count() > 1`` (single-core CI container convention).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.compressors.base import ErrorBoundMode
from repro.compressors.registry import available_lossy, get_lossy
from repro.core import (
    AnalyticCostModel,
    CodecProfiler,
    DeviceProfile,
    FedSZCompressor,
    FedSZConfig,
    NetworkModel,
    ProfiledPolicy,
    TensorProfile,
    get_policy,
    make_client_networks,
    select_compressor,
)
from repro.core.plan import PLAN_PROVENANCE_KEY, pack_plan, unpack_plan
from repro.core.profiling import CandidateMeasurement, CostModel, resolve_cost_model
from repro.fl import FederatedSimulation, FedSZUpdateCodec
from repro.nn import build_model

BACKENDS = ("serial", "thread", "process")


class CountingCostModel(CostModel):
    """Deterministic cost model that records every timing request."""

    label = "counting"

    def __init__(self) -> None:
        self.calls: list[tuple[str, int, int]] = []

    def roundtrip_seconds(self, codec, original_bytes, compressed_bytes):
        self.calls.append((codec, original_bytes, compressed_bytes))
        return 0.01, 0.005


@pytest.fixture
def tensors(rng):
    weight = rng.normal(0.0, 0.05, size=(120, 100)).astype(np.float32)
    other = np.linspace(-1.0, 1.0, 6_000, dtype=np.float32).reshape(60, 100)
    return {"layer1.weight": weight, "layer2.weight": other}


# ---------------------------------------------------------------------------
# Sampling and caching
# ---------------------------------------------------------------------------

class TestSampling:
    def test_small_tensors_profile_whole(self, tensors):
        profiler = CodecProfiler(sample_limit=1 << 20)
        sample = profiler.sample("layer1.weight", tensors["layer1.weight"])
        np.testing.assert_array_equal(sample, tensors["layer1.weight"].ravel())

    def test_sample_is_deterministic_and_contiguous(self, rng):
        data = rng.normal(size=100_000).astype(np.float32)
        profiler = CodecProfiler(sample_limit=4_096, seed=7)
        first = profiler.sample("w", data)
        second = CodecProfiler(sample_limit=4_096, seed=7).sample("w", data)
        assert first.size == 4_096
        np.testing.assert_array_equal(first, second)
        # contiguous window: it appears verbatim inside the flat data
        flat = data.ravel()
        starts = np.flatnonzero(flat == first[0])
        assert any(np.array_equal(flat[s:s + first.size], first) for s in starts)

    def test_sample_depends_on_seed_but_not_name(self, rng):
        data = rng.normal(size=100_000).astype(np.float32)
        base = CodecProfiler(sample_limit=4_096, seed=0).sample("w", data)
        other_seed = CodecProfiler(sample_limit=4_096, seed=1).sample("w", data)
        other_name = CodecProfiler(sample_limit=4_096, seed=0).sample("v", data)
        assert not np.array_equal(base, other_seed)
        # name-free on purpose: byte-identical (weight-tied) tensors must
        # sample the same window so the content-keyed cache unifies them
        np.testing.assert_array_equal(base, other_name)

    def test_profile_records_sample_and_tensor_sizes(self, rng):
        data = rng.normal(size=50_000).astype(np.float32)
        profiler = CodecProfiler(sample_limit=2_048, cost_model="analytic")
        profile = profiler.profile_tensor("w", data)
        assert profile.sample_elements == 2_048
        assert profile.nbytes == data.nbytes
        assert profile.scale_factor == pytest.approx(50_000 / 2_048)


class TestCaching:
    def test_cache_hit_skips_remeasurement(self, tensors):
        cost_model = CountingCostModel()
        profiler = CodecProfiler(cost_model=cost_model)
        first = profiler.profile_tensors(tensors)
        measured = len(cost_model.calls)
        assert measured == len(tensors) * len(profiler.grid)
        # same content again (fresh array objects): pure cache hits
        again = profiler.profile_tensors({k: v.copy() for k, v in tensors.items()})
        assert len(cost_model.calls) == measured
        info = profiler.cache_info()
        assert info["hits"] == len(tensors)
        assert info["misses"] == len(tensors)
        for name in tensors:
            assert first[name].measurements is again[name].measurements

    def test_cache_key_is_content_not_name(self, tensors):
        cost_model = CountingCostModel()
        profiler = CodecProfiler(cost_model=cost_model)
        profiler.profile_tensor("a", tensors["layer1.weight"])
        measured = len(cost_model.calls)
        profile = profiler.profile_tensor("b", tensors["layer1.weight"].copy())
        assert len(cost_model.calls) == measured  # tied tensors share measurements
        assert profile.name == "b"

    def test_tied_tensors_above_sample_limit_share_one_measurement(self, rng):
        # the sampled window is content-seeded, so even tensors larger than
        # the sample limit unify in the cache when their bytes are identical
        data = rng.normal(size=50_000).astype(np.float32)
        cost_model = CountingCostModel()
        profiler = CodecProfiler(sample_limit=2_048, cost_model=cost_model)
        profiles = profiler.profile_tensors({"encoder.weight": data,
                                             "decoder.weight": data.copy()})
        assert len(cost_model.calls) == len(profiler.grid)
        assert profiler.cache_info() == {"hits": 1, "misses": 1, "drifts": 0,
                                         "profiles": 1}
        assert profiles["encoder.weight"].measurements \
            is profiles["decoder.weight"].measurements

    def test_different_content_remeasures(self, tensors):
        cost_model = CountingCostModel()
        profiler = CodecProfiler(cost_model=cost_model)
        profiler.profile_tensor("w", tensors["layer1.weight"])
        measured = len(cost_model.calls)
        profiler.profile_tensor("w", tensors["layer1.weight"] * 1.5)
        assert len(cost_model.calls) == 2 * measured

    def test_profiler_survives_pickling_with_cache(self, tensors):
        profiler = CodecProfiler(cost_model="analytic")
        before = profiler.profile_tensors(tensors)
        clone = pickle.loads(pickle.dumps(profiler))
        after = clone.profile_tensors(tensors)
        assert clone.cache_info()["hits"] == profiler.cache_info()["misses"]
        for name in tensors:
            assert before[name].measurements == after[name].measurements


# ---------------------------------------------------------------------------
# Backend x worker equivalence of the candidate-grid fan-out
# ---------------------------------------------------------------------------

class TestFanOutEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (1, 4))
    def test_profiles_identical_on_every_backend(self, tensors, backend, workers):
        reference = CodecProfiler(cost_model="analytic").profile_tensors(tensors)
        profiler = CodecProfiler(cost_model="analytic", backend=backend,
                                 workers=workers)
        profiles = profiler.profile_tensors(tensors)
        assert profiles == reference

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="speedup needs more than one core")
    def test_process_fanout_beats_serial_on_multicore(self, rng):
        data = {f"w{i}": rng.normal(size=40_000).astype(np.float32) for i in range(4)}
        start = time.perf_counter()
        CodecProfiler(sample_limit=None, candidates=("sz3",),
                      error_bounds=(1e-2, 1e-3, 1e-4)).profile_tensors(data)
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        CodecProfiler(sample_limit=None, candidates=("sz3",),
                      error_bounds=(1e-2, 1e-3, 1e-4), backend="process",
                      workers=os.cpu_count()).profile_tensors(data)
        process_wall = time.perf_counter() - start
        assert process_wall < serial_wall


# ---------------------------------------------------------------------------
# TensorProfile estimates and the Pareto frontier
# ---------------------------------------------------------------------------

def _measurement(codec, bound, ratio, compress_s, decompress_s,
                 sample_bytes=1_000_000):
    return CandidateMeasurement(codec=codec, error_bound=bound,
                                mode=ErrorBoundMode.REL,
                                sample_bytes=sample_bytes,
                                compressed_bytes=int(sample_bytes / ratio),
                                compress_seconds=compress_s,
                                decompress_seconds=decompress_s,
                                max_abs_error=bound / 2)


def _profile(measurements, nbytes=1_000_000):
    return TensorProfile(name="w", shape=(nbytes // 4,), dtype="float32",
                         nbytes=nbytes, sample_elements=nbytes // 4,
                         sample_bytes=nbytes, measurements=tuple(measurements))


class TestTensorProfile:
    def test_pareto_frontier_drops_dominated(self):
        best_ratio = _measurement("sz2", 1e-2, ratio=10.0, compress_s=1.0, decompress_s=0.5)
        fastest = _measurement("szx", 1e-2, ratio=4.0, compress_s=0.1, decompress_s=0.05)
        dominated = _measurement("zfp", 1e-2, ratio=3.0, compress_s=0.2, decompress_s=0.2)
        frontier = _profile([best_ratio, fastest, dominated]).pareto_frontier()
        assert frontier == (best_ratio, fastest)

    def test_best_for_link_prefers_ratio_on_slow_links(self):
        high_ratio = _measurement("sz2", 1e-2, ratio=10.0, compress_s=1.0, decompress_s=0.5)
        fast = _measurement("szx", 1e-2, ratio=4.0, compress_s=0.1, decompress_s=0.05)
        profile = _profile([high_ratio, fast])
        # at 0.25 Mbps: sz2 models 1.5 + 3.2 = 4.7s, szx 0.15 + 8.0 = 8.15s
        slow_pick, _ = profile.best_for_link(bandwidth_mbps=0.25)
        # at 30 Mbps: sz2 models 1.53s, szx 0.22s against a 0.27s raw baseline
        fast_pick, _ = profile.best_for_link(bandwidth_mbps=30.0)
        assert slow_pick is high_ratio
        assert fast_pick is fast

    def test_best_for_link_returns_none_above_crossover(self):
        m = _measurement("sz2", 1e-2, ratio=10.0, compress_s=1.0, decompress_s=0.5)
        profile = _profile([m])
        pick, modeled = profile.best_for_link(bandwidth_mbps=1e6)
        assert pick is None
        assert modeled == pytest.approx(profile.uncompressed_seconds(1e6))

    def test_best_for_link_honours_bound_cap(self):
        loose = _measurement("sz2", 1e-1, ratio=20.0, compress_s=0.1, decompress_s=0.1)
        tight = _measurement("sz2", 1e-3, ratio=5.0, compress_s=0.1, decompress_s=0.1)
        pick, _ = _profile([loose, tight]).best_for_link(1.0, max_bound=1e-2)
        assert pick is tight

    def test_bound_cap_below_grid_falls_back_to_tightest(self):
        loose = _measurement("sz2", 1e-1, ratio=20.0, compress_s=0.1, decompress_s=0.1)
        tight = _measurement("sz2", 1e-2, ratio=5.0, compress_s=0.1, decompress_s=0.1)
        pick, _ = _profile([loose, tight]).best_for_link(1.0, max_bound=1e-6)
        assert pick is tight

    def test_device_profile_scales_timings_into_infeasibility(self):
        m = _measurement("sz2", 1e-2, ratio=10.0, compress_s=0.05, decompress_s=0.05)
        profile = _profile([m])
        # feasible on the host at 50 Mbps...
        host_pick, _ = profile.best_for_link(50.0)
        assert host_pick is m
        # ...but a 100x-slower edge device pushes t_C + t_D past the raw transfer
        edge_pick, _ = profile.best_for_link(50.0, device=DeviceProfile("edge", 100.0))
        assert edge_pick is None

    def test_estimated_seconds_scales_sample_to_full_tensor(self):
        m = _measurement("szx", 1e-2, ratio=4.0, compress_s=0.1, decompress_s=0.1,
                         sample_bytes=250_000)
        profile = TensorProfile(name="w", shape=(250_000,), dtype="float32",
                                nbytes=1_000_000, sample_elements=62_500,
                                sample_bytes=250_000, measurements=(m,))
        compress, decompress = profile.estimated_roundtrip_seconds(m)
        assert compress == pytest.approx(0.4)
        assert decompress == pytest.approx(0.4)
        modeled = profile.estimated_seconds(m, bandwidth_mbps=8.0)
        assert modeled == pytest.approx(0.4 + 0.4 + 250_000 * 8 / 8e6)


# ---------------------------------------------------------------------------
# Cost models and validation
# ---------------------------------------------------------------------------

class TestCostModels:
    def test_resolve_cost_model(self):
        assert resolve_cost_model(None) is None
        assert resolve_cost_model("measured") is None
        assert isinstance(resolve_cost_model("analytic"), AnalyticCostModel)
        model = AnalyticCostModel()
        assert resolve_cost_model(model) is model
        with pytest.raises(ValueError, match="unknown cost model"):
            resolve_cost_model("psychic")

    def test_analytic_model_preserves_table1_ordering(self):
        model = AnalyticCostModel()
        times = {codec: sum(model.roundtrip_seconds(codec, 10_000_000, 1_000_000))
                 for codec in ("szx", "zfp", "sz2", "sz3")}
        assert times["szx"] < times["zfp"] < times["sz2"] < times["sz3"]

    def test_profiler_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="unknown candidate codecs"):
            CodecProfiler(candidates=("sz2", "nope"))
        with pytest.raises(ValueError, match="non-empty"):
            CodecProfiler(error_bounds=())
        with pytest.raises(ValueError, match="positive"):
            CodecProfiler(error_bounds=(0.0,))
        with pytest.raises(ValueError, match="sample_limit"):
            CodecProfiler(sample_limit=0)
        with pytest.raises(ValueError, match="workers"):
            CodecProfiler(workers=0)


# ---------------------------------------------------------------------------
# The verbatim fallback codec
# ---------------------------------------------------------------------------

class TestVerbatimCodec:
    def test_registered(self):
        assert "verbatim" in available_lossy()

    @pytest.mark.parametrize("dtype", (np.float32, np.float64))
    def test_roundtrip_is_bit_exact(self, rng, dtype):
        data = rng.normal(size=(37, 11)).astype(dtype)
        codec = get_lossy("verbatim", error_bound=1e-2)
        recon = codec.decompress(codec.compress(data))
        assert recon.dtype == data.dtype
        np.testing.assert_array_equal(recon, data)

    def test_payload_is_original_size_plus_small_header(self, rng):
        data = rng.normal(size=10_000).astype(np.float32)
        payload = get_lossy("verbatim").compress(data)
        assert data.nbytes < len(payload) <= data.nbytes + 32

    def test_zero_d_and_empty(self):
        codec = get_lossy("verbatim")
        scalar = np.array(7.25, dtype=np.float32)
        assert codec.decompress(codec.compress(scalar)).shape == ()
        empty = np.zeros(0, dtype=np.float64)
        assert codec.decompress(codec.compress(empty)).shape == (0,)

    def test_truncation_raises_valueerror_at_every_byte(self, rng):
        data = rng.normal(size=64).astype(np.float32)
        codec = get_lossy("verbatim")
        payload = codec.compress(data)
        for cut in range(len(payload)):
            with pytest.raises(ValueError):
                codec.decompress(payload[:cut])


# ---------------------------------------------------------------------------
# The profiled policy
# ---------------------------------------------------------------------------

class TestProfiledPolicy:
    def test_registered_in_policy_registry(self):
        policy = get_policy("profiled", bandwidth_mbps=5.0)
        assert isinstance(policy, ProfiledPolicy)

    def test_network_and_bandwidth_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ProfiledPolicy(network=NetworkModel(10.0), bandwidth_mbps=5.0)
        with pytest.raises(ValueError, match="bandwidth_mbps must be positive"):
            ProfiledPolicy(bandwidth_mbps=0.0)
        with pytest.raises(ValueError, match="unknown fallback codec"):
            ProfiledPolicy(fallback_codec="nope")
        with pytest.raises(ValueError, match="belong to the profiler"):
            ProfiledPolicy(profiler=CodecProfiler(), candidates=("sz2",))

    def test_slow_link_compresses_fast_link_goes_verbatim(self, tensors):
        config = FedSZConfig()
        slow = ProfiledPolicy(bandwidth_mbps=1.0).build_plan(tensors, config)
        fast = ProfiledPolicy(bandwidth_mbps=1e6).build_plan(tensors, config)
        assert all(entry.codec != "verbatim" for entry in slow)
        assert all(entry.codec == "verbatim" for entry in fast)
        for plan in (slow, fast):
            for entry in plan:
                provenance = entry.options[PLAN_PROVENANCE_KEY]
                assert provenance["policy"] == "profiled"
                assert provenance["fallback"] == (entry.codec == "verbatim")
                if provenance["worthwhile"]:
                    assert provenance["modeled_seconds"] < provenance["uncompressed_seconds"]

    def test_bound_cap_tracks_config_error_bound(self, tensors):
        config = FedSZConfig(error_bound=1e-3)
        plan = ProfiledPolicy(bandwidth_mbps=1.0).build_plan(tensors, config)
        for entry in plan:
            assert entry.error_bound <= 1e-3 * (1 + 1e-12)

    def test_explicit_max_bound_wins_over_config(self, tensors):
        config = FedSZConfig(error_bound=1e-2)
        plan = ProfiledPolicy(bandwidth_mbps=1.0, max_bound=1e-4) \
            .build_plan(tensors, config)
        for entry in plan:
            assert entry.error_bound <= 1e-4 * (1 + 1e-12)

    def test_for_network_shares_profiler(self):
        policy = ProfiledPolicy(bandwidth_mbps=10.0)
        same = policy.for_network(NetworkModel(bandwidth_mbps=10.0))
        assert same is policy
        other = policy.for_network(NetworkModel(bandwidth_mbps=500.0))
        assert other is not policy
        assert other.profiler is policy.profiler
        assert other.bandwidth_mbps == 500.0

    def test_plans_deterministic_across_backends_and_workers(self, tensors):
        config = FedSZConfig()
        reference = ProfiledPolicy(bandwidth_mbps=25.0).build_plan(tensors, config)
        for backend in BACKENDS:
            for workers in (1, 3):
                profiler = CodecProfiler(cost_model="analytic", backend=backend,
                                         workers=workers)
                plan = ProfiledPolicy(bandwidth_mbps=25.0, profiler=profiler) \
                    .build_plan(tensors, config)
                assert plan == reference

    def test_policy_accepts_backend_and_workers(self, tensors):
        # the same single execution knob that steers every other fan-out stage
        policy = get_policy("profiled", bandwidth_mbps=25.0, backend="process",
                            workers=2)
        assert policy.backend.name == "process"
        reference = ProfiledPolicy(bandwidth_mbps=25.0).build_plan(tensors,
                                                                   FedSZConfig())
        assert policy.build_plan(tensors, FedSZConfig()) == reference
        variant = policy.for_network(NetworkModel(bandwidth_mbps=999.0))
        assert variant.backend is policy.backend and variant.workers == 2
        with pytest.raises(ValueError, match="workers"):
            ProfiledPolicy(workers=0)

    def test_policy_inherits_config_execution_knobs(self, tensors, monkeypatch):
        import repro.core.profiling as profiling_module

        seen = {}
        original = CodecProfiler.profile_tensors

        def spy(self, tensors, backend=None, workers=None, delta=False):
            seen["backend"], seen["workers"] = backend, workers
            return original(self, tensors, backend=backend, workers=workers,
                            delta=delta)

        monkeypatch.setattr(profiling_module.CodecProfiler, "profile_tensors", spy)
        config = FedSZConfig(backend="serial", pipeline_workers=3)
        ProfiledPolicy(bandwidth_mbps=25.0).build_plan(tensors, config)
        assert seen == {"backend": "serial", "workers": 3}

    def test_provenance_roundtrips_through_wire_form(self, tensors):
        plan = ProfiledPolicy(bandwidth_mbps=5.0).build_plan(tensors, FedSZConfig())
        unpacked, offset = unpack_plan(pack_plan(plan))
        assert offset == len(pack_plan(plan))
        assert unpacked == plan
        for entry in unpacked:
            provenance = entry.options[PLAN_PROVENANCE_KEY]
            assert provenance["policy"] == "profiled"
            assert provenance["cost_model"] == "analytic"
            # floats survive the canonical-JSON wire form bit-exactly
            original = plan[entry.name].options[PLAN_PROVENANCE_KEY]
            assert provenance == original
            json.dumps(provenance)  # stays JSON-serializable

    def test_overrides_still_apply(self, tensors):
        policy = ProfiledPolicy(bandwidth_mbps=1.0,
                                overrides={"layer1.weight": {"codec": "zfp"}})
        plan = policy.build_plan(tensors, FedSZConfig())
        assert plan["layer1.weight"].codec == "zfp"


class TestProfiledPipeline:
    @pytest.mark.parametrize("bandwidth", (2.0, 1e6))
    def test_roundtrip_with_provenance_in_manifest(self, small_state, bandwidth):
        config = FedSZConfig(policy="profiled",
                             policy_options={"bandwidth_mbps": bandwidth})
        fedsz = FedSZCompressor(config)
        payload, report = fedsz.compress_with_report(small_state)
        recon, decode_report = fedsz.decompress_with_report(payload)
        assert set(recon) == set(small_state)
        # the decoded manifest plan carries the provenance verbatim
        assert decode_report.plan == report.plan
        for entry in decode_report.plan:
            provenance = entry.options[PLAN_PROVENANCE_KEY]
            assert provenance["bandwidth_mbps"] == bandwidth
            if entry.codec == "verbatim":
                np.testing.assert_array_equal(recon[entry.name],
                                              small_state[entry.name])

    def test_verbatim_fallback_decodes_bit_exact_via_default_decoder(self, small_state):
        config = FedSZConfig(policy="profiled",
                             policy_options={"bandwidth_mbps": 1e6})
        payload = FedSZCompressor(config).compress_state_dict(small_state)
        # a fresh, default-configured compressor decodes the mixed stream
        recon = FedSZCompressor().decompress_state_dict(payload)
        for name, value in small_state.items():
            np.testing.assert_array_equal(recon[name], value)

    def test_bitstreams_identical_across_backends(self, small_state):
        payloads = set()
        for backend in BACKENDS:
            for workers in (1, 4):
                config = FedSZConfig(policy="profiled",
                                     policy_options={"bandwidth_mbps": 8.0},
                                     backend=backend, pipeline_workers=workers)
                payloads.add(FedSZCompressor(config).compress_state_dict(small_state))
        assert len(payloads) == 1


# ---------------------------------------------------------------------------
# selection.py as a thin wrapper (Eqn.-1 feasibility, DeviceProfile)
# ---------------------------------------------------------------------------

class TestSelectionWrapper:
    def test_deterministic_with_cost_model(self, weight_like):
        kwargs = dict(candidates=("sz2", "szx"), error_bounds=(1e-2, 1e-3),
                      cost_model=AnalyticCostModel())
        best1, grid1 = select_compressor(weight_like, **kwargs)
        best2, grid2 = select_compressor(weight_like, **kwargs)
        assert best1 == best2
        assert grid1 == grid2

    def test_feasibility_is_full_eqn1(self, weight_like):
        # analytic timings: feasibility flips exactly where t_C + t_D + S'/B
        # crosses S/B, which a compress-only check would misplace
        model = AnalyticCostModel()
        _, grid = select_compressor(weight_like, candidates=("sz2",),
                                    error_bounds=(1e-2,), cost_model=model,
                                    bandwidth_mbps=10.0)
        entry = grid[0]
        payload_bytes = weight_like.nbytes / entry.ratio
        lhs = entry.compress_seconds + entry.decompress_seconds \
            + payload_bytes * 8 / 10e6
        rhs = weight_like.nbytes * 8 / 10e6
        assert entry.feasible == (lhs < rhs)

    def test_device_profile_scales_into_infeasibility(self, weight_like):
        model = AnalyticCostModel()
        _, host_grid = select_compressor(weight_like, candidates=("sz2",),
                                         error_bounds=(1e-2,), cost_model=model,
                                         bandwidth_mbps=10.0)
        assert host_grid[0].feasible
        glacial = DeviceProfile("glacial-edge", compute_factor=1e4)
        _, edge_grid = select_compressor(weight_like, candidates=("sz2",),
                                         error_bounds=(1e-2,), cost_model=model,
                                         bandwidth_mbps=10.0, device=glacial)
        assert not edge_grid[0].feasible
        assert edge_grid[0].compress_seconds == pytest.approx(
            host_grid[0].compress_seconds * 1e4)

    def test_sample_limit_speeds_selection_with_same_api(self, rng):
        data = rng.normal(0, 0.05, 200_000).astype(np.float32)
        best, grid = select_compressor(data, candidates=("szx",),
                                       error_bounds=(1e-2,), sample_limit=4_096,
                                       cost_model=AnalyticCostModel())
        assert len(grid) == 1 and best.ratio > 1.0


# ---------------------------------------------------------------------------
# Heterogeneous fleet: per-client plans through the round engine
# ---------------------------------------------------------------------------

def _fleet_simulation(tiny_split, backend="serial", max_workers=1, n_clients=4,
                      spread=200.0):
    train, test = tiny_split

    def factory():
        return build_model("simplecnn", num_classes=10, in_channels=3,
                           image_size=16, seed=0)

    networks = make_client_networks(n_clients, base=NetworkModel(bandwidth_mbps=50.0),
                                    bandwidth_spread=spread, seed=13)
    config = FedSZConfig(policy="profiled",
                         policy_options={"bandwidth_mbps": 50.0,
                                         "sample_limit": 2_048})
    return FederatedSimulation(factory, train, test, n_clients=n_clients,
                               codec=FedSZUpdateCodec(config), networks=networks,
                               lr=0.15, seed=5, backend=backend,
                               max_workers=max_workers), networks


class TestHeterogeneousFleet:
    def test_per_client_plans_diverge_and_satisfy_eqn1(self, tiny_split):
        sim, networks = _fleet_simulation(tiny_split)
        record = sim.run_round(0)
        assert set(record.client_plans) == set(record.participants)

        distinct = {tuple((e.codec, e.error_bound) for e in plan)
                    for plan in record.client_plans.values()}
        assert len(distinct) >= 2, \
            "a 200x bandwidth spread must produce at least two distinct plans"

        for cid, plan in record.client_plans.items():
            for entry in plan:
                provenance = entry.options[PLAN_PROVENANCE_KEY]
                assert provenance["bandwidth_mbps"] == pytest.approx(
                    networks[cid].bandwidth_mbps)
                if provenance["fallback"]:
                    assert entry.codec == "verbatim"
                else:
                    # the acceptance criterion: modeled t_C + t_D + transfer
                    # beats the client's uncompressed transfer time
                    assert provenance["modeled_seconds"] <= \
                        provenance["uncompressed_seconds"]

    def test_roundtrip_bit_exact_per_client(self, tiny_split):
        sim, _ = _fleet_simulation(tiny_split)
        # every shipped update decoded and aggregated without error, and the
        # verbatim tiers decode bit-exactly (zero max error on those tensors)
        record = sim.run_round(0)
        assert record.accuracy >= 0.0
        for cid, report in record.client_reports.items():
            assert report.compressed_bytes > 0
            assert report.plan is record.client_plans[cid]

    def test_fast_clients_ship_more_bytes_than_slow(self, tiny_split):
        sim, networks = _fleet_simulation(tiny_split)
        record = sim.run_round(0)
        ratios = {cid: record.client_reports[cid].ratio
                  for cid in record.participants}
        fastest = max(record.participants, key=lambda c: networks[c].bandwidth_mbps)
        slowest = min(record.participants, key=lambda c: networks[c].bandwidth_mbps)
        assert networks[fastest].bandwidth_mbps / networks[slowest].bandwidth_mbps > 10
        assert ratios[slowest] > ratios[fastest], \
            "the slow link must compress harder than the fast one"

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 4),
                                                 ("process", 2)])
    def test_records_bit_identical_across_backends(self, tiny_split, backend, workers):
        reference_sim, _ = _fleet_simulation(tiny_split)
        reference = reference_sim.run_round(0)
        sim, _ = _fleet_simulation(tiny_split, backend=backend, max_workers=workers)
        record = sim.run_round(0)
        assert record.accuracy == reference.accuracy
        assert record.transmitted_bytes == reference.transmitted_bytes
        assert record.participants == reference.participants
        assert record.client_plans == reference.client_plans
        for key, value in reference_sim.server.global_state().items():
            np.testing.assert_array_equal(value, sim.server.global_state()[key])

    def test_link_agnostic_codec_shares_instances(self, tiny_split):
        train, test = tiny_split

        def factory():
            return build_model("simplecnn", num_classes=10, in_channels=3,
                               image_size=16, seed=0)

        networks = make_client_networks(3, base=NetworkModel(10.0),
                                        bandwidth_spread=8.0, seed=2)
        codec = FedSZUpdateCodec(FedSZConfig())  # uniform policy: no per-link variants
        sim = FederatedSimulation(factory, train, test, n_clients=3, codec=codec,
                                  networks=networks, seed=1)
        assert all(c is codec for c in sim.client_codecs)

"""Tests for the table rendering and result-record helpers."""

import json

import pytest

from repro.metrics import (
    CompressionRecord,
    ExperimentRecord,
    Table,
    format_bound,
    format_ratio,
    format_seconds_cell,
)


class TestTable:
    def test_render_contains_all_cells(self):
        table = Table("Demo", ["model", "ratio"])
        table.add_row("alexnet", "12.61x")
        table.add_row("resnet50", "7.02x")
        text = table.render()
        assert "Demo" in text
        assert "alexnet" in text and "12.61x" in text
        assert "resnet50" in text

    def test_columns_aligned(self):
        table = Table("T", ["a", "b"])
        table.add_row("short", "x")
        table.add_row("a-much-longer-cell", "y")
        lines = table.render().splitlines()
        # the two data rows must have 'x'/'y' in the same column
        assert lines[-2].index("x") == lines[-1].index("y")

    def test_wrong_cell_count_raises(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_print_does_not_crash(self, capsys):
        table = Table("T", ["a"])
        table.add_row(1)
        table.print()
        assert "T" in capsys.readouterr().out


class TestFormatting:
    def test_format_bound(self):
        assert format_bound(1e-2) == "1e-02"
        assert format_bound(1e-4) == "1e-04"

    def test_format_ratio(self):
        assert format_ratio(12.614) == "12.61x"

    def test_format_seconds_cell(self):
        assert format_seconds_cell(5e-5).endswith("us")
        assert format_seconds_cell(0.004).endswith("ms")
        assert format_seconds_cell(3.5).endswith("s")


class TestRecords:
    def test_compression_record_fields(self):
        record = CompressionRecord("sz2", "alexnet", 1e-2, 12.6, 3.2, 1.1, 70.0, 1e-3)
        assert record.compressor == "sz2"
        assert record.extra == {}

    def test_experiment_record_json(self):
        record = ExperimentRecord("table1", "EBLC comparison")
        record.add(model="alexnet", compressor="sz2", ratio=11.2)
        payload = json.loads(record.to_json())
        assert payload["experiment"] == "table1"
        assert payload["rows"][0]["model"] == "alexnet"

    def test_experiment_record_serializes_dataclasses(self):
        record = ExperimentRecord("table1", "demo")
        record.add(stats=CompressionRecord("sz2", "w", 1e-2, 2.0, 0.1, 0.1, 10.0, 1e-4))
        payload = json.loads(record.to_json())
        assert payload["rows"][0]["stats"]["compressor"] == "sz2"

"""Quickstart: compress a model update with FedSZ.

Builds a (scaled) AlexNet, compresses its ``state_dict`` with the paper's
recommended configuration (SZ2 at a relative error bound of 1e-2, blosc-lz for
metadata), decompresses it, and prints the compression ratio, the runtime, and
the worst-case reconstruction error.

Run with::

    python examples/quickstart.py

From here, ``examples/fl_cifar10_fedsz.py`` runs the full federated loop, and
``examples/fl_partial_participation.py`` shows the concurrent round engine —
thread-pool workers (``max_workers``), per-round client sampling
(``participation``), dropout/straggler injection, and heterogeneous per-client
links (see :mod:`repro.fl.simulation` for the knob reference).
"""

from __future__ import annotations

import numpy as np

from repro.core import FedSZCompressor, FedSZConfig
from repro.nn import build_model, count_parameters
from repro.utils.timer import format_bytes, format_seconds


def main() -> None:
    model = build_model("alexnet", num_classes=10, in_channels=3, image_size=32)
    state = model.state_dict()
    print(f"AlexNet (scaled): {count_parameters(model):,} parameters, "
          f"{format_bytes(sum(v.nbytes for v in state.values()))} state dict")

    config = FedSZConfig(lossy_compressor="sz2", error_bound=1e-2, lossless_codec="blosclz")
    fedsz = FedSZCompressor(config)

    payload = fedsz.compress_state_dict(state)
    restored = fedsz.decompress_state_dict(payload)
    report = fedsz.last_report

    print(f"\nFedSZ bitstream: {format_bytes(len(payload))} "
          f"({report.ratio:.2f}x smaller, lossy partition {report.lossy_ratio:.2f}x)")
    print(f"compress: {format_seconds(report.compress_seconds)}, "
          f"decompress: {format_seconds(report.decompress_seconds)}")

    worst = 0.0
    for key, original in state.items():
        err = float(np.max(np.abs(restored[key].astype(np.float64) - original.astype(np.float64)))) \
            if original.size else 0.0
        worst = max(worst, err)
    value_range = max(float(v.max() - v.min()) for v in state.values() if v.size)
    print(f"worst absolute reconstruction error: {worst:.3e} "
          f"(requested bound: 1e-2 of each tensor's range; largest range {value_range:.3f})")

    model.load_state_dict(restored)
    print("\nrestored state dict loads back into the model - ready for FedAvg aggregation")


if __name__ == "__main__":
    main()

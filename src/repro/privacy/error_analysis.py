"""Distribution of the error introduced by lossy compression (Figure 10).

The paper observes that the pairwise difference between original and
decompressed weights resembles a Laplacian distribution, which hints at a
differential-privacy interpretation.  :func:`analyze_error_distribution` fits
both a Laplace and a Gaussian model to the observed errors and reports
goodness-of-fit statistics so the benchmark can make the comparison
quantitative rather than visual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.compressors.base import Compressor

__all__ = ["compression_errors", "ErrorDistributionFit", "analyze_error_distribution"]


def compression_errors(compressor: Compressor, data: np.ndarray) -> np.ndarray:
    """Element-wise error ``decompressed - original`` after a round trip."""
    data = np.asarray(data, dtype=np.float64)
    recon = compressor.decompress(compressor.compress(data)).astype(np.float64)
    return (recon - data).ravel()


@dataclass
class ErrorDistributionFit:
    """Summary of the error histogram and the fitted noise models."""

    n: int
    mean: float
    std: float
    laplace_loc: float
    laplace_scale: float
    laplace_ks: float
    normal_ks: float
    excess_kurtosis: float

    @property
    def laplace_like(self) -> bool:
        """True when the Laplace model fits at least as well as the Gaussian."""
        return self.laplace_ks <= self.normal_ks

    @property
    def histogram_peaked(self) -> bool:
        """True when the error distribution is more peaked than a Gaussian.

        A Laplace distribution has excess kurtosis 3; anything clearly above 0
        already indicates the sharp central peak Figure 10 shows.
        """
        return self.excess_kurtosis > 0.5


def analyze_error_distribution(errors: np.ndarray, max_samples: int = 200_000,
                               seed: int = 0) -> ErrorDistributionFit:
    """Fit Laplace and Gaussian models to compression errors.

    Kolmogorov-Smirnov statistics (lower = better fit) are computed against
    both fitted models; the paper's qualitative claim corresponds to the
    Laplace statistic being the smaller one.
    """
    errors = np.asarray(errors, dtype=np.float64).ravel()
    errors = errors[np.isfinite(errors)]
    if errors.size == 0:
        raise ValueError("no finite errors to analyze")
    if errors.size > max_samples:
        rng = np.random.default_rng(seed)
        errors = rng.choice(errors, size=max_samples, replace=False)

    loc, scale = stats.laplace.fit(errors)
    scale = max(scale, 1e-300)
    mu, sigma = float(np.mean(errors)), float(np.std(errors))
    sigma = max(sigma, 1e-300)

    laplace_ks = float(stats.kstest(errors, "laplace", args=(loc, scale)).statistic)
    normal_ks = float(stats.kstest(errors, "norm", args=(mu, sigma)).statistic)
    excess_kurtosis = float(stats.kurtosis(errors, fisher=True))

    return ErrorDistributionFit(
        n=int(errors.size),
        mean=mu,
        std=sigma,
        laplace_loc=float(loc),
        laplace_scale=float(scale),
        laplace_ks=laplace_ks,
        normal_ks=normal_ks,
        excess_kurtosis=excess_kurtosis,
    )

"""Minimal NumPy neural-network substrate with PyTorch-like state_dict semantics.

The FedSZ pipeline operates on a model's ``state_dict`` — an ordered mapping
from parameter/buffer names to arrays.  Since PyTorch is not available offline,
this subpackage provides a small but complete deep-learning stack:

* :class:`~repro.nn.module.Module` / :class:`~repro.nn.parameter.Parameter`
  with ``state_dict`` / ``load_state_dict`` / ``named_parameters`` semantics
  mirroring ``torch.nn.Module``,
* layers with explicit forward/backward passes (Linear, Conv2d incl. depthwise,
  BatchNorm2d, ReLU/ReLU6, pooling, dropout, flatten),
* residual and inverted-residual blocks,
* scaled-down AlexNet, MobileNetV2 and ResNet50 architectures plus small
  reference models,
* cross-entropy loss and an SGD(+momentum) optimizer.

Everything is implemented with vectorized NumPy (im2col convolutions) so the
federated experiments run on CPU within the reproduction's budget.
"""

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.models import (
    MLP,
    AlexNet,
    MobileNetV2,
    ResNet50,
    SimpleCNN,
    available_models,
    build_model,
    count_parameters,
    estimate_flops,
    model_profile,
    state_dict_nbytes,
)
from repro.nn.module import Module, Sequential
from repro.nn.optim import SGD
from repro.nn.parameter import Parameter

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "CrossEntropyLoss",
    "SGD",
    "AlexNet",
    "MobileNetV2",
    "ResNet50",
    "SimpleCNN",
    "MLP",
    "available_models",
    "build_model",
    "count_parameters",
    "estimate_flops",
    "model_profile",
    "state_dict_nbytes",
]

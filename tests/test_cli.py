"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_defaults(self):
        args = build_parser().parse_args(["compress"])
        assert args.command == "compress"
        assert args.model == "alexnet"
        assert args.bound == pytest.approx(1e-2)

    def test_simulate_options(self):
        args = build_parser().parse_args(["simulate", "--rounds", "3", "--clients", "2",
                                          "--dataset", "fmnist"])
        assert args.rounds == 3
        assert args.clients == 2
        assert args.dataset == "fmnist"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--model", "vgg"])

    def test_select_bounds_list(self):
        args = build_parser().parse_args(["select", "--bounds", "1e-2", "1e-4"])
        assert args.bounds == [1e-2, 1e-4]

    def test_round_engine_flags(self):
        args = build_parser().parse_args(["simulate", "--workers", "4",
                                          "--participation", "0.5",
                                          "--straggler", "0.2", "--dropout", "0.1"])
        assert args.workers == 4
        assert args.participation == 0.5
        assert args.straggler == pytest.approx(0.2)
        assert args.dropout == pytest.approx(0.1)

    def test_round_engine_flag_defaults_are_sequential(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workers == 1
        assert args.participation == 1.0
        assert args.straggler == 0.0 and args.dropout == 0.0

    def test_entropy_flags(self):
        for command in ("compress", "simulate"):
            args = build_parser().parse_args([command, "--entropy-chunk", "4096",
                                              "--entropy-workers", "4"])
            assert args.entropy_chunk == 4096
            assert args.entropy_workers == 4
        defaults = build_parser().parse_args(["compress"])
        assert defaults.entropy_chunk == 65536
        assert defaults.entropy_workers == 1

    def test_backend_flag(self):
        for command in ("compress", "simulate"):
            args = build_parser().parse_args([command, "--backend", "process"])
            assert args.backend == "process"
            assert build_parser().parse_args([command]).backend == "thread"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--backend", "mpi"])

    def test_plan_flags(self):
        for command in ("compress", "simulate"):
            args = build_parser().parse_args([command, "--policy", "mixed-codec",
                                              "--pipeline-workers", "4",
                                              "--small-tensor-codec", "zfp"])
            assert args.policy == "mixed-codec"
            assert args.pipeline_workers == 4
            assert args.small_tensor_codec == "zfp"
        defaults = build_parser().parse_args(["compress"])
        assert defaults.policy == "uniform"
        assert defaults.pipeline_workers == 1
        assert defaults.small_tensor_codec == "szx"

    def test_profiled_policy_flags(self):
        args = build_parser().parse_args(["compress", "--policy", "profiled",
                                          "--bandwidth", "250"])
        assert args.policy == "profiled"
        assert args.bandwidth == pytest.approx(250.0)
        assert build_parser().parse_args(["compress"]).bandwidth == pytest.approx(10.0)

    def test_bandwidth_spread_flag(self):
        args = build_parser().parse_args(["simulate", "--bandwidth-spread", "20"])
        assert args.bandwidth_spread == pytest.approx(20.0)
        assert build_parser().parse_args(["simulate"]).bandwidth_spread == 1.0

    def test_participation_accepts_counts_and_fractions(self):
        parse = build_parser().parse_args
        assert parse(["simulate", "--participation", "3"]).participation == 3
        assert isinstance(parse(["simulate", "--participation", "3"]).participation, int)
        assert parse(["simulate", "--participation", "1"]).participation == 1.0
        assert isinstance(parse(["simulate", "--participation", "1"]).participation, float)
        with pytest.raises(SystemExit):
            parse(["simulate", "--participation", "lots"])


class TestCommands:
    def test_compress_command_output(self, capsys):
        exit_code = main(["compress", "--model", "simplecnn", "--bound", "1e-2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "FedSZ bitstream" in out
        assert "ratio" in out
        assert "max abs error" in out

    def test_compress_with_alternative_compressor(self, capsys):
        exit_code = main(["compress", "--model", "mlp", "--compressor", "szx"])
        assert exit_code == 0
        assert "szx" in capsys.readouterr().out

    def test_compress_with_mixed_codec_policy(self, capsys):
        exit_code = main(["compress", "--model", "simplecnn", "--policy", "mixed-codec",
                          "--pipeline-workers", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "mixed-codec policy" in out

    def test_compress_with_profiled_policy(self, capsys):
        # a fast link sends the profiled plan to the verbatim fallback tier
        exit_code = main(["compress", "--model", "simplecnn", "--policy", "profiled",
                          "--bandwidth", "100000"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "profiled policy" in out
        assert "verbatim" in out

    def test_compress_profiled_on_slow_link_compresses(self, capsys):
        exit_code = main(["compress", "--model", "simplecnn", "--policy", "profiled",
                          "--bandwidth", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "verbatim" not in out

    @pytest.mark.parametrize("flags,fragment", [
        (["--policy", "round-robin"], "unknown plan policy"),
        (["--lossless", "snappy"], "unknown lossless codec"),
        (["--compressor", "fpzip"], "unknown lossy compressor"),
        (["--policy", "mixed-codec", "--small-tensor-codec", "nope"],
         "unknown lossy compressor"),
        (["--pipeline-workers", "0"], "pipeline_workers"),
    ])
    def test_unknown_names_get_one_line_errors(self, capsys, flags, fragment):
        exit_code = main(["compress", "--model", "mlp", *flags])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "repro compress: error:" in err and fragment in err
        assert "Traceback" not in err

    def test_simulate_unknown_policy_is_clean(self, capsys):
        exit_code = main(["simulate", "--model", "mlp", "--samples", "80",
                          "--image-size", "8", "--policy", "nope"])
        assert exit_code == 2
        assert "unknown plan policy" in capsys.readouterr().err

    def test_simulate_command_output(self, capsys):
        exit_code = main(["simulate", "--model", "mlp", "--rounds", "2", "--clients", "2",
                          "--samples", "120", "--image-size", "8"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "final accuracy" in out
        assert "upload volume" in out
        assert "x reduction" in out

    def test_simulate_engine_range_errors_are_clean(self, capsys):
        exit_code = main(["simulate", "--model", "mlp", "--samples", "80",
                          "--image-size", "8", "--clients", "4", "--participation", "9"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "repro simulate: error:" in err and "participation count" in err

        exit_code = main(["simulate", "--model", "mlp", "--samples", "80",
                          "--image-size", "8", "--workers", "0"])
        assert exit_code == 2
        assert "max_workers" in capsys.readouterr().err

    def test_simulate_with_round_engine_flags(self, capsys):
        exit_code = main(["simulate", "--model", "mlp", "--rounds", "2", "--clients", "4",
                          "--samples", "120", "--image-size", "8", "--workers", "2",
                          "--participation", "0.5"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "final accuracy" in out

    def test_simulate_profiled_heterogeneous_fleet(self, capsys):
        exit_code = main(["simulate", "--model", "mlp", "--rounds", "1", "--clients", "3",
                          "--samples", "120", "--image-size", "8",
                          "--policy", "profiled", "--bandwidth", "50",
                          "--bandwidth-spread", "200"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "per-client plans (final round):" in out
        assert "Mbps -> codecs" in out

    def test_select_command_output(self, capsys):
        exit_code = main(["select", "--model", "simplecnn", "--bounds", "1e-2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "recommended:" in out
        assert "Mbps" in out
        for name in ("sz2", "sz3", "szx", "zfp"):
            assert name in out

"""Registry of the error-bounded lossy compressors.

The FedSZ pipeline and the benchmark harness look compressors up by name
(``"sz2"``, ``"sz3"``, ``"szx"``, ``"zfp"``, plus the ``"verbatim"`` lossless
fallback tier); third-party compressors can be added with
:func:`register_lossy` as long as they subclass
:class:`~repro.compressors.base.LossyCompressor`.
"""

from __future__ import annotations

from typing import Callable

from repro.compressors.base import ErrorBound, ErrorBoundMode, LossyCompressor
from repro.compressors.sz2 import SZ2Compressor
from repro.compressors.sz3 import SZ3Compressor
from repro.compressors.szx import SZxCompressor
from repro.compressors.verbatim import VerbatimCompressor
from repro.compressors.zfp import ZFPCompressor

__all__ = ["available_lossy", "get_lossy", "register_lossy"]

_LOSSY: dict[str, Callable[..., LossyCompressor]] = {
    "sz2": SZ2Compressor,
    "sz3": SZ3Compressor,
    "szx": SZxCompressor,
    "zfp": ZFPCompressor,
    # lossless fallback tier of the profiled plan policy: ships the tensor
    # bit-exactly when Eqn. (1) says no EBLC pays for itself on the link
    "verbatim": VerbatimCompressor,
}


def available_lossy() -> list[str]:
    """Names of the registered lossy compressors."""
    return sorted(_LOSSY)


def register_lossy(name: str, factory: Callable[..., LossyCompressor],
                   overwrite: bool = False) -> None:
    """Register a new lossy compressor factory under ``name``."""
    if name in _LOSSY and not overwrite:
        raise ValueError(f"lossy compressor {name!r} already registered")
    _LOSSY[name] = factory


def get_lossy(name: str, error_bound: ErrorBound | float = 1e-2,
              mode: ErrorBoundMode | str = ErrorBoundMode.REL,
              **kwargs: object) -> LossyCompressor:
    """Instantiate a lossy compressor by registry name."""
    try:
        factory = _LOSSY[name]
    except KeyError:
        # ValueError, matching every other bad-input path in the codebase
        raise ValueError(f"unknown lossy compressor {name!r}; available: {available_lossy()}") from None
    return factory(error_bound=error_bound, mode=mode, **kwargs)

"""Minimal fixed-width table rendering for benchmark output.

The benchmark harness regenerates the paper's tables and figure series as
plain text (no plotting dependencies are available offline), so a small,
dependency-free table formatter keeps that output readable and diffable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_bound", "format_ratio", "format_seconds_cell"]


@dataclass
class Table:
    """Accumulates rows and renders them with aligned columns."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are str()-converted."""
        if len(cells) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Render the table as fixed-width text."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "  "
        lines = [self.title, "-" * len(self.title)]
        lines.append(sep.join(col.ljust(widths[i]) for i, col in enumerate(self.columns)))
        lines.append(sep.join("-" * widths[i] for i in range(len(self.columns))))
        for row in self.rows:
            lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table followed by a blank line."""
        print(self.render())
        print()


def format_bound(bound: float) -> str:
    """Render an error bound the way the paper writes it (e.g. ``1e-02``)."""
    return f"{bound:.0e}"


def format_ratio(ratio: float) -> str:
    """Render a compression ratio with two decimals and a multiplication sign."""
    return f"{ratio:.2f}x"


def format_seconds_cell(seconds: float) -> str:
    """Render a duration for a table cell."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"

"""Synthetic scientific-simulation data and spikiness diagnostics (Figure 2).

Figure 2 of the paper contrasts FL model parameters (spiky, irregular 1-D
series) against slices of the MIRANDA hydrodynamics dataset (smooth fields).
The MIRANDA data is not redistributable here, so :func:`miranda_like_field`
synthesizes smooth turbulence-like fields from a superposition of
low-wavenumber modes — preserving the property the figure demonstrates: far
lower total variation than weight data at the same length.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["miranda_like_field", "weight_like_signal", "spikiness"]


def miranda_like_field(length: int = 512, n_modes: int = 12, seed: int | None = 0,
                       kind: str = "density") -> np.ndarray:
    """A smooth 1-D slice resembling a hydrodynamics field.

    ``kind`` selects the value range: ``"density"`` produces a positive field
    around ~1-3 (like MIRANDA density), ``"velocity"`` a signed field around 0.
    """
    if length < 2:
        raise ValueError("length must be >= 2")
    rng = make_rng(seed)
    x = np.linspace(0.0, 1.0, length)
    field = np.zeros(length, dtype=np.float64)
    for k in range(1, n_modes + 1):
        amplitude = rng.uniform(0.2, 1.0) / k
        phase = rng.uniform(0, 2 * np.pi)
        field += amplitude * np.sin(2 * np.pi * k * x + phase)
    if kind == "density":
        return (2.0 + field).astype(np.float32)
    if kind == "velocity":
        return field.astype(np.float32)
    raise ValueError(f"unknown field kind {kind!r}")


def weight_like_signal(length: int = 512, scale: float = 0.05, seed: int | None = 0,
                       heavy_tail: float = 0.05) -> np.ndarray:
    """A spiky 1-D series with the statistics of trained model weights.

    Weights cluster near zero with occasional large-magnitude entries; a
    Gaussian bulk plus a sparse heavy-tail component reproduces that shape
    (compare Figure 3 of the paper).
    """
    rng = make_rng(seed)
    signal = rng.normal(0.0, scale, size=length)
    n_spikes = max(1, int(length * heavy_tail))
    spike_positions = rng.choice(length, size=n_spikes, replace=False)
    signal[spike_positions] += rng.normal(0.0, 8 * scale, size=n_spikes)
    return signal.astype(np.float32)


def spikiness(series: np.ndarray) -> float:
    """Normalized total variation: mean |x[i+1]-x[i]| divided by the value range.

    Smooth fields score well below spiky weight data; the Figure 2 benchmark
    reports this metric for both signal families.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    if series.size < 2:
        return 0.0
    value_range = float(series.max() - series.min())
    if value_range == 0.0:
        return 0.0
    tv = float(np.mean(np.abs(np.diff(series))))
    return tv / value_range

"""Consolidate committed benchmark records into ``results/summary.json``.

Every benchmark persists a full :class:`ExperimentRecord` as
``benchmarks/results/<name>.json``.  This script distills them into one small
``summary.json`` — the headline number(s) of each experiment next to its
description — so a reader (or the CI artifact browser) can see the state of
the reproduction without opening a dozen row-level records.

For each experiment a short list of headline keys is scanned across the rows;
the last row carrying a key wins (records append summary rows last).
Experiments without a registered key list still appear with their description
and row count, so newly added benches are never silently dropped.

Usage: ``python benchmarks/summarize.py [--check]`` — ``--check`` exits
non-zero when no records are found (CI guard against a wrong working dir).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: experiment name -> row keys worth surfacing in the summary
HEADLINE_KEYS: dict[str, list[str]] = {
    "delta": ["warm_ratio_min", "warm_ratio_mean", "ef_worst_bound_fraction",
              "codebook_cache", "bit_identical_variants"],
    "round_engine": ["speedup", "transmitted_bytes", "final_accuracy",
                     "resident_task_bytes"],
    "coordinator": ["final_accuracy", "resident_task_bytes", "full_task_bytes"],
    "pipeline": ["speedup", "ratio", "effective_workers"],
    "entropy": ["speedup", "total_parallel_seconds", "total_sequential_seconds"],
    "streaming": ["first_byte_seconds", "encode_overlap_seconds",
                  "decode_overlap_seconds"],
    "selection": ["agreement_factor", "plan_crossover_mbps",
                  "analytic_crossover_mbps"],
    "table1": ["ratio", "accuracy", "baseline_accuracy"],
    "fig7": ["total_speedup", "transfer_speedup"],
    "fig9": ["speedup"],
}


def _headline(experiment: str, rows: list[dict]) -> dict:
    keys = HEADLINE_KEYS.get(experiment, [])
    picked: dict = {}
    for row in rows:
        for key in keys:
            if key in row:
                picked[key] = row[key]
    return picked


def summarize() -> dict:
    experiments: dict[str, dict] = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        if path.name == "summary.json":
            continue
        record = json.loads(path.read_text())
        rows = record.get("rows", [])
        experiments[path.stem] = {
            "experiment": record.get("experiment", path.stem),
            "description": record.get("description", ""),
            "rows": len(rows),
            "headline": _headline(record.get("experiment", path.stem), rows),
        }
    return {"results_dir": str(RESULTS_DIR.relative_to(RESULTS_DIR.parent.parent)),
            "experiments": experiments}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--check", action="store_true",
                        help="fail when no benchmark records are present")
    args = parser.parse_args(argv)

    summary = summarize()
    if args.check and not summary["experiments"]:
        print(f"no benchmark records under {RESULTS_DIR}", file=sys.stderr)
        return 1
    out = RESULTS_DIR / "summary.json"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())

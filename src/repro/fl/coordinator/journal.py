"""Durable round state: a JSONL event log plus on-disk state snapshots.

A :class:`RoundJournal` makes federated rounds resumable: every scenario draw,
shipped client update (payload bytes included), and completed round is
appended to ``journal.jsonl`` before the run proceeds, and the global model is
snapshotted at run start and after every aggregation.  A process killed
mid-round can therefore be resumed from the journal directory and produce the
same :class:`~repro.fl.coordinator.records.RoundRecord` stream as an
uninterrupted run: completed rounds replay from their journaled records,
already-shipped clients of the interrupted round replay from their stored
payloads (decode is deterministic), and only the remaining clients re-train —
which is itself deterministic given the snapshotted global state and the
per-client seeds.

On-disk layout (documented in FORMATS.md)::

    <journal_dir>/
        journal.jsonl                     # one JSON event per line, append-only
        snapshots/initial.fsza            # global state before round 0
        snapshots/round_000007.fsza       # global state after round 7 aggregated
        updates/round_000007_client_0003.bin   # encoded update payloads

Durability discipline: payload files and snapshots are fully written (and
snapshots atomically renamed) *before* the event that references them is
appended, so the log line is the commit point; every append is flushed to the
OS so a killed process loses at most the line it was writing.  The loader
tolerates exactly one truncated trailing line (the in-flight append at the
moment of death) and rejects corruption anywhere else.

The ``REPRO_JOURNAL_CRASH_AFTER`` environment variable is a test hook: when
set to ``N``, the process hard-exits (``os._exit(42)``) immediately after the
``N``-th event of this process reaches the log — the kill-and-resume drill in
``benchmarks/bench_coordinator.py`` and CI uses it to die mid-round for real.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.pipeline import FedSZReport
from repro.core.plan import unpack_plan
from repro.fl.coordinator.records import RoundRecord
from repro.fl.coordinator.scheduler import RoundPlan
from repro.fl.coordinator.transport import ShipResult
from repro.utils.serialization import pack_arrays, unpack_arrays

__all__ = ["RoundJournal", "JournalState", "PartialRoundState", "ShippedEvent"]

_JOURNAL_VERSION = 1
_CRASH_ENV = "REPRO_JOURNAL_CRASH_AFTER"

#: FedSZReport fields journaled verbatim (the plan rides separately as hex)
_REPORT_FIELDS = ("original_bytes", "compressed_bytes", "lossy_original_bytes",
                  "lossy_compressed_bytes", "lossless_original_bytes",
                  "lossless_compressed_bytes", "compress_seconds",
                  "decompress_seconds")

#: RoundRecord fields journaled in ``round_complete`` events (everything but
#: the per-client reports/plans, which rebuild from ``client_shipped`` events)
_RECORD_FIELDS = ("round_index", "accuracy", "mean_train_seconds",
                  "mean_encode_seconds", "mean_decode_seconds",
                  "validation_seconds", "uncompressed_bytes",
                  "transmitted_bytes", "communication_seconds",
                  "client_losses", "participants", "dropped_clients",
                  "straggler_clients", "late_clients", "delta_clients")


@dataclass
class ShippedEvent:
    """One journaled ``client_shipped`` event, ready to replay."""

    round_index: int
    client_id: int
    status: str  # "ontime" | "late"
    payload_path: str
    payload_bytes: int
    raw_bytes: int
    encode_seconds: float
    transfer_seconds: float
    decode_seconds: float
    train_seconds: float
    train_loss: float
    num_samples: int
    report_fields: "dict | None" = None
    plan_hex: "str | None" = None
    #: relative path of the delta sidecar (accumulator + codebook tables)
    #: written alongside the payload; ``None`` for non-delta codecs
    delta_path: "str | None" = None

    def rebuild_report(self) -> "FedSZReport | None":
        """The shipped update's :class:`FedSZReport` (``None`` if it had none)."""
        if self.report_fields is None:
            return None
        plan = None
        if self.plan_hex is not None:
            plan, _ = unpack_plan(bytes.fromhex(self.plan_hex))
        return FedSZReport(plan=plan, **self.report_fields)


@dataclass
class PartialRoundState:
    """A round that started but never completed — the resume point."""

    plan: RoundPlan
    #: client id -> journaled ship event (both on-time and late ships)
    shipped: "dict[int, ShippedEvent]" = field(default_factory=dict)


@dataclass
class JournalState:
    """Everything a resuming coordinator needs, parsed from the event log."""

    scenario_seed: int
    codec_name: str
    n_clients: int
    records: "list[RoundRecord]" = field(default_factory=list)
    partial: "PartialRoundState | None" = None
    #: late updates shipped in completed rounds, not yet absorbed or expired
    pending_late: "list[ShippedEvent]" = field(default_factory=list)
    #: snapshot to restore the global model from before resuming
    snapshot_path: "str | None" = None
    #: per-client delta state entering the resume point, folded from completed
    #: rounds: ``{client_id: {"sidecar": path | None, "degrade": reason |
    #: None}}`` — the latest on-time ship's sidecar, or the reason the
    #: reference was last invalidated (``None`` + no sidecar = never shipped)
    delta_state: "dict[int, dict]" = field(default_factory=dict)

    @property
    def next_round_index(self) -> int:
        """First round the resumed run must execute (the partial one, if any)."""
        if self.partial is not None:
            return self.partial.plan.round_index
        return len(self.records)


class RoundJournal:
    """Append-only durable record of one federated run (see module docstring)."""

    def __init__(self, directory: "str | Path", resume: bool = False) -> None:
        self.directory = Path(directory)
        self.log_path = self.directory / "journal.jsonl"
        if self.log_path.exists() and not resume:
            raise ValueError(f"journal directory {self.directory} already holds a "
                             f"run; pass resume=True to continue it or point at "
                             f"a fresh directory")
        if resume and not self.log_path.exists():
            raise ValueError(f"cannot resume: no journal found in {self.directory}")
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / "snapshots").mkdir(exist_ok=True)
        (self.directory / "updates").mkdir(exist_ok=True)
        self._resumed = resume
        self._events_written = 0
        self._log = None  # opened lazily on first append

    # -- write side --------------------------------------------------------
    def _append(self, event: dict) -> None:
        if self._log is None:
            self._log = open(self.log_path, "a", encoding="utf-8")
        self._log.write(json.dumps(event, sort_keys=True) + "\n")
        self._log.flush()
        self._events_written += 1
        crash_after = os.environ.get(_CRASH_ENV)
        if crash_after and self._events_written >= int(crash_after):
            os._exit(42)  # the kill-and-resume drill dies here, mid-round

    def _write_snapshot(self, name: str, state: "dict[str, np.ndarray]") -> str:
        relative = f"snapshots/{name}.fsza"
        target = self.directory / relative
        tmp = target.with_suffix(".tmp")
        tmp.write_bytes(pack_arrays(dict(state)))
        os.replace(tmp, target)  # never expose a torn snapshot
        return relative

    def begin_run(self, codec_name: str, scenario_seed: int, n_clients: int,
                  global_state: "dict[str, np.ndarray]") -> None:
        """Journal the run header (no-op when resuming an existing run)."""
        if self._resumed:
            return
        snapshot = self._write_snapshot("initial", global_state)
        self._append({"event": "run_start", "journal_version": _JOURNAL_VERSION,
                      "codec": codec_name, "scenario_seed": int(scenario_seed),
                      "n_clients": int(n_clients), "snapshot": snapshot})

    def begin_round(self, plan: RoundPlan, resumed: bool = False) -> None:
        """Journal a round's scenario draw (skipped when replaying it)."""
        if resumed:
            return
        self._append({"event": "round_start", "round": plan.round_index,
                      "participants": list(plan.participants),
                      "dropped": list(plan.dropped),
                      "stragglers": list(plan.stragglers)})

    def record_shipped(self, round_index: int, result: ShipResult,
                       train_seconds: float, train_loss: float,
                       num_samples: int, status: str = "ontime",
                       delta_sidecar: "bytes | None" = None) -> None:
        """Persist one shipped update: payload file first, then the event."""
        if result.payload is None:
            raise ValueError("journaling needs the encoded payload; ship with "
                             "keep_payload=True")
        relative = f"updates/round_{round_index:06d}_client_{result.client_id:04d}.bin"
        (self.directory / relative).write_bytes(result.payload)
        delta_relative = None
        if delta_sidecar is not None:
            # sidecar file before the event, like the payload — the log line
            # is the commit point for both
            delta_relative = (f"updates/round_{round_index:06d}_client_"
                              f"{result.client_id:04d}.delta")
            (self.directory / delta_relative).write_bytes(delta_sidecar)
        report_fields = plan_hex = None
        if result.report is not None:
            report_fields = {name: getattr(result.report, name)
                             for name in _REPORT_FIELDS}
            if result.report.plan is not None:
                from repro.core.plan import pack_plan
                plan_hex = pack_plan(result.report.plan).hex()
        self._append({"event": "client_shipped", "round": round_index,
                      "client": result.client_id, "status": status,
                      "payload": relative, "payload_bytes": result.payload_bytes,
                      "raw_bytes": result.raw_bytes,
                      "encode_seconds": result.encode_seconds,
                      "transfer_seconds": result.transfer_seconds,
                      "decode_seconds": result.decode_seconds,
                      "train_seconds": train_seconds, "train_loss": train_loss,
                      "num_samples": num_samples, "report": report_fields,
                      "plan": plan_hex, "delta": delta_relative})

    def complete_round(self, record: RoundRecord,
                       global_state: "dict[str, np.ndarray]") -> None:
        """Journal a finished round: post-aggregation snapshot, then the record."""
        snapshot = self._write_snapshot(f"round_{record.round_index:06d}",
                                        global_state)
        payload = {name: getattr(record, name) for name in _RECORD_FIELDS}
        payload["absorbed_clients"] = {str(cid): origin for cid, origin
                                       in record.absorbed_clients.items()}
        payload["delta_degrades"] = {str(cid): reason for cid, reason
                                     in record.delta_degrades.items()}
        self._append({"event": "round_complete", "round": record.round_index,
                      "record": payload, "snapshot": snapshot})

    def close(self) -> None:
        """Close the log file handle (safe to call repeatedly)."""
        if self._log is not None:
            self._log.close()
            self._log = None

    # -- read side ---------------------------------------------------------
    def read_payload(self, event: ShippedEvent) -> bytes:
        """The stored encoded payload of a journaled shipped update."""
        return (self.directory / event.payload_path).read_bytes()

    def read_delta(self, event: ShippedEvent) -> "bytes | None":
        """The stored delta sidecar of a journaled ship (``None`` if it had
        none); raises :class:`OSError` when the referenced file is gone."""
        if event.delta_path is None:
            return None
        return (self.directory / event.delta_path).read_bytes()

    @staticmethod
    def reference_snapshot(round_index: int) -> str:
        """The snapshot holding the broadcast state of ``round_index`` — what
        a delta update shipped in that round must be decoded against."""
        if round_index == 0:
            return "snapshots/initial.fsza"
        return f"snapshots/round_{round_index - 1:06d}.fsza"

    def load(self) -> JournalState:
        """Parse the event log into a resumable :class:`JournalState`."""
        lines = self.log_path.read_text(encoding="utf-8").splitlines()
        events: list[dict] = []
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    break  # the torn in-flight append at the moment of death
                raise ValueError(f"corrupt journal {self.log_path}: unparseable "
                                 f"event at line {number + 1}") from None
        if not events or events[0].get("event") != "run_start":
            raise ValueError(f"corrupt journal {self.log_path}: missing run_start")
        header = events[0]
        version = header.get("journal_version")
        if version != _JOURNAL_VERSION:
            raise ValueError(f"journal version {version!r} is not supported "
                             f"(this build writes {_JOURNAL_VERSION})")
        state = JournalState(scenario_seed=int(header["scenario_seed"]),
                             codec_name=str(header["codec"]),
                             n_clients=int(header["n_clients"]),
                             snapshot_path=str(header["snapshot"]))

        partial: "PartialRoundState | None" = None
        for event in events[1:]:
            kind = event.get("event")
            if kind == "round_start":
                if partial is not None:
                    raise ValueError(f"corrupt journal: round {event['round']} "
                                     f"started before round "
                                     f"{partial.plan.round_index} completed")
                plan = RoundPlan(int(event["round"]),
                                 tuple(event["participants"]),
                                 tuple(event["dropped"]),
                                 tuple(event["stragglers"]))
                partial = PartialRoundState(plan=plan)
            elif kind == "client_shipped":
                if partial is None or int(event["round"]) != partial.plan.round_index:
                    raise ValueError("corrupt journal: client_shipped outside "
                                     "its round")
                shipped = ShippedEvent(
                    round_index=int(event["round"]), client_id=int(event["client"]),
                    status=str(event["status"]), payload_path=str(event["payload"]),
                    payload_bytes=int(event["payload_bytes"]),
                    raw_bytes=int(event["raw_bytes"]),
                    encode_seconds=float(event["encode_seconds"]),
                    transfer_seconds=float(event["transfer_seconds"]),
                    decode_seconds=float(event["decode_seconds"]),
                    train_seconds=float(event["train_seconds"]),
                    train_loss=float(event["train_loss"]),
                    num_samples=int(event["num_samples"]),
                    report_fields=event.get("report"), plan_hex=event.get("plan"),
                    delta_path=event.get("delta"))
                partial.shipped[shipped.client_id] = shipped
            elif kind == "round_complete":
                if partial is None or int(event["round"]) != partial.plan.round_index:
                    raise ValueError("corrupt journal: round_complete without a "
                                     "matching round_start")
                record_fields = dict(event["record"])
                absorbed = {int(cid): int(origin) for cid, origin
                            in record_fields.pop("absorbed_clients", {}).items()}
                degrades = {int(cid): str(reason) for cid, reason
                            in record_fields.pop("delta_degrades", {}).items()}
                record = RoundRecord(absorbed_clients=absorbed,
                                     delta_degrades=degrades, **record_fields)
                for shipped in partial.shipped.values():
                    report = shipped.rebuild_report()
                    if report is not None:
                        record.client_reports[shipped.client_id] = report
                        if report.plan is not None:
                            record.client_plans[shipped.client_id] = report.plan
                    if shipped.status == "late":
                        state.pending_late.append(shipped)
                state.records.append(record)
                state.snapshot_path = str(event["snapshot"])
                # an absorbed late update is consumed for good
                state.pending_late = [e for e in state.pending_late
                                      if absorbed.get(e.client_id) != e.round_index]
                # fold each client's delta state forward: an on-time ship
                # pins its sidecar, a dropout/late loses the reference
                for cid in record.dropped_clients:
                    state.delta_state[cid] = {"sidecar": None,
                                              "degrade": "dropout"}
                for cid in record.late_clients:
                    state.delta_state[cid] = {"sidecar": None, "degrade": "late"}
                for cid in record.participants:
                    shipped = partial.shipped.get(cid)
                    state.delta_state[cid] = {
                        "sidecar": shipped.delta_path if shipped else None,
                        "degrade": None}
                partial = None
            else:
                raise ValueError(f"corrupt journal: unknown event kind {kind!r}")
        state.partial = partial
        return state

    def load_snapshot(self, relative_path: str) -> "dict[str, np.ndarray]":
        """Deserialize a journaled global-state snapshot."""
        return unpack_arrays((self.directory / relative_path).read_bytes())

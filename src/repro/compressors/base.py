"""Common interfaces for the lossy and lossless compressors.

Every compressor exposes ``compress(array) -> bytes`` and
``decompress(bytes) -> array``.  Lossy compressors additionally carry an
:class:`ErrorBound` describing the per-element guarantee
``|x - x_reconstructed| <= eps`` where ``eps`` is either an absolute value or a
fraction of the data's dynamic range (the paper's REL mode).
"""

from __future__ import annotations

import abc
import enum
import math
import struct
import time
from dataclasses import dataclass

import numpy as np

from repro.utils.serialization import MAX_NDIM

#: A corrupt shape may multiply to astronomical element counts; refuse to
#: allocate reconstructions past this size (2**34 bytes = 16 GiB — far above
#: any real model update, and small enough that even the decoders' float64
#: intermediates cannot drive the process out of memory on a garbage header).
_MAX_DECODED_BYTES = 1 << 34

__all__ = [
    "ErrorBoundMode",
    "ErrorBound",
    "Compressor",
    "LossyCompressor",
    "TensorStreamDecoder",
    "TensorStreamEncoder",
    "CompressionStats",
    "roundtrip",
]


class ErrorBoundMode(str, enum.Enum):
    """How the user-facing error bound value is interpreted."""

    ABS = "abs"
    #: bound = value * (max(data) - min(data)); the paper's default mode.
    REL = "rel"


@dataclass(frozen=True)
class ErrorBound:
    """A user-facing error bound: a value and the mode used to interpret it."""

    value: float
    mode: ErrorBoundMode = ErrorBoundMode.REL

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"error bound must be positive, got {self.value}")

    def absolute(self, data: np.ndarray) -> float:
        """Resolve the bound to an absolute tolerance for ``data``.

        In REL mode a constant array has zero range; we then fall back to a
        tiny absolute bound so that compression degenerates gracefully to a
        near-lossless constant encoding instead of dividing by zero.
        """
        if self.mode is ErrorBoundMode.ABS:
            return float(self.value)
        data = np.asarray(data)
        if data.size == 0:
            return float(self.value)
        value_range = float(np.max(data) - np.min(data))
        if value_range == 0.0:
            scale = max(abs(float(data.flat[0])), 1.0)
            return float(self.value) * scale * 1e-6
        return float(self.value) * value_range


@dataclass
class CompressionStats:
    """Round-trip statistics for one compression call (used by the benches)."""

    original_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float
    max_abs_error: float

    @property
    def ratio(self) -> float:
        """Compression ratio ``original / compressed`` (>= 0)."""
        return self.original_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")

    @property
    def compress_throughput_mbps(self) -> float:
        """Compression throughput in MB/s of original data processed."""
        if self.compress_seconds <= 0:
            return float("inf")
        return self.original_bytes / 1e6 / self.compress_seconds

    @property
    def decompress_throughput_mbps(self) -> float:
        """Decompression throughput in MB/s of original data produced."""
        if self.decompress_seconds <= 0:
            return float("inf")
        return self.original_bytes / 1e6 / self.decompress_seconds


class Compressor(abc.ABC):
    """Abstract base class shared by lossy and lossless compressors."""

    #: short registry name, e.g. ``"sz2"``
    name: str = "base"

    @abc.abstractmethod
    def compress(self, data: np.ndarray) -> bytes:
        """Compress ``data`` into a self-describing byte string."""

    @abc.abstractmethod
    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct the array stored in ``payload``."""


class LossyCompressor(Compressor):
    """Base class for error-bounded lossy compressors.

    Subclasses implement :meth:`_compress_float1d` / :meth:`_decompress_float1d`
    operating on flattened ``float32``/``float64`` arrays with a resolved
    absolute bound.  This class handles shape/dtype bookkeeping, the REL→ABS
    resolution, and the payload header, so every compressor shares the same
    container format::

        u8   dtype code (0=float32, 1=float64)
        u8   ndim
        u64* shape
        f64  absolute error bound actually used
        ...  compressor-specific body
    """

    _DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
    _CODE_DTYPES = {0: np.dtype(np.float32), 1: np.dtype(np.float64)}

    #: Armed per-tensor codebook channel (warm Huffman-table reuse, see
    #: :mod:`repro.compressors.codebook`).  Always ``None`` on directly
    #: constructed instances; the pipeline arms a shallow copy per tensor via
    #: :meth:`with_codebook` so shared instances stay race-free.
    _codebook = None

    def __init__(self, error_bound: ErrorBound | float = 1e-2,
                 mode: ErrorBoundMode | str = ErrorBoundMode.REL) -> None:
        if isinstance(error_bound, ErrorBound):
            self.error_bound = error_bound
        else:
            self.error_bound = ErrorBound(float(error_bound), ErrorBoundMode(mode))

    # -- subclass hooks ----------------------------------------------------
    @abc.abstractmethod
    def _compress_float1d(self, data: np.ndarray, abs_bound: float) -> bytes:
        """Compress a contiguous 1-D float array under an absolute bound."""

    @abc.abstractmethod
    def _decompress_float1d(self, body: bytes, count: int, abs_bound: float,
                            dtype: np.dtype) -> np.ndarray:
        """Reconstruct ``count`` values from a compressor-specific body."""

    # -- public API ---------------------------------------------------------
    def _encode_prelude(self, data: np.ndarray) -> tuple[bytes, np.ndarray, float]:
        """Resolve the bound and build the shared container header.

        Returns ``(header, flat_float64, abs_bound)``.  Shared by the batch
        :meth:`compress` and the streaming encoders so both paths pin the
        identical header (bound resolution, ULP shaving, shape record) before
        any body byte exists.
        """
        data = np.asarray(data)
        if data.dtype not in self._DTYPE_CODES:
            data = data.astype(np.float32)
        flat = np.ascontiguousarray(data).ravel()
        abs_bound = self.error_bound.absolute(flat) if flat.size else float(self.error_bound.value)
        if data.dtype == np.dtype(np.float32) and flat.size:
            # Reconstruction happens in float64 but is returned in the input
            # dtype; shave one float32 ULP off the internal bound so the final
            # cast cannot push the error past the user-facing guarantee.
            ulp_margin = float(np.max(np.abs(flat))) * 2.0 ** -23
            if abs_bound > 2 * ulp_margin:
                abs_bound -= ulp_margin
        header = struct.pack("<BB", self._DTYPE_CODES[data.dtype], data.ndim)
        header += struct.pack(f"<{data.ndim}Q", *data.shape) if data.ndim else b""
        header += struct.pack("<d", abs_bound)
        return header, flat.astype(np.float64, copy=False), abs_bound

    def compress(self, data: np.ndarray) -> bytes:
        header, flat, abs_bound = self._encode_prelude(data)
        return header + self._compress_float1d(flat, abs_bound)

    @classmethod
    def _parse_container_header(cls, payload) -> tuple[np.dtype, tuple, int, float, int]:
        """Validate the shared lossy header of a (possibly partial) payload.

        Returns ``(dtype, shape, count, abs_bound, body_offset)``.  Shared by
        the batch :meth:`decompress` and the streaming decoders so both paths
        run identical validation; a truncated or corrupt header raises
        :class:`ValueError`.
        """
        if len(payload) < 2:
            raise ValueError(f"corrupt lossy payload: header needs 2 bytes, "
                             f"got {len(payload)}")
        dtype_code, ndim = struct.unpack_from("<BB", payload, 0)
        if dtype_code not in cls._CODE_DTYPES:
            raise ValueError(f"corrupt lossy payload: unknown dtype code {dtype_code}")
        if ndim > MAX_NDIM:
            raise ValueError(f"corrupt lossy payload: ndim {ndim} exceeds "
                             f"NumPy's limit of {MAX_NDIM}")
        offset = 2
        if len(payload) < offset + 8 * ndim + 8:
            raise ValueError(f"corrupt lossy payload: header truncated at "
                             f"{len(payload)} bytes ({8 * ndim + 10} needed)")
        shape = struct.unpack_from(f"<{ndim}Q", payload, offset) if ndim else ()
        offset += 8 * ndim
        (abs_bound,) = struct.unpack_from("<d", payload, offset)
        offset += 8
        if not math.isfinite(abs_bound) or abs_bound < 0:
            raise ValueError(f"corrupt lossy payload: absolute bound {abs_bound!r} "
                             f"is not a non-negative finite value")
        dtype = cls._CODE_DTYPES[dtype_code]
        count = math.prod(shape) if ndim else 1
        if count * dtype.itemsize > _MAX_DECODED_BYTES:
            raise ValueError(f"corrupt lossy payload: shape {shape} declares an "
                             f"implausible {count} elements")
        return dtype, shape, count, abs_bound, offset

    def _normalized_body_decode(self, decode, *args):
        """Run a body decoder with failures normalized to :class:`ValueError`."""
        try:
            return decode(*args)
        except ValueError:
            raise
        except Exception as exc:
            # backend failures (zlib.error, struct.error, IndexError, ...) on
            # corrupt bodies are part of the same documented contract
            raise ValueError(f"corrupt lossy payload: body failed to decode "
                             f"({type(exc).__name__}: {exc})") from exc

    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct the array stored in ``payload``.

        A truncated or corrupted payload raises :class:`ValueError` — every
        header field is validated before use and body-decoder failures of any
        kind are normalized to the same contract.
        """
        dtype, shape, count, abs_bound, offset = self._parse_container_header(payload)
        flat = self._normalized_body_decode(
            self._decompress_float1d, payload[offset:], count, abs_bound, dtype)
        return flat.astype(dtype, copy=False).reshape(shape)

    def stream_decoder(self) -> "TensorStreamDecoder":
        """Return a push-based incremental decoder for one lossy payload.

        The base implementation buffers the whole payload and decodes at
        :meth:`TensorStreamDecoder.finish` — correct for every codec but
        overlaps nothing.  Codecs whose body embeds an incrementally decodable
        entropy stream (SZ2/SZ3) override this to decode while bytes arrive;
        both paths produce bit-identical arrays.
        """
        return TensorStreamDecoder(self)

    def stream_encoder(self) -> "TensorStreamEncoder":
        """Return a pull-based incremental encoder for one lossy payload.

        The base implementation pins the shared container header, then emits
        the whole body in one piece — correct for every codec but overlaps
        nothing.  Codecs whose body embeds an incrementally producible entropy
        stream (SZ2/SZ3) override this to emit the body as it is coded; either
        way the concatenated pieces are byte-identical to :meth:`compress`.
        """
        return TensorStreamEncoder(self)

    def with_error_bound(self, error_bound: ErrorBound | float,
                         mode: ErrorBoundMode | str | None = None) -> "LossyCompressor":
        """Return a copy of this compressor configured with a new bound."""
        if isinstance(error_bound, ErrorBound):
            bound = error_bound
        else:
            bound_mode = ErrorBoundMode(mode) if mode is not None else self.error_bound.mode
            bound = ErrorBound(float(error_bound), bound_mode)
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.error_bound = bound
        return clone

    def with_codebook(self, channel) -> "LossyCompressor":
        """Return a shallow copy with a per-tensor codebook channel armed.

        The copy shares every configured sub-component (entropy coder,
        lossless backend, quantizer — all stateless per call); only the
        channel slot differs, so arming never races encodes of other tensors
        on the original instance.
        """
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone._codebook = channel
        return clone


class TensorStreamDecoder:
    """Push-based incremental decoder for one lossy tensor payload.

    :meth:`feed` accepts payload bytes in any chunking; :meth:`finish`
    returns the reconstructed array (or raises :class:`ValueError` for a
    truncated/corrupt stream, like :meth:`LossyCompressor.decompress`).
    This base implementation simply buffers and decodes at the end; codec
    subclasses overlap the expensive stages with arrival.
    """

    def __init__(self, compressor: LossyCompressor) -> None:
        self._compressor = compressor
        self._buf = bytearray()
        self._result: np.ndarray | None = None

    @property
    def bytes_received(self) -> int:
        """Payload bytes fed so far."""
        return len(self._buf)

    def feed(self, data) -> None:
        """Consume arriving payload bytes."""
        if self._result is not None:
            raise ValueError("cannot feed a finished tensor stream decoder")
        self._buf += memoryview(data)

    def finish(self) -> np.ndarray:
        """Return the reconstructed array once the stream is complete."""
        if self._result is None:
            self._result = self._compressor.decompress(bytes(self._buf))
        return self._result


class TensorStreamEncoder:
    """Pull-based incremental encoder for one lossy tensor payload.

    :meth:`chunks` yields payload byte pieces in stream order; their
    concatenation is byte-identical to :meth:`LossyCompressor.compress` on
    the same data.  This base implementation emits the whole payload in a
    single piece by delegating to :meth:`~LossyCompressor.compress`, which
    makes it correct for every codec — including ones that override
    ``compress`` wholesale (e.g. verbatim) — but overlaps nothing.  Codecs
    with an incrementally producible body (SZ2/SZ3) substitute
    :class:`~repro.compressors.streaming.SZStreamEncoder`, which emits the
    pinned container header first and body pieces as they are coded.
    ``scratch_bytes`` reports the encoder's analytic peak scratch estimate
    after the generator is exhausted (0 when the codec does not track it).
    """

    def __init__(self, compressor: LossyCompressor) -> None:
        self._compressor = compressor
        self.scratch_bytes = 0

    def chunks(self, data: np.ndarray):
        """Yield the payload pieces for ``data`` in stream order."""
        yield self._compressor.compress(data)


def roundtrip(compressor: Compressor, data: np.ndarray) -> tuple[np.ndarray, CompressionStats]:
    """Compress then decompress ``data``, returning the reconstruction and stats."""
    data = np.asarray(data)
    start = time.perf_counter()
    payload = compressor.compress(data)
    mid = time.perf_counter()
    recon = compressor.decompress(payload)
    end = time.perf_counter()
    max_err = float(np.max(np.abs(data.astype(np.float64) - recon.astype(np.float64)))) if data.size else 0.0
    stats = CompressionStats(
        original_bytes=int(data.nbytes),
        compressed_bytes=len(payload),
        compress_seconds=mid - start,
        decompress_seconds=end - mid,
        max_abs_error=max_err,
    )
    return recon, stats

"""Mini-batch iteration and train/test splitting."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import make_rng

__all__ = ["BatchLoader", "train_test_split"]


class BatchLoader:
    """Iterate a dataset in shuffled mini-batches of (images, labels)."""

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = True,
                 seed: int | None = 0, drop_last: bool = False) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = make_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     seed: int | None = 0) -> tuple[Dataset, Dataset]:
    """Random split of a dataset into train/test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = make_rng(seed)
    n = len(dataset)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)

"""Cross-round residual shipping: delta codec, tracker, warm codebooks."""

from __future__ import annotations

import os
import pickle
from types import SimpleNamespace

import numpy as np
import pytest

from repro.compressors.codebook import (CodebookChannel, CodebookStore,
                                        decide_reuse, entropy_encode,
                                        padded_lengths)
from repro.compressors.huffman import HuffmanCoder, _decode_tables_cached
from repro.core import FedSZConfig
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec
from repro.fl.delta import (MODE_DELTA, MODE_FULL, DeltaChannel,
                            DeltaTracker, DeltaUpdateCodec,
                            advance_accumulator, ef_residual, pack_frame,
                            pack_sidecar, parse_frame, reconstruct,
                            restore_sidecar)
from repro.nn import build_model


def _state(seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return {
        "fc.weight": (scale * rng.standard_normal((64, 32))).astype(np.float32),
        "fc.bias": (scale * rng.standard_normal(8)).astype(np.float32),
        "steps": np.asarray(rng.integers(0, 100, size=4), dtype=np.int64),
    }


def _config(**kw):
    kw.setdefault("error_bound", 1e-3)
    kw.setdefault("threshold", 16)
    return FedSZConfig(**kw)


class TestFrame:
    def test_roundtrip(self):
        payload = pack_frame(MODE_DELTA, 7)
        assert len(payload) == 13
        assert parse_frame(payload) == (MODE_DELTA, 7, 13)
        assert parse_frame(pack_frame(MODE_FULL, 0))[0] == MODE_FULL

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="FDL5"):
            parse_frame(b"XXXX" + pack_frame(MODE_FULL, 0)[4:])

    def test_truncation_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            parse_frame(pack_frame(MODE_FULL, 0)[:12])

    def test_unknown_mode_rejected(self):
        bad = bytearray(pack_frame(MODE_FULL, 0))
        bad[4] = 9
        with pytest.raises(ValueError, match="mode"):
            parse_frame(bytes(bad))


class TestKernels:
    def test_residual_reconstruct_roundtrip_exact_without_quantization(self):
        state, ref = _state(1), _state(2)
        res = ef_residual(state, ref, None)
        recon = reconstruct(ref, res)
        for name in state:
            assert recon[name].dtype == state[name].dtype
            if state[name].dtype.kind == "f":
                # float64 subtract/add cast through float32 is not exact in
                # general, but stays within one float32 ulp of the operands
                ulp = np.finfo(np.float32).eps * np.max(np.abs(state[name]))
                np.testing.assert_allclose(recon[name], state[name],
                                           rtol=0, atol=2 * ulp)
            else:
                np.testing.assert_array_equal(recon[name], state[name])

    def test_integer_residuals_wraparound_exact(self):
        state = {"steps": np.array([0, 255, 7], dtype=np.uint8)}
        ref = {"steps": np.array([255, 0, 200], dtype=np.uint8)}
        res = ef_residual(state, ref, None)
        assert res["steps"].dtype == np.uint8
        np.testing.assert_array_equal(reconstruct(ref, res)["steps"],
                                      state["steps"])

    def test_accumulator_carries_error_forward(self):
        state, ref = _state(3), _state(4)
        acc = {"fc.weight": np.full((64, 32), 0.25, dtype=np.float64)}
        res = ef_residual(state, ref, acc)
        plain = ef_residual(state, ref, None)
        np.testing.assert_allclose(
            res["fc.weight"].astype(np.float64) -
            plain["fc.weight"].astype(np.float64), 0.25, atol=1e-4)

    def test_advance_accumulator_is_float64_error_plus_carry(self):
        state, recon = _state(5), _state(6)
        carry = {"fc.bias": np.full(8, -1.5, dtype=np.float64)}
        acc = advance_accumulator(state, recon, carry)
        assert set(acc) == {"fc.weight", "fc.bias"}  # floats only
        assert acc["fc.bias"].dtype == np.float64
        expected = (state["fc.bias"].astype(np.float64)
                    - recon["fc.bias"].astype(np.float64)) - 1.5
        np.testing.assert_array_equal(acc["fc.bias"], expected)

    def test_mismatched_reference_raises(self):
        state = {"fc.weight": np.zeros((2, 2), dtype=np.float32)}
        with pytest.raises(ValueError, match="missing or reshaped"):
            ef_residual(state, {"fc.weight": np.zeros(3, dtype=np.float32)},
                        None)
        with pytest.raises(ValueError, match="missing or reshaped"):
            reconstruct({}, state)


class TestDeltaCodec:
    def _codec(self, **kw):
        return DeltaUpdateCodec(FedSZUpdateCodec(_config(**kw)))

    def test_unarmed_ships_full_frame(self):
        codec = self._codec()
        state = _state(7)
        payload = codec.encode(state)
        mode, generation, offset = parse_frame(payload)
        assert (mode, generation) == (MODE_FULL, 0)
        # the inner bitstream is byte-identical to the unwrapped codec's
        assert payload[offset:] == codec.inner.encode(state)
        recon = codec.decode(payload)
        bound = 1e-3 * (np.ptp(state["fc.weight"]))
        assert np.max(np.abs(recon["fc.weight"] - state["fc.weight"])) <= \
            bound * (1 + 1e-6) + 1e-12

    def test_armed_delta_respects_bound_on_residual(self):
        codec = self._codec()
        ref = _state(8)
        state = {k: (v + 0.01 * np.ones_like(v) if v.dtype.kind == "f" else v)
                 for k, v in ref.items()}
        codec.arm(ref, 3, delta=True)
        payload = codec.encode(state)
        assert parse_frame(payload)[:2] == (MODE_DELTA, 3)
        recon = codec.decode(payload)
        # a REL bound is a fidelity request about the *state* tensor: the
        # codec rescales it before compressing the (much smaller) residual
        bound = 1e-3 * np.ptp(state["fc.weight"])
        assert np.max(np.abs(recon["fc.weight"].astype(np.float64)
                             - state["fc.weight"])) <= bound * (1 + 1e-6) + 1e-12
        np.testing.assert_array_equal(recon["steps"], state["steps"])

    def test_delta_payload_smaller_than_full(self):
        codec = self._codec()
        ref = _state(9)
        rng = np.random.default_rng(10)
        # a sparse update: most of the residual quantizes to the predictable
        # code, which is where the ratio win comes from
        state = {}
        for k, v in ref.items():
            if v.dtype.kind == "f":
                mask = rng.random(v.shape) < 0.05
                state[k] = v + mask * rng.standard_normal(v.shape).astype(v.dtype)
            else:
                state[k] = v
        full = codec.encode(state)
        codec.arm(ref, 0, delta=True)
        assert len(codec.encode(state)) < len(full) / 2

    def test_generation_mismatch_fails_loudly(self):
        codec = self._codec()
        ref = _state(11)
        codec.arm(ref, 5, delta=True)
        payload = codec.encode(_state(12))
        codec.arm(ref, 6, delta=True)
        with pytest.raises(ValueError, match="generation"):
            codec.decode(payload)

    def test_unarmed_delta_decode_fails_loudly(self):
        codec = self._codec()
        ref = _state(13)
        codec.arm(ref, 1, delta=True)
        payload = codec.encode(_state(14))
        codec.disarm()
        with pytest.raises(ValueError, match="no reference"):
            codec.decode(payload)

    def test_streaming_paths_byte_identical(self):
        for delta in (False, True):
            codec = self._codec()
            ref, state = _state(15), _state(16)
            if delta:
                codec.arm(ref, 2, delta=True)
            batch = codec.encode(state)
            encoder = codec.stream_encoder()
            streamed = b"".join(encoder.chunks(state))
            assert streamed == batch
            decoder = codec.stream_decoder()
            for k in range(0, len(batch), 997):
                decoder.feed(batch[k:k + 997])
            recon, _report = decoder.finish()
            expected = codec.decode(batch)
            for name in expected:
                np.testing.assert_array_equal(recon[name], expected[name])

    def test_stream_decoder_rejects_stale_generation_at_first_bytes(self):
        codec = self._codec()
        ref = _state(17)
        codec.arm(ref, 4, delta=True)
        payload = codec.encode(_state(18))
        codec.arm(ref, 5, delta=True)
        decoder = codec.stream_decoder()
        with pytest.raises(ValueError, match="generation"):
            decoder.feed(payload[:13])

    def test_detached_clone_needs_reattachment(self):
        codec = self._codec()
        ref = _state(19)
        codec.arm(ref, 1, delta=True)
        payload = codec.encode(_state(20))
        clone = codec.detached()
        with pytest.raises(ValueError, match="no reference"):
            clone.decode(payload)
        clone.attach_reference(ref)
        recon = clone.decode(payload)
        np.testing.assert_array_equal(recon["steps"], _state(20)["steps"])

    def test_armed_codec_pickles_byte_identically(self):
        codec = self._codec()
        ref, state = _state(21), _state(22)
        codec.arm(ref, 3, delta=True)
        twin = pickle.loads(pickle.dumps(codec))
        assert twin.encode(state) == codec.encode(state)

    def test_error_feedback_bounds_multi_round_drift(self):
        # chained EF: the served reconstruction never drifts past a couple of
        # single-round quantization errors, even after many rounds
        codec = self._codec(error_bound=1e-2)
        rng = np.random.default_rng(23)
        ref = _state(24)
        acc = None
        worst = 0.0
        for round_index in range(6):
            state = {k: (v + 0.02 * rng.standard_normal(v.shape).astype(v.dtype)
                         if v.dtype.kind == "f" else v)
                     for k, v in ref.items()}
            codec.arm(ref, round_index, delta=True, acc=acc)
            recon = codec.decode(codec.encode(state))
            acc = advance_accumulator(state, recon, acc)
            bound = 1e-2 * np.ptp(state["fc.weight"])
            err = np.max(np.abs(recon["fc.weight"].astype(np.float64)
                                - state["fc.weight"]))
            worst = max(worst, err / bound)
            ref = recon  # the server acknowledges what it reconstructed
        assert worst <= 2.5


class TestSidecar:
    def test_roundtrip_bit_exact(self):
        channel = DeltaChannel(0)
        channel.generation = 9
        channel.acc = {"fc.weight": np.random.default_rng(1).standard_normal(
            (4, 4)).astype(np.float64)}
        channel.codebooks.tables = {"sz3:fc.weight": b"\x01\x02\x10"}
        blob = pack_sidecar(channel)
        twin = DeltaChannel(0)
        restore_sidecar(twin, blob)
        assert twin.ready and twin.degrade is None
        assert twin.generation == 9
        np.testing.assert_array_equal(twin.acc["fc.weight"],
                                      channel.acc["fc.weight"])
        assert twin.codebooks.tables == channel.codebooks.tables

    def test_corrupt_blob_raises(self):
        with pytest.raises(ValueError):
            restore_sidecar(DeltaChannel(0), b"not a sidecar")

    def test_missing_generation_raises(self):
        from repro.utils.serialization import pack_arrays
        with pytest.raises(ValueError, match="generation"):
            restore_sidecar(DeltaChannel(0), pack_arrays({}))


def _plan(participants, dropped=()):
    return SimpleNamespace(participants=list(participants),
                           dropped=list(dropped))


class TestTracker:
    def _tracker(self, n=2):
        codecs = {cid: DeltaUpdateCodec(RawUpdateCodec()) for cid in range(n)}
        return DeltaTracker(codecs), codecs

    def test_first_round_cold_then_ready(self):
        tracker, codecs = self._tracker()
        state = _state(30)
        tracker.begin_round(0, state, _plan([0, 1]), "sig")
        clients, degrades, _ = tracker.round_summary()
        assert clients == [] and degrades == {0: "cold", 1: "cold"}
        for cid in (0, 1):
            tracker.complete_ship(cid, state, state, None, sidecar=False)
        tracker.begin_round(1, state, _plan([0, 1]), "sig")
        clients, degrades, _ = tracker.round_summary()
        assert clients == [0, 1] and degrades == {}
        assert codecs[0]._armed_delta

    def test_dropout_invalidates_until_next_completed_ship(self):
        tracker, _ = self._tracker()
        state = _state(31)
        tracker.begin_round(0, state, _plan([0, 1]), "sig")
        for cid in (0, 1):
            tracker.complete_ship(cid, state, state, None, sidecar=False)
        tracker.begin_round(1, state, _plan([1], dropped=[0]), "sig")
        tracker.complete_ship(1, state, state, None, sidecar=False)
        tracker.begin_round(2, state, _plan([0, 1]), "sig")
        clients, degrades, _ = tracker.round_summary()
        assert clients == [1]
        assert degrades == {0: "dropout"}

    def test_late_ship_invalidates(self):
        tracker, _ = self._tracker()
        state = _state(32)
        tracker.begin_round(0, state, _plan([0, 1]), "sig")
        tracker.complete_ship(0, state, state, None, sidecar=False)
        tracker.invalidate(1, "late")
        clients, degrades, _ = tracker.round_summary()
        assert clients == [] and degrades[1] == "late"
        tracker.begin_round(1, state, _plan([0, 1]), "sig")
        clients, degrades, _ = tracker.round_summary()
        assert clients == [0] and degrades == {1: "late"}

    def test_roster_change_invalidates_everyone(self):
        tracker, _ = self._tracker()
        state = _state(33)
        tracker.begin_round(0, state, _plan([0, 1]), "roster-a")
        for cid in (0, 1):
            tracker.complete_ship(cid, state, state, None, sidecar=False)
        tracker.begin_round(1, state, _plan([0, 1]), "roster-b")
        clients, degrades, _ = tracker.round_summary()
        assert clients == []
        assert degrades == {0: "roster-change", 1: "roster-change"}

    def test_adopt_replayed_missing_sidecar_degrades(self):
        tracker, _ = self._tracker()
        state = _state(34)
        tracker.begin_round(0, state, _plan([0, 1]), "sig")
        tracker.adopt_replayed(0, None, late=False)
        tracker.adopt_replayed(1, b"garbage", late=False)
        assert tracker.channels[0].degrade == "resume-loss"
        assert tracker.channels[1].degrade == "resume-loss"
        assert not tracker.channels[0].ready

    def test_restore_paths(self):
        tracker, _ = self._tracker()
        good = DeltaChannel(0)
        good.generation = 2
        good.acc = {}
        blob = pack_sidecar(good)
        loader = {"ok": blob, "bad": b"junk", "gone": None}.get
        tracker.restore({0: {"sidecar": "ok", "degrade": None},
                         1: {"sidecar": None, "degrade": "dropout"}}, loader)
        assert tracker.channels[0].ready
        assert tracker.channels[0].generation == 2
        assert tracker.channels[1].degrade == "dropout"
        tracker.restore({0: {"sidecar": "bad", "degrade": None},
                         1: {"sidecar": "gone", "degrade": None}}, loader)
        assert tracker.channels[0].degrade == "resume-loss"
        assert tracker.channels[1].degrade == "resume-loss"

    def test_restore_never_shipped_stays_cold(self):
        tracker, _ = self._tracker()
        tracker.restore({0: {"sidecar": None, "degrade": None}}, lambda p: None)
        assert not tracker.channels[0].ready
        assert tracker.channels[0].degrade is None


class TestWarmCodebooks:
    @staticmethod
    def _stable_symbols(seed):
        # near-dyadic distribution: excess bits stay well under the threshold
        rng = np.random.default_rng(seed)
        return np.clip(rng.geometric(0.5, size=20_000) + 99, 0, 200)

    def test_identical_distribution_reuses(self):
        symbols = self._stable_symbols(40)
        lengths = padded_lengths(symbols)
        assert decide_reuse(lengths, symbols)

    def test_wandering_tail_covered_by_padding(self):
        symbols = self._stable_symbols(41)
        lengths = padded_lengths(symbols)
        drifted = np.concatenate([symbols, [111, 112, 99, 0]])
        assert decide_reuse(lengths, drifted)

    def test_unpadded_table_fails_coverage(self):
        rng = np.random.default_rng(42)
        symbols = rng.integers(100, 160, size=20_000)
        producer = HuffmanCoder().stream_producer(symbols)
        lengths = np.frombuffer(producer.code_lengths,
                                dtype=np.uint8).astype(np.int64)
        assert not decide_reuse(lengths, np.concatenate([symbols, [161]]))

    def test_reshaped_distribution_drifts(self):
        rng = np.random.default_rng(43)
        symbols = rng.integers(100, 160, size=20_000)
        lengths = padded_lengths(symbols)
        reshaped = rng.integers(100, 104, size=20_000)
        assert not decide_reuse(lengths, reshaped)

    def test_armed_encode_roundtrips_and_reports(self):
        rng = np.random.default_rng(44)
        coder = HuffmanCoder()
        store = CodebookStore()

        def draw():
            # near-dyadic distribution: a stable quantization-code profile
            return np.clip(rng.geometric(0.5, size=30_000) + 49, 0, 120)

        symbols = draw()
        chan = store.channel("sz3:t")
        payload = entropy_encode(coder, symbols, chan)
        np.testing.assert_array_equal(coder.decode(payload), symbols)
        assert chan.decision == "miss"
        store.commit({chan.key: (chan.decision, chan.table)})
        # second round, same distribution: the pinned table is reused and the
        # stream still decodes exactly
        chan2 = store.channel("sz3:t")
        symbols2 = draw()
        payload2 = entropy_encode(coder, symbols2, chan2)
        assert chan2.decision == "reused"
        np.testing.assert_array_equal(coder.decode(payload2), symbols2)
        store.commit({chan2.key: (chan2.decision, chan2.table)})
        assert store.counters == {"reuses": 1, "drifts": 0, "misses": 1}

    def test_unarmed_encode_byte_identical_to_plain(self):
        rng = np.random.default_rng(45)
        coder = HuffmanCoder()
        symbols = rng.integers(0, 300, size=10_000)
        assert entropy_encode(coder, symbols, None) == coder.encode(symbols)

    def test_store_invalidate_drops_tables(self):
        store = CodebookStore()
        store.tables["k"] = b"\x01"
        store.invalidate()
        assert store.channel("k").pin is None

    def test_decode_table_cache_hits_across_streams(self):
        rng = np.random.default_rng(46)
        coder = HuffmanCoder()
        symbols = rng.integers(0, 64, size=30_000)
        lengths = padded_lengths(symbols)
        before = _decode_tables_cached.cache_info().hits
        coder.decode(coder.encode(symbols, lengths=lengths))
        coder.decode(coder.encode(symbols[:15_000], lengths=lengths))
        assert _decode_tables_cached.cache_info().hits > before

    def test_pinned_lengths_must_cover(self):
        coder = HuffmanCoder()
        with pytest.raises(ValueError, match="cover"):
            coder.encode(np.array([1, 2, 9]), lengths=np.array([0, 1, 1]))


# ---------------------------------------------------------------------------
def _factory():
    return build_model("simplecnn", num_classes=10, in_channels=3,
                       image_size=16, seed=0)


@pytest.fixture(scope="module")
def delta_split():
    ds = make_dataset("cifar10", n_samples=240, image_size=16, seed=7)
    return train_test_split(ds, test_fraction=0.25, seed=3)


def _make_sim(split, **kwargs):
    train, test = split
    defaults = dict(n_clients=3, seed=5, lr=0.1, batch_size=32,
                    codec=FedSZUpdateCodec(_config(error_bound=1e-2,
                                                   threshold=64)),
                    delta=True)
    defaults.update(kwargs)
    return FederatedSimulation(_factory, train, test, **defaults)


def _delta_fields(result):
    return [(r.round_index, r.transmitted_bytes, r.accuracy,
             tuple(r.client_losses), tuple(r.delta_clients),
             tuple(sorted(r.delta_degrades.items())))
            for r in result.rounds]


class TestDeltaSimulation:
    def test_round_zero_full_then_residuals_shrink_bytes(self, delta_split):
        full = _make_sim(delta_split, delta=False).run(3)
        res = _make_sim(delta_split).run(3)
        assert res.rounds[0].delta_clients == []
        assert res.rounds[0].delta_degrades == {0: "cold", 1: "cold", 2: "cold"}
        for r in res.rounds[1:]:
            assert r.delta_clients == [0, 1, 2]
            assert r.transmitted_bytes < full.rounds[r.round_index].transmitted_bytes

    def test_bit_identical_across_backends_and_streaming(self, delta_split):
        ref = _make_sim(delta_split, backend="serial", max_workers=1).run(3)
        for kwargs in ({"backend": "thread", "max_workers": 4},
                       {"backend": "thread", "max_workers": 4,
                        "streaming": True, "streaming_encode": True},
                       {"backend": "process", "max_workers": 2,
                        "streaming": True, "streaming_encode": True}):
            got = _make_sim(delta_split, **kwargs).run(3)
            assert _delta_fields(got) == _delta_fields(ref), kwargs

    def test_dropout_degrades_next_participation(self, delta_split):
        result = _make_sim(delta_split, dropout_prob=0.4, seed=9).run(5)
        dropped_before = set()
        saw_degrade = False
        for r in result.rounds:
            for cid in r.participants:
                if cid in dropped_before:
                    assert cid not in r.delta_clients
                    assert r.delta_degrades.get(cid) == "dropout"
                    saw_degrade = True
                dropped_before.discard(cid)
            dropped_before.update(r.dropped_clients)
        assert saw_degrade, "seed produced no dropout-then-return sequence"

    def test_journal_resume_bit_identical(self, tmp_path, delta_split):
        reference = _make_sim(delta_split).run(4)
        _make_sim(delta_split, journal_dir=tmp_path / "j").run(2)
        resumed = _make_sim(delta_split, journal_dir=tmp_path / "j",
                            resume=True).run(4)
        assert _delta_fields(resumed) == _delta_fields(reference)

    def test_kill_resume_drill_bit_identical(self, tmp_path, delta_split,
                                             monkeypatch):
        reference = _make_sim(delta_split).run(3)

        def fake_exit(code):
            raise SystemExit(code)

        monkeypatch.setattr(os, "_exit", fake_exit)
        monkeypatch.setenv("REPRO_JOURNAL_CRASH_AFTER", "5")
        with pytest.raises(SystemExit):
            _make_sim(delta_split, journal_dir=tmp_path / "j").run(3)
        monkeypatch.delenv("REPRO_JOURNAL_CRASH_AFTER")
        resumed = _make_sim(delta_split, journal_dir=tmp_path / "j",
                            resume=True).run(3)
        assert _delta_fields(resumed) == _delta_fields(reference)

    def test_missing_sidecars_degrade_to_full_ship(self, tmp_path, delta_split):
        _make_sim(delta_split, journal_dir=tmp_path / "j").run(2)
        for name in os.listdir(tmp_path / "j" / "updates"):
            if name.endswith(".delta"):
                os.unlink(tmp_path / "j" / "updates" / name)
        resumed = _make_sim(delta_split, journal_dir=tmp_path / "j",
                            resume=True).run(3)
        live = resumed.rounds[2]  # first live round after the resume
        assert live.delta_clients == []
        assert set(live.delta_degrades.values()) == {"resume-loss"}

    def test_delta_off_ships_unframed_payloads(self, delta_split):
        sim = _make_sim(delta_split, delta=False)
        assert not any(isinstance(codec, DeltaUpdateCodec)
                       for codec in sim.client_codecs)
        delta_sim = _make_sim(delta_split)
        assert all(isinstance(codec, DeltaUpdateCodec)
                   for codec in delta_sim.client_codecs)
        assert delta_sim.coordinator.codec_name == "delta+fedsz"

"""Round-engine concurrency: parallel workers vs the sequential reference.

An 8-client FedAvg round over a simulated 2 Mbps uplink (``simulate_delay=True``,
the paper's MPI-delay-injection methodology) is executed sequentially
(``max_workers=1``) and with a 4-worker pool on the selected execution backend
(``--backend serial|thread|process``).  The parallel engine must be measurably
faster in wall clock — the injected per-client transfer delays overlap across
workers, and on multicore hosts the BLAS-heavy training does too — while
reproducing the sequential accuracies and byte counts bit-for-bit on every
backend.

Two entry points:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_round_engine.py -o
  python_files="bench_*.py" -o python_functions="bench_*"`` — the historic
  pytest-benchmark harness (thread backend, persists results),
* ``PYTHONPATH=src python benchmarks/bench_round_engine.py [--backend process]
  [--smoke]`` — direct CLI; ``--smoke`` is the correctness-only CI drill that
  exercises the backend's picklability contract end-to-end without timing
  assertions or clobbering committed results.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import fl_settings, quick_fl_data, save_results
from repro.core import NetworkModel
from repro.fl import FederatedSimulation, RawUpdateCodec
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model

N_CLIENTS = 8
WORKERS = 4
ROUNDS = 2
BANDWIDTH_MBPS = 2.0


def _build_simulation(train, test, cfg, max_workers: int,
                      backend: str = "thread") -> FederatedSimulation:
    def factory():
        return build_model(cfg["model"], num_classes=10, in_channels=3,
                           image_size=cfg["image_size"], seed=0)

    network = NetworkModel(bandwidth_mbps=BANDWIDTH_MBPS, simulate_delay=True)
    return FederatedSimulation(factory, train, test, n_clients=N_CLIENTS,
                               codec=RawUpdateCodec(), network=network,
                               batch_size=cfg["batch_size"], lr=cfg["lr"], seed=11,
                               max_workers=max_workers, uplink="parallel",
                               backend=backend)


def _run_engine(backend: str, workers: int = WORKERS, rounds: int = ROUNDS):
    """Sequential vs ``workers``-wide run on ``backend``; returns walls/results."""
    cfg = fl_settings()
    train, test = quick_fl_data("cifar10", seed=47)
    walls = {}
    results = {}
    for max_workers in (1, workers):
        sim = _build_simulation(train, test, cfg, max_workers, backend=backend)
        start = time.perf_counter()
        results[max_workers] = sim.run(rounds)
        walls[max_workers] = time.perf_counter() - start
    return walls, results


def _check_and_report(walls, results, backend: str, workers: int,
                      persist: bool, assert_speedup: bool) -> int:
    sequential, parallel = results[1], results[workers]
    speedup = walls[1] / walls[workers]

    table = Table(f"Round engine ({backend} backend) - {N_CLIENTS} clients, "
                  f"{ROUNDS} rounds, {BANDWIDTH_MBPS:g} Mbps simulated uplink",
                  ["workers", "wall (s)", "speedup", "final acc", "upload (KB)"])
    record = ExperimentRecord("round_engine",
                              "parallel round engine vs sequential reference")
    record.add(backend=backend, host_cores=os.cpu_count() or 1)
    for max_workers in (1, workers):
        result = results[max_workers]
        table.add_row(max_workers, f"{walls[max_workers]:.2f}",
                      f"{walls[1] / walls[max_workers]:.2f}x",
                      f"{result.final_accuracy:.1%}",
                      f"{result.total_transmitted_bytes / 1e3:.1f}")
        record.add(workers=max_workers, wall_seconds=walls[max_workers],
                   final_accuracy=result.final_accuracy,
                   transmitted_bytes=result.total_transmitted_bytes)
    record.add(speedup=speedup)
    if persist:
        save_results("round_engine", table, record)
    else:
        print()
        print(table.render())

    # The parallel engine must reproduce the sequential reference bit-for-bit...
    assert parallel.accuracies == sequential.accuracies
    assert [r.transmitted_bytes for r in parallel.rounds] == \
        [r.transmitted_bytes for r in sequential.rounds]
    assert [r.communication_seconds for r in parallel.rounds] == \
        [r.communication_seconds for r in sequential.rounds]
    assert np.all([r.client_losses == s.client_losses
                   for r, s in zip(parallel.rounds, sequential.rounds)])
    # ... while finishing measurably sooner (transfer delays overlap).  The
    # timing assertion is skipped on shared CI runners, where scheduling noise
    # on a loaded 2-core box would make a single-round wall-clock comparison
    # flaky; the table above still reports the measured speedup there.
    if assert_speedup and not os.environ.get("CI"):
        assert walls[workers] < walls[1] * 0.8, \
            f"expected >1.25x speedup, got {speedup:.2f}x"
    return 0


def bench_round_engine(benchmark):
    """pytest-benchmark harness (historic entry point; thread backend)."""
    walls, results = benchmark.pedantic(lambda: _run_engine("thread"),
                                        rounds=1, iterations=1)
    _check_and_report(walls, results, backend="thread", workers=WORKERS,
                      persist=True, assert_speedup=True)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend for the parallel engine side")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help="worker-pool size of the parallel run")
    parser.add_argument("--smoke", action="store_true",
                        help="correctness-only drill: no timing assertion, "
                             "results are not persisted (CI mode)")
    args = parser.parse_args(argv)

    walls, results = _run_engine(args.backend, workers=args.workers)
    # the serial backend (or a 1-worker pool) runs both sides sequentially:
    # parity is still checked, a speedup is not expected
    assert_speedup = not args.smoke and args.backend != "serial" and args.workers > 1
    return _check_and_report(walls, results, backend=args.backend,
                             workers=args.workers, persist=not args.smoke,
                             assert_speedup=assert_speedup)


if __name__ == "__main__":
    sys.exit(main())

"""FedAvg server: weighted aggregation of client updates and global evaluation."""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.data.loader import BatchLoader
from repro.fl.coordinator.aggregator import Aggregator, weighted_mean_states
from repro.nn.module import Module

__all__ = ["fedavg_aggregate", "evaluate_model", "FedAvgServer"]


def fedavg_aggregate(states: Sequence[dict[str, np.ndarray]],
                     weights: Sequence[float] | None = None) -> "OrderedDict[str, np.ndarray]":
    """Weighted average of client state dicts (McMahan et al.'s FedAvg).

    All state dicts must share the same keys and shapes.  ``weights`` defaults
    to uniform; they are normalized internally, so passing raw sample counts is
    the standard usage.  With partial participation the average runs over
    whatever subset of clients reported in (an *empty* round is handled by
    :meth:`FedAvgServer.aggregate` with ``allow_empty=True``).

    Routes through the compensated flat kernel in
    :mod:`repro.fl.coordinator.aggregator`, the same arithmetic path the
    hierarchical :class:`~repro.fl.coordinator.aggregator.TreeAggregator`
    uses — which is what makes tree and flat aggregation bit-identical.
    Integer-dtype entries round to nearest on the cast back (the historic
    ``astype`` truncated toward zero, biasing counters low every round).
    """
    return weighted_mean_states(states, weights)


def evaluate_model(model: Module, dataset: Dataset, batch_size: int = 128) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (evaluation mode).

    The model's training/evaluation mode is restored to whatever it was on
    entry, so evaluating never clobbers a caller that already ran ``eval()``.
    """
    was_training = model.training
    model.train(False)
    correct = 0
    loader = BatchLoader(dataset, batch_size=batch_size, shuffle=False)
    for images, labels in loader:
        predictions = model(images).argmax(axis=1)
        correct += int((predictions == labels).sum())
    model.train(was_training)
    return correct / max(len(dataset), 1)


class FedAvgServer:
    """Holds the global model and coordinates aggregation/validation.

    ``aggregator`` selects the aggregation topology: ``None`` is the flat
    FedAvg reference (:func:`fedavg_aggregate`); passing a
    :class:`~repro.fl.coordinator.aggregator.TreeAggregator` fans clients into
    edge aggregators instead — bit-identical output, bounded per-node fan-in.
    """

    def __init__(self, model: Module, test_dataset: Dataset | None = None,
                 aggregator: "Aggregator | None" = None) -> None:
        self.model = model
        self.test_dataset = test_dataset
        self.aggregator = aggregator

    def global_state(self) -> "OrderedDict[str, np.ndarray]":
        """Copy of the current global state dict."""
        return self.model.state_dict()

    def aggregate(self, states: Sequence[dict[str, np.ndarray]],
                  weights: Sequence[float] | None = None,
                  allow_empty: bool = False) -> "OrderedDict[str, np.ndarray]":
        """FedAvg the client states into the global model and return the new state.

        ``states`` may be any sampled subset of the fleet (partial
        participation); with ``allow_empty=True`` a round in which every client
        dropped out leaves the global model unchanged instead of raising.
        """
        if not states and allow_empty:
            # nothing arrived: the global model carries over untouched (and
            # the non-empty common case never pays for a state-dict copy)
            return self.global_state()
        if self.aggregator is not None:
            new_state = self.aggregator.aggregate(states, weights)
        else:
            new_state = fedavg_aggregate(states, weights)
        self.model.load_state_dict(new_state)
        return new_state

    def apply_aggregate(self, new_state: dict[str, np.ndarray]) \
            -> dict[str, np.ndarray]:
        """Install an externally-aggregated state into the global model.

        The coordinator's aggregate-on-arrival path folds client states into a
        running partial as ships complete (see
        :class:`~repro.fl.coordinator.aggregator.ArrivalAggregator`) and hands
        the finalized state here — bit-identical to :meth:`aggregate` of the
        same states, without ever holding them all resident.
        """
        self.model.load_state_dict(new_state)
        return new_state

    def evaluate(self, dataset: Dataset | None = None, batch_size: int = 128) -> float:
        """Top-1 accuracy of the global model on the held-out set.

        An explicitly passed ``dataset`` is always evaluated as given — even
        an empty one is not silently swapped for the configured test set.
        """
        target = dataset if dataset is not None else self.test_dataset
        if target is None:
            raise ValueError("no evaluation dataset configured")
        return evaluate_model(self.model, target, batch_size=batch_size)

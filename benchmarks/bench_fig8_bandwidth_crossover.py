"""Figure 8: communication time for AlexNet across network bandwidths.

Measures compressed sizes and compression/decompression runtimes for SZ2, SZ3,
and ZFP on the AlexNet update, sweeps the bandwidth from 1 Mbps to 10 Gbps, and
evaluates Eqn. (1) at each point.

Two crossover estimates are reported:

* *measured* — using this reproduction's pure-Python codec runtimes; the
  crossover lands at a few Mbps because the Python compressors process data
  10-30x slower than the paper's C implementations while the scaled model is
  ~100x smaller, and
* *projected* — using the paper's Table I Raspberry-Pi-5 throughputs
  (SZ2 70.75, SZ3 31.58, ZFP 120.66 MB/s) together with this reproduction's
  measured compression ratios; this reproduces the paper's "compress below
  ~500 Mbps" conclusion.

Both estimates exhibit the same regime structure: below the crossover
compression wins, above it the overhead dominates.
"""

from __future__ import annotations

import numpy as np

from bench_utils import save_results, trained_like_state
from repro.core import FedSZCompressor, FedSZConfig, communication_time, crossover_bandwidth
from repro.fl import RawUpdateCodec
from repro.metrics import ExperimentRecord, Table

BANDWIDTHS_MBPS = (1, 5, 10, 50, 100, 500, 1000, 5000, 10000)
COMPRESSORS = ("sz2", "sz3", "zfp")

#: Pi-5 EBLC throughputs (MB/s) reported in the paper's Table I for AlexNet at
#: REL 1e-2; used for the projected crossover.
PAPER_PI5_THROUGHPUT = {"sz2": 70.75, "sz3": 31.58, "zfp": 120.66}
#: decompression is roughly as fast as compression for these codecs
PAPER_DECOMPRESS_FACTOR = 1.0


def bench_fig8_bandwidth_crossover(benchmark):
    state = trained_like_state("alexnet", seed=8)
    raw_bytes = len(RawUpdateCodec().encode(state))

    def run():
        profiles = {}
        for name in COMPRESSORS:
            fedsz = FedSZCompressor(FedSZConfig(lossy_compressor=name, error_bound=1e-2))
            payload = fedsz.compress_state_dict(state)
            fedsz.decompress_state_dict(payload)
            report = fedsz.last_report
            measured_overhead = report.compress_seconds + report.decompress_seconds
            projected_overhead = (raw_bytes / 1e6 / PAPER_PI5_THROUGHPUT[name]) * (1 + PAPER_DECOMPRESS_FACTOR)
            profiles[name] = {
                "bytes": len(payload),
                "measured_overhead_s": measured_overhead,
                "projected_overhead_s": projected_overhead,
            }
        return profiles

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Figure 8 - AlexNet transfer time vs bandwidth "
                  "(projected Pi-5 codec overhead)",
                  ["bandwidth Mbps", "original"] + [f"FedSZ-{c.upper()}" for c in COMPRESSORS])
    record = ExperimentRecord("fig8", "communication time vs bandwidth; crossover point")
    crossovers_measured = {}
    crossovers_projected = {}
    for name, profile in profiles.items():
        crossovers_measured[name] = crossover_bandwidth(
            profile["measured_overhead_s"], 0.0, raw_bytes, profile["bytes"])
        crossovers_projected[name] = crossover_bandwidth(
            profile["projected_overhead_s"], 0.0, raw_bytes, profile["bytes"])
        record.add(compressor=name, compressed_bytes=profile["bytes"],
                   measured_overhead_s=profile["measured_overhead_s"],
                   projected_overhead_s=profile["projected_overhead_s"],
                   crossover_measured_mbps=crossovers_measured[name],
                   crossover_projected_mbps=crossovers_projected[name])

    for bandwidth in BANDWIDTHS_MBPS:
        original = communication_time(raw_bytes, bandwidth)
        cells = [f"{original:.2f}s"]
        for name in COMPRESSORS:
            profile = profiles[name]
            total = profile["projected_overhead_s"] + communication_time(profile["bytes"], bandwidth)
            cells.append(f"{total:.2f}s")
        table.add_row(bandwidth, *cells)
        record.add(bandwidth_mbps=bandwidth, original_s=original)

    summary = Table("Figure 8 - crossover bandwidth per compressor",
                    ["compressor", "measured crossover (Mbps)", "projected crossover (Mbps)"])
    for name in COMPRESSORS:
        summary.add_row(f"FedSZ-{name.upper()}", f"{crossovers_measured[name]:.1f}",
                        f"{crossovers_projected[name]:.0f}")
    save_results("fig8_bandwidth_crossover", [table, summary], record)

    for name in COMPRESSORS:
        profile = profiles[name]
        # the regime structure of Eqn. (1): compression wins below the
        # crossover and loses above it, for both overhead estimates
        for overhead_key, crossover in (("measured_overhead_s", crossovers_measured[name]),
                                        ("projected_overhead_s", crossovers_projected[name])):
            overhead = profile[overhead_key]
            assert crossover > 0
            low, high = crossover * 0.5, crossover * 2.0
            assert overhead + communication_time(profile["bytes"], low) \
                < communication_time(raw_bytes, low)
            assert overhead + communication_time(profile["bytes"], high) \
                > communication_time(raw_bytes, high)
    # the projected crossovers land in the paper's regime (hundreds of Mbps)
    assert 50.0 < min(crossovers_projected.values())
    assert max(crossovers_projected.values()) < 10_000.0
    # SZ2's higher ratio makes it the best choice at 10 Mbps (projected overhead)
    times_at_10 = {name: profiles[name]["projected_overhead_s"]
                   + communication_time(profiles[name]["bytes"], 10.0)
                   for name in COMPRESSORS}
    assert times_at_10["sz2"] <= min(times_at_10.values()) * 1.05

"""The plan-driven FedSZ compression/decompression pipeline (Figure 1).

Client side (:meth:`FedSZCompressor.compress_with_report`):

1. partition the ``state_dict`` into lossy and lossless tensors,
2. ask the configured plan policy (:mod:`repro.core.plan`) for a
   :class:`~repro.core.plan.CompressionPlan` — one
   :class:`~repro.core.plan.TensorPlan` (codec, bound, mode, options) per
   lossy tensor; the ``uniform`` policy reproduces the historic
   one-codec-one-bound behaviour, ``size-adaptive`` and ``mixed-codec``
   exploit the paper's per-workload EBLC tradeoff,
3. compress every lossy tensor per its plan entry, fanning the tensors out
   over the configured execution backend (serial / thread / process, see
   :mod:`repro.utils.parallel`) when ``pipeline_workers > 1`` (``1`` is the
   sequential reference path; the bitstream is bit-identical at any worker
   count on any backend).  Each unit of work is a module-level task function
   over an explicit ``(TensorPlan, ndarray, compressor)`` struct, so the same
   tasks run unchanged on a thread pool or across a process boundary,
4. serialize the lossless partition into a single buffer and compress it with
   the configured lossless codec,
5. pack everything into one version-4 bitstream: each ``lossy::`` payload is
   prefixed with its codec id and the manifest embeds the full plan summary,
   so mixed-codec streams roundtrip with no out-of-band state.

Server side (:meth:`FedSZCompressor.decompress_state_dict`) parses the
manifest plan, dispatches every lossy payload to the codec named by its
per-payload tag (cross-checked against the plan), decodes tensors on the same
worker pool, and returns a ``state_dict`` ready for FedAvg aggregation.

Reporting is per-call: :meth:`compress_with_report` and
:meth:`decompress_with_report` return a fresh :class:`FedSZReport` alongside
their result, which is what the concurrent round engine aggregates per client.
``last_report`` remains as a single-slot convenience for single-threaded
scripts and the historic benchmarks.
"""

from __future__ import annotations

import os
import struct
import time
from collections import OrderedDict
from collections.abc import Iterator
from dataclasses import dataclass, replace

import numpy as np

from repro.compressors.base import ErrorBoundMode, LossyCompressor
from repro.compressors.lossless import LosslessCodec, get_lossless
from repro.compressors.registry import available_lossy, get_lossy
from repro.core.config import FedSZConfig
from repro.core.partition import PartitionedState, partition_state_dict
from repro.core.plan import (
    PLAN_PROVENANCE_KEY,
    CompressionPlan,
    CompressionPolicy,
    TensorPlan,
    get_policy,
    pack_plan,
    unpack_plan,
)
from repro.utils.parallel import get_backend, map_parallel
from repro.utils.serialization import pack_arrays, pack_bytes_dict, unpack_arrays, unpack_bytes_dict

__all__ = ["FedSZCompressor", "FedSZReport", "StreamingStateDecoder",
           "StreamingStateEncoder"]

#: bumped to 4 for the plan-driven mixed-codec format: every ``lossy::``
#: payload is prefixed with its codec id and the manifest carries the full
#: per-tensor plan summary, so one bitstream may mix codecs and bounds.
#: (3 added the chunked Huffman entropy stage, 2 the SZ3 anchor dtype flag /
#: ZFP verbatim trailer / SZx verbatim escape — see FORMATS.md.)
_FORMAT_VERSION = 4
#: Lossy compressors whose payloads carry a Huffman entropy stage and
#: therefore accept the ``entropy_chunk``/``entropy_workers`` knobs.
_ENTROPY_CODED = ("sz2", "sz3")
#: Outer-bitstream keys owned by the format itself.  Tensor names may not
#: collide with them (or with the ``lossy::`` namespace prefix) — a state dict
#: using them is rejected at compression time instead of risking a bitstream
#: whose reserved entries are ambiguous to a decoder.
_RESERVED_KEYS = ("__manifest__", "__lossless__")
_LOSSY_PREFIX = "lossy::"
_MANIFEST_HEADER = struct.Struct("<IQ")


def lossy_kwargs_from_config(config: FedSZConfig, codec: str | None = None) -> dict:
    """Factory kwargs for a lossy compressor instantiated under ``config``.

    ``config.lossy_options`` apply only to the configured default codec (they
    are options *of that codec*); the entropy-stage knobs apply to any codec
    with a Huffman stage.  Explicit ``lossy_options`` entries win.
    """
    codec = codec if codec is not None else config.lossy_compressor
    kwargs = dict(config.lossy_options) if codec == config.lossy_compressor else {}
    if codec in _ENTROPY_CODED:
        kwargs.setdefault("entropy_chunk", config.entropy_chunk)
        kwargs.setdefault("entropy_workers", config.entropy_workers)
        kwargs.setdefault("entropy_backend", config.backend)
    return kwargs


def _decode_or_valueerror(decode, payload: bytes, entry: str):
    """Run an inner-payload decoder, normalizing its failures to ValueError.

    The outer container is fully bounds-checked, but bytes corrupted *inside*
    an entry surface as whatever the backend raises (``zlib.error``,
    ``struct.error``, ``IndexError``, ...).  The documented contract is that a
    corrupt bitstream raises :class:`ValueError`, so everything else is
    wrapped.
    """
    try:
        return decode(payload)
    except ValueError:
        raise
    except Exception as exc:
        raise ValueError(f"corrupt FedSZ bitstream: entry {entry!r} failed to "
                         f"decode ({type(exc).__name__}: {exc})") from exc


def _check_tensor_names(state: dict) -> None:
    reserved = [name for name in state
                if name in _RESERVED_KEYS or name.startswith(_LOSSY_PREFIX)]
    if reserved:
        raise ValueError(
            f"tensor names {reserved!r} collide with reserved FedSZ bitstream keys "
            f"({', '.join(_RESERVED_KEYS)}, and the {_LOSSY_PREFIX!r} prefix); rename them")


def _compress_tensor_task(task: "tuple[TensorPlan, np.ndarray, LossyCompressor]"
                          ) -> "tuple[bytes, tuple | None]":
    """Compress one tensor per its plan entry into a tagged payload.

    Module-level with an explicit ``(TensorPlan, ndarray, compressor)``
    argument struct so the per-tensor fan-out satisfies the process backend's
    picklability contract (compressor instances hold only plain configuration
    state and pickle cheaply; the bitstream bytes come back as the result).
    Returns ``(payload, codebook_record)`` — the record is the armed codebook
    channel's ``(decision, table)`` pair, read *inside* the worker so it
    crosses a process boundary with the result instead of relying on
    instance mutation the parent never sees.
    """
    plan, array, compressor = task
    payload = _tag_payload(plan.codec, compressor.compress(array))
    channel = compressor._codebook
    return payload, (None if channel is None else channel.record)


def _decompress_tensor_task(task: "tuple[str, bytes, LossyCompressor]") -> np.ndarray:
    """Decode one tagged lossy payload body back into its tensor.

    The ``(entry_key, body, decoder)`` struct is picklable for the process
    backend; failures are normalized to :class:`ValueError` *inside* the task
    so the documented corruption contract holds identically across backends
    (exceptions cross the process boundary already wrapped).
    """
    key, body, decoder = task
    return _decode_or_valueerror(decoder.decompress, body, key)


def _tag_payload(codec: str, body: bytes) -> bytes:
    """Prefix a lossy payload with its codec id (u8 length + ASCII name)."""
    try:
        tag = codec.encode("ascii")
    except UnicodeEncodeError:
        raise ValueError(f"codec name {codec!r} cannot be used as a payload tag "
                         f"(must be ASCII)") from None
    if not 1 <= len(tag) <= 0xFF:
        raise ValueError(f"codec name {codec!r} cannot be used as a payload tag")
    return struct.pack("<B", len(tag)) + tag + body


def _split_tagged_payload(payload: bytes, entry: str) -> tuple[str, bytes]:
    """Parse the codec-id prefix off a ``lossy::`` payload."""
    if len(payload) < 1:
        raise ValueError(f"corrupt FedSZ bitstream: entry {entry!r} is empty")
    tag_len = payload[0]
    if tag_len < 1 or 1 + tag_len > len(payload):
        raise ValueError(f"corrupt FedSZ bitstream: entry {entry!r} has a "
                         f"truncated codec tag")
    try:
        codec = payload[1:1 + tag_len].decode("ascii")
    except UnicodeDecodeError as exc:
        raise ValueError(f"corrupt FedSZ bitstream: entry {entry!r} codec tag "
                         f"is not ASCII") from exc
    return codec, payload[1 + tag_len:]


@dataclass
class FedSZReport:
    """Per-update compression statistics (feeds Tables I and V and Figure 6)."""

    original_bytes: int
    compressed_bytes: int
    lossy_original_bytes: int
    lossy_compressed_bytes: int
    lossless_original_bytes: int
    lossless_compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float = 0.0
    #: the per-tensor plan this call applied (compress side) or decoded from
    #: the manifest (decompress side); per-call like the rest of the report,
    #: so it is race-free where ``last_plan`` is a shared single slot
    plan: "CompressionPlan | None" = None
    #: per-tensor warm-codebook records ``{store_key: (decision, table_bytes)}``
    #: when a :class:`~repro.compressors.codebook.CodebookStore` was armed for
    #: this encode; ``None`` otherwise.  Deterministic state the coordinator
    #: commits back into the client's store — not a journaled statistic (the
    #: journal persists the store itself in the delta sidecar).
    codebooks: "dict[str, tuple[str, bytes | None]] | None" = None

    @property
    def ratio(self) -> float:
        """Overall compression ratio of the client update."""
        return self.original_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")

    @property
    def lossy_ratio(self) -> float:
        """Compression ratio of the lossy partition alone."""
        if not self.lossy_compressed_bytes:
            return float("inf") if self.lossy_original_bytes else 1.0
        return self.lossy_original_bytes / self.lossy_compressed_bytes

    @property
    def lossless_ratio(self) -> float:
        """Compression ratio of the lossless partition alone."""
        if not self.lossless_compressed_bytes:
            return float("inf") if self.lossless_original_bytes else 1.0
        return self.lossless_original_bytes / self.lossless_compressed_bytes

    @property
    def throughput_mbps(self) -> float:
        """Compression throughput over the whole update (MB/s)."""
        if self.compress_seconds <= 0:
            return float("inf")
        return self.original_bytes / 1e6 / self.compress_seconds


class FedSZCompressor:
    """Compress and decompress model state dictionaries per the FedSZ scheme.

    ``policy`` (a :class:`~repro.core.plan.CompressionPolicy` instance or
    registry name) decides each lossy tensor's codec/bound/options; it
    defaults to ``config.policy`` instantiated with ``config.policy_options``.

    Thread-safety: the bitstreams produced and consumed by a shared instance
    are deterministic under concurrent use (the round engine encodes several
    clients on a worker pool) and :meth:`compress_with_report` /
    :meth:`decompress_with_report` return per-call statistics that are safe to
    collect from any thread.  ``last_report`` is a single slot — after a
    parallel round it holds the statistics of one arbitrary client; read it
    only from single-threaded contexts.
    """

    def __init__(self, config: FedSZConfig | None = None,
                 lossy: LossyCompressor | None = None,
                 lossless: LosslessCodec | None = None,
                 policy: "CompressionPolicy | str | None" = None) -> None:
        self.config = config or FedSZConfig()
        self.lossy = lossy if lossy is not None else get_lossy(
            self.config.lossy_compressor,
            error_bound=self.config.error_bound,
            mode=self.config.error_mode,
            **lossy_kwargs_from_config(self.config),
        )
        self.lossless = lossless if lossless is not None else get_lossless(
            self.config.lossless_codec, **self.config.lossless_options)
        if policy is None:
            policy = self.config.policy
        self.policy = policy if isinstance(policy, CompressionPolicy) \
            else get_policy(policy, **self.config.policy_options)
        # When an explicit lossy instance is injected, plans must describe what
        # actually runs: policies see a config reflecting the instance's codec
        # name and operating point rather than the (possibly default) config
        # fields it overrode.
        if lossy is not None and isinstance(lossy, LossyCompressor):
            self._plan_config = self.config.replace(
                lossy_compressor=self.lossy.name,
                error_bound=self.lossy.error_bound.value,
                error_mode=self.lossy.error_bound.mode)
        else:
            self._plan_config = self.config
        self.last_report: FedSZReport | None = None
        self.last_plan: CompressionPlan | None = None
        self._decoder_cache: dict[str, LossyCompressor] = {}
        #: optional :class:`~repro.compressors.codebook.CodebookStore` armed
        #: by the owner (the delta codec) for warm Huffman-table reuse; None
        #: keeps every encode byte-identical to the cold path
        self.codebook = None
        #: set by the delta codec when the next encode compresses residual
        #: tensors rather than raw state — content-profiling policies key
        #: their caches on it so residual statistics never alias full-state
        #: anchors (plans stay pure functions of the actual input)
        self.delta_hint = False
        #: per-tensor REL-bound resolution scales ``{name: value_range}`` set
        #: by the delta codec for one encode.  A REL bound resolved against a
        #: *residual* tensor's tiny range would silently tighten the
        #: quantization step ~10x below what the user asked for (and forfeit
        #: the delta size win); these scales pin the resolution to the true
        #: state's range instead, so a residual ship carries exactly the
        #: absolute tolerance a full-state ship of the same tensor would.
        #: ``None`` (always, outside an armed delta encode) changes nothing.
        self.bound_scales: "dict[str, float] | None" = None

    # ------------------------------------------------------------------
    def _pipeline_workers(self) -> int:
        """Effective per-tensor fan-out for this host.

        Tensor compression is pure CPU work, so on a GIL-bound (thread)
        backend workers beyond the core count are strict oversubscription
        (measured ~25% slower on a single-core host) and the knob is clamped
        to the cores actually available; a process pool's workers run truly
        concurrently, so there the requested count is honoured.  The bitstream
        is bit-identical at any worker count either way.
        """
        backend = get_backend(self.config.backend)
        workers = self.config.pipeline_workers
        if backend.gil_bound:
            workers = min(workers, os.cpu_count() or 1)
        # let the backend have the final say (serial always resolves to 1),
        # so this number is the fan-out that actually runs
        return backend.resolve_workers(max(1, workers), max(1, workers))

    def plan_state_dict(self, state: dict[str, np.ndarray]) -> CompressionPlan:
        """The per-tensor plan the policy would apply to ``state``."""
        partition = partition_state_dict(state, self.config)
        return self.policy.build_plan(partition.lossy, self._plan_config,
                                      delta=self.delta_hint)

    def _compressor_for(self, plan: TensorPlan) -> LossyCompressor:
        """A lossy compressor configured exactly as ``plan`` prescribes.

        The reserved provenance options entry is metadata *about* the plan,
        not a codec option, and is stripped before construction.
        """
        options = {key: value for key, value in plan.options.items()
                   if key != PLAN_PROVENANCE_KEY}
        if plan.codec == self.lossy.name and not options:
            # reuse the (possibly injected) instance so non-registry
            # compressors keep working; cloning re-binds only the bound
            return self.lossy.with_error_bound(plan.error_bound, plan.mode)
        kwargs = lossy_kwargs_from_config(self.config, plan.codec)
        kwargs.update(options)
        return get_lossy(plan.codec, error_bound=plan.error_bound, mode=plan.mode,
                         **kwargs)

    def _armed_compressor_for(self, plan: TensorPlan, name: str) -> LossyCompressor:
        """:meth:`_compressor_for`, plus a codebook channel when a store is armed.

        Only entropy-coded codecs carry a Huffman table to reuse; the channel
        is armed on a shallow per-tensor copy so the (possibly shared) base
        instance never races across tensors.  With no store armed this is
        exactly :meth:`_compressor_for` — the cold path is untouched.
        """
        compressor = self._compressor_for(plan)
        if self.bound_scales is not None \
                and ErrorBoundMode(plan.mode) is ErrorBoundMode.REL:
            scale = self.bound_scales.get(name)
            if scale is not None:
                # resolve the plan's REL bound against the provided scale (the
                # true state's range on a delta ship) rather than this
                # tensor's own range; the payload header records the absolute
                # bound actually used, so decode needs nothing extra
                compressor = compressor.with_error_bound(
                    float(plan.error_bound) * scale, ErrorBoundMode.ABS)
        if self.codebook is not None and plan.codec in _ENTROPY_CODED:
            channel = self.codebook.channel(f"{plan.codec}:{name}")
            compressor = compressor.with_codebook(channel)
        return compressor

    def _decoder_for(self, codec: str) -> LossyCompressor:
        """A decoder for ``codec`` (payloads are self-describing, so the
        instance's bound is irrelevant; entropy knobs steer decode scheduling)."""
        if codec == self.lossy.name:
            return self.lossy
        decoder = self._decoder_cache.get(codec)
        if decoder is None:
            if codec not in available_lossy():
                raise ValueError(f"corrupt or unsupported FedSZ bitstream: unknown "
                                 f"codec {codec!r}; available: {available_lossy()}")
            decoder = get_lossy(codec, **lossy_kwargs_from_config(self.config, codec))
            self._decoder_cache[codec] = decoder
        return decoder

    # ------------------------------------------------------------------
    def compress_with_report(self, state: dict[str, np.ndarray]) -> tuple[bytes, FedSZReport]:
        """Compress ``state`` into one FedSZ bitstream; returns per-call stats.

        The per-tensor plan is fanned out over the configured execution
        backend when ``config.pipeline_workers > 1``; the bitstream is
        bit-identical at any worker count on any backend.  Also updates the
        ``last_report``/``last_plan`` convenience slots.
        """
        _check_tensor_names(state)
        start = time.perf_counter()
        partition = partition_state_dict(state, self.config)
        plan = self.policy.build_plan(partition.lossy, self._plan_config,
                                      delta=self.delta_hint)
        if plan.tensor_names != list(partition.lossy):
            # a third-party policy reordering or dropping tensors must fail
            # here, not as a confusing corruption error on every decode
            raise ValueError(
                f"policy {type(self.policy).__name__} returned a plan for "
                f"{plan.tensor_names!r} but the lossy partition is "
                f"{list(partition.lossy)!r}; plans must cover every lossy "
                f"tensor in partition order")

        tasks = [(plan[name], array,
                  self._armed_compressor_for(plan[name], name))
                 for name, array in partition.lossy.items()]
        results = map_parallel(_compress_tensor_task, tasks,
                               max_workers=self._pipeline_workers(),
                               backend=self.config.backend)
        lossy_payloads: "OrderedDict[str, bytes]" = OrderedDict(
            (name, payload) for name, (payload, _) in zip(partition.lossy, results))
        codebooks = {}
        for _, record in results:
            if record is not None:
                key, decision, table = record
                codebooks[key] = (decision, table)
        codebooks = codebooks or None

        lossless_raw = pack_arrays(dict(partition.lossless))
        lossless_payload = self.lossless.compress(lossless_raw)

        manifest = _MANIFEST_HEADER.pack(_FORMAT_VERSION, len(state)) + pack_plan(plan)
        bitstream = pack_bytes_dict({
            "__manifest__": manifest,
            "__lossless__": lossless_payload,
            **{f"lossy::{name}": payload for name, payload in lossy_payloads.items()},
        })
        elapsed = time.perf_counter() - start
        report = FedSZReport(
            original_bytes=partition.total_bytes,
            compressed_bytes=len(bitstream),
            lossy_original_bytes=partition.lossy_bytes,
            lossy_compressed_bytes=sum(len(p) for p in lossy_payloads.values()),
            lossless_original_bytes=partition.lossless_bytes,
            lossless_compressed_bytes=len(lossless_payload),
            compress_seconds=elapsed,
            plan=plan,
            codebooks=codebooks,
        )
        self.last_report = report
        self.last_plan = plan
        return bitstream, report

    def compress_state_dict(self, state: dict[str, np.ndarray]) -> bytes:
        """Compress a full state dict into a single FedSZ bitstream."""
        bitstream, _ = self.compress_with_report(state)
        return bitstream

    # ------------------------------------------------------------------
    def _parse_manifest(self, manifest: bytes) -> tuple[int, CompressionPlan]:
        if len(manifest) < _MANIFEST_HEADER.size:
            raise ValueError(f"corrupt FedSZ manifest: {len(manifest)} bytes")
        version, n_entries = _MANIFEST_HEADER.unpack_from(manifest, 0)
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported FedSZ bitstream version {version} "
                             f"(this build reads version {_FORMAT_VERSION}; see FORMATS.md)")
        plan, offset = unpack_plan(manifest, _MANIFEST_HEADER.size)
        if offset != len(manifest):
            raise ValueError(f"corrupt FedSZ manifest: {len(manifest) - offset} "
                             f"trailing bytes after the plan summary")
        return n_entries, plan

    def decompress_with_report(self, bitstream: bytes) \
            -> tuple["OrderedDict[str, np.ndarray]", FedSZReport]:
        """Reconstruct the state dict from a FedSZ bitstream, with statistics.

        Dispatch is per tensor: each ``lossy::`` payload names its codec,
        which must agree with the manifest plan; decoding fans out over the
        configured execution backend when ``config.pipeline_workers > 1`` (the
        tag/plan cross-check runs up front on the caller's thread, only the
        inner payload decode is dispatched).  The report covers
        the decode side only — ``compress_seconds`` is 0, so its
        ``throughput_mbps`` (a compress-side metric) reads ``inf`` and should
        not be aggregated from decode-only reports.
        """
        start = time.perf_counter()
        entries = unpack_bytes_dict(bitstream)
        manifest = entries.pop("__manifest__", None)
        if manifest is None:
            raise ValueError("not a FedSZ bitstream: missing manifest")
        n_entries, plan = self._parse_manifest(manifest)

        lossless_payload = entries.pop("__lossless__", b"")
        lossless_arrays = unpack_arrays(_decode_or_valueerror(
            self.lossless.decompress, lossless_payload, "__lossless__")) \
            if lossless_payload else {}

        lossy_entries: list[tuple[str, bytes]] = []
        for key, payload in entries.items():
            if not key.startswith(_LOSSY_PREFIX):
                raise ValueError(f"unexpected entry {key!r} in FedSZ bitstream")
            lossy_entries.append((key, payload))
        payload_names = [key[len(_LOSSY_PREFIX):] for key, _ in lossy_entries]
        if payload_names != plan.tensor_names:
            raise ValueError(
                f"corrupt FedSZ bitstream: manifest plans tensors "
                f"{plan.tensor_names!r} but the stream carries {payload_names!r}")

        lossy_compressed = sum(len(payload) for _, payload in lossy_entries)

        tasks = []
        for key, payload in lossy_entries:
            name = key[len(_LOSSY_PREFIX):]
            codec, body = _split_tagged_payload(payload, key)
            if codec != plan[name].codec:
                raise ValueError(f"corrupt FedSZ bitstream: entry {key!r} is "
                                 f"tagged {codec!r} but the manifest plan says "
                                 f"{plan[name].codec!r}")
            tasks.append((key, body, self._decoder_for(codec)))
        arrays = map_parallel(_decompress_tensor_task, tasks,
                              max_workers=self._pipeline_workers(),
                              backend=self.config.backend)

        state: "OrderedDict[str, np.ndarray]" = OrderedDict(zip(payload_names, arrays))
        for name, array in lossless_arrays.items():
            if name in state:
                raise ValueError(f"corrupt FedSZ bitstream: tensor {name!r} appears "
                                 f"in both partitions")
            state[name] = array
        if len(state) != n_entries:
            raise ValueError(f"corrupt FedSZ bitstream: manifest declares {n_entries} "
                             f"tensors but {len(state)} were decoded")
        elapsed = time.perf_counter() - start
        lossy_original = sum(int(state[name].nbytes) for name in payload_names)
        report = FedSZReport(
            original_bytes=sum(int(v.nbytes) for v in state.values()),
            compressed_bytes=len(bitstream),
            lossy_original_bytes=lossy_original,
            lossy_compressed_bytes=lossy_compressed,
            lossless_original_bytes=sum(int(v.nbytes) for v in lossless_arrays.values()),
            lossless_compressed_bytes=len(lossless_payload),
            compress_seconds=0.0,
            decompress_seconds=elapsed,
            plan=plan,
        )
        return state, report

    def decompress_state_dict(self, bitstream: bytes) -> "OrderedDict[str, np.ndarray]":
        """Reconstruct the state dict from a FedSZ bitstream."""
        state, report = self.decompress_with_report(bitstream)
        previous = self.last_report
        if previous is not None:
            # replace instead of mutating in place so a concurrent reader never
            # sees a half-updated report (see the thread-safety note above)
            self.last_report = replace(previous,
                                       decompress_seconds=report.decompress_seconds)
        return state

    # ------------------------------------------------------------------
    def stream_encoder(self) -> "StreamingStateEncoder":
        """A pull-based incremental encoder for one FedSZ bitstream.

        Iterate :meth:`StreamingStateEncoder.chunks` to get wire byte pieces
        as the encode progresses — the container preamble and manifest leave
        before any tensor has been compressed, and each tensor entry leaves
        the moment its payload completes, which is how the coordinator hides
        ``t_C`` inside ``S'/B``.  The concatenated pieces are bit-identical to
        :meth:`compress_with_report` over the same state dict.
        """
        return StreamingStateEncoder(self)

    def compress_stream(self, state: dict[str, np.ndarray]) -> "Iterator[bytes]":
        """Encode ``state`` as an iterator of FedSZ bitstream byte chunks.

        The first chunk (container preamble plus the manifest entry) is
        available after only the plan build; subsequent chunks surface as each
        entry's payload completes.  Joining every chunk yields exactly
        :meth:`compress_state_dict`'s bitstream.
        """
        return self.stream_encoder().chunks(state)

    # ------------------------------------------------------------------
    def stream_decoder(self) -> "StreamingStateDecoder":
        """A push-based incremental decoder for one FedSZ bitstream.

        Feed it wire bytes as they arrive (in any chunking) and it decodes
        eagerly — the SZ2/SZ3 entropy stage runs on chunk bands while the rest
        of the stream is still in flight, which is how the coordinator hides
        ``t_D`` inside ``S'/B``.  The final state dict is bit-identical to
        :meth:`decompress_with_report` over the same bytes.
        """
        return StreamingStateDecoder(self)

    def decompress_stream(self, chunks) \
            -> "Iterator[tuple[str, np.ndarray]]":
        """Decode a FedSZ bitstream from an iterable of byte chunks.

        Yields ``(name, tensor)`` pairs as each tensor's bytes complete —
        lossy tensors surface mid-stream in plan order, the lossless partition
        after the last chunk.  Tensors and their order match
        :meth:`decompress_state_dict` exactly; a truncated or corrupt stream
        raises :class:`ValueError`.
        """
        decoder = self.stream_decoder()
        yielded: set[str] = set()
        for chunk in chunks:
            for name, array in decoder.feed(chunk):
                yielded.add(name)
                yield name, array
        state, _ = decoder.finish()
        for name, array in state.items():
            if name not in yielded:
                yield name, array

    # ------------------------------------------------------------------
    def roundtrip(self, state: dict[str, np.ndarray]) -> tuple["OrderedDict[str, np.ndarray]", FedSZReport]:
        """Compress then decompress ``state``; returns the reconstruction and report."""
        payload, report = self.compress_with_report(state)
        recon, decode_report = self.decompress_with_report(payload)
        report = replace(report, decompress_seconds=decode_report.decompress_seconds)
        self.last_report = report
        return recon, report

    def partition(self, state: dict[str, np.ndarray]) -> PartitionedState:
        """Expose the partitioning decision for inspection (Table III)."""
        return partition_state_dict(state, self.config)


class StreamingStateEncoder:
    """Pull-based encoder for one version-4 FedSZ bitstream.

    :meth:`chunks` yields wire byte pieces in stream order; their
    concatenation is byte-identical to
    :meth:`FedSZCompressor.compress_state_dict` on the same state dict.  The
    encode-side mirror of :class:`StreamingStateDecoder`'s consumption
    contract: the ``__manifest__`` entry is emitted *first* (a streaming
    decoder needs the plan before any lossy payload), then ``__lossless__``,
    then the ``lossy::`` entries in manifest plan order.

    Overlap is at container-entry granularity: each entry's u64 value-length
    prefix pins the entry's byte budget, so an entry's first byte cannot
    leave until its payload is complete — but the container preamble plus the
    manifest leave after only the plan build (the stream's first-byte-out
    latency), and entry ``j``'s bytes can be on the wire while entry ``j+1``
    is still being coded.  Within a lossy entry the codec's
    :meth:`~repro.compressors.base.LossyCompressor.stream_encoder` codes the
    payload, so the SZ2/SZ3 Huffman stage runs with per-chunk emission
    scratch even though its pieces are staged until the entry completes.

    Tensors are encoded sequentially in wire order (the per-tensor fan-out of
    the batch path would not change the bytes — the batch bitstream is
    bit-identical at any worker count — only their production order, which
    here *is* the contract).

    After the generator is exhausted, ``report`` holds the same per-call
    statistics :meth:`FedSZCompressor.compress_with_report` returns and
    ``peak_scratch_bytes`` the largest per-tensor encoder scratch estimate.
    """

    def __init__(self, pipeline: FedSZCompressor) -> None:
        self._pipeline = pipeline
        self.report: "FedSZReport | None" = None
        self.peak_scratch_bytes = 0

    @staticmethod
    def _entry_header(key: str, val_len: int) -> bytes:
        raw = key.encode("utf-8")
        return struct.pack("<I", len(raw)) + raw + struct.pack("<Q", val_len)

    def chunks(self, state: dict[str, np.ndarray]) -> "Iterator[bytes]":
        """Yield the bitstream pieces for ``state`` in wire order."""
        pipeline = self._pipeline
        _check_tensor_names(state)
        start = time.perf_counter()
        partition = partition_state_dict(state, pipeline.config)
        plan = pipeline.policy.build_plan(partition.lossy, pipeline._plan_config,
                                          delta=pipeline.delta_hint)
        if plan.tensor_names != list(partition.lossy):
            raise ValueError(
                f"policy {type(pipeline.policy).__name__} returned a plan for "
                f"{plan.tensor_names!r} but the lossy partition is "
                f"{list(partition.lossy)!r}; plans must cover every lossy "
                f"tensor in partition order")

        sent = 0
        manifest = _MANIFEST_HEADER.pack(_FORMAT_VERSION, len(state)) + pack_plan(plan)
        preamble = b"FSZB" + struct.pack("<I", 2 + len(partition.lossy)) \
            + self._entry_header("__manifest__", len(manifest)) + manifest
        sent += len(preamble)
        yield preamble

        lossless_raw = pack_arrays(dict(partition.lossless))
        lossless_payload = pipeline.lossless.compress(lossless_raw)
        piece = self._entry_header("__lossless__", len(lossless_payload)) \
            + lossless_payload
        sent += len(piece)
        yield piece

        lossy_compressed = 0
        codebooks: "dict[str, tuple[str, bytes | None]]" = {}
        for name, array in partition.lossy.items():
            tensor_plan = plan[name]
            compressor = pipeline._armed_compressor_for(tensor_plan, name)
            encoder = compressor.stream_encoder()
            staged = [_tag_payload(tensor_plan.codec, b"")]
            staged.extend(encoder.chunks(array))
            self.peak_scratch_bytes = max(self.peak_scratch_bytes,
                                          encoder.scratch_bytes)
            channel = compressor._codebook
            if channel is not None and channel.record is not None:
                key, decision, table = channel.record
                codebooks[key] = (decision, table)
            payload_len = sum(len(p) for p in staged)
            lossy_compressed += payload_len
            piece = self._entry_header(f"lossy::{name}", payload_len) \
                + b"".join(staged)
            sent += len(piece)
            yield piece

        elapsed = time.perf_counter() - start
        self.report = FedSZReport(
            original_bytes=partition.total_bytes,
            compressed_bytes=sent,
            lossy_original_bytes=partition.lossy_bytes,
            lossy_compressed_bytes=lossy_compressed,
            lossless_original_bytes=partition.lossless_bytes,
            lossless_compressed_bytes=len(lossless_payload),
            compress_seconds=elapsed,
            plan=plan,
            codebooks=codebooks or None,
        )
        pipeline.last_report = self.report
        pipeline.last_plan = plan


class _LossyStreamSink:
    """Routes one ``lossy::`` entry's bytes through its tensor stream decoder.

    Parses the codec-id prefix as its bytes land, cross-checks it against the
    manifest plan, then forwards everything else to the codec's
    :meth:`~repro.compressors.base.LossyCompressor.stream_decoder`.
    """

    def __init__(self, pipeline: "FedSZCompressor", key: str, expected_codec: str) -> None:
        self._pipeline = pipeline
        self._key = key
        self._expected = expected_codec
        self._tag_len: "int | None" = None
        self._tag = bytearray()
        self._decoder = None

    def feed(self, data: memoryview) -> None:
        if self._decoder is None:
            data = self._absorb_tag(data)
            if self._decoder is None:
                return
        if data.nbytes:
            self._decoder.feed(data)

    def _absorb_tag(self, data: memoryview) -> memoryview:
        if self._tag_len is None:
            if not data.nbytes:
                return data
            self._tag_len = data[0]
            data = data[1:]
            if self._tag_len < 1:
                raise ValueError(f"corrupt FedSZ bitstream: entry {self._key!r} "
                                 f"has a truncated codec tag")
        take = min(self._tag_len - len(self._tag), data.nbytes)
        self._tag += data[:take]
        data = data[take:]
        if len(self._tag) == self._tag_len:
            try:
                codec = bytes(self._tag).decode("ascii")
            except UnicodeDecodeError as exc:
                raise ValueError(f"corrupt FedSZ bitstream: entry {self._key!r} "
                                 f"codec tag is not ASCII") from exc
            if codec != self._expected:
                raise ValueError(f"corrupt FedSZ bitstream: entry {self._key!r} is "
                                 f"tagged {codec!r} but the manifest plan says "
                                 f"{self._expected!r}")
            self._decoder = self._pipeline._decoder_for(codec).stream_decoder()
        return data

    def finish(self) -> np.ndarray:
        if self._tag_len is None:
            raise ValueError(f"corrupt FedSZ bitstream: entry {self._key!r} is empty")
        if self._decoder is None:
            raise ValueError(f"corrupt FedSZ bitstream: entry {self._key!r} "
                             f"has a truncated codec tag")
        return _decode_or_valueerror(lambda _: self._decoder.finish(), b"", self._key)


class StreamingStateDecoder:
    """Push-based decoder for one version-4 FedSZ bitstream.

    :meth:`feed` accepts wire bytes in any chunking and returns the lossy
    tensors whose payloads completed during that call; :meth:`finish`
    validates the stream end and returns the full state dict plus a decode
    report.  The tensors, their order, and every validation error class match
    :meth:`FedSZCompressor.decompress_with_report` bit for bit.

    Two consumption-contract requirements beyond the batch decoder (both
    guaranteed by the encoder, see FORMATS.md): the ``__manifest__`` entry
    must be the container's *first* entry (the plan must be known before any
    lossy payload can be dispatched), and ``lossy::`` entries must appear in
    manifest plan order (the batch decoder requires this too).

    ``decompress_seconds`` in the report accumulates only time spent inside
    :meth:`feed`/:meth:`finish` — on a simulated wire that is the decode work
    actually overlapped with transfer, not the wall-clock span of arrival.
    """

    def __init__(self, pipeline: FedSZCompressor) -> None:
        self._pipeline = pipeline
        self._pending = bytearray()   # partial header-field bytes
        self._received = 0
        self._seconds = 0.0
        self._stage = "magic"         # magic -> keylen -> key -> vallen -> value -> end
        self._declared = 0            # container entry count
        self._entries_done = 0
        self._key = ""
        self._key_len = 0
        self._val_len = 0
        self._val_got = 0
        self._sink = None
        self._n_entries: "int | None" = None
        self._plan: "CompressionPlan | None" = None
        self._lossy_done: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._lossy_compressed = 0
        self._lossless_arrays: dict[str, np.ndarray] = {}
        self._lossless_compressed = 0
        self._result = None

    # -- observability ---------------------------------------------------
    @property
    def bytes_received(self) -> int:
        """Wire bytes fed so far."""
        return self._received

    @property
    def tensors_completed(self) -> int:
        """Lossy tensors fully decoded so far."""
        return len(self._lossy_done)

    @property
    def plan(self) -> "CompressionPlan | None":
        """The manifest plan (available once the first entry has arrived)."""
        return self._plan

    @property
    def decode_seconds(self) -> float:
        """Time spent inside :meth:`feed`/:meth:`finish` so far."""
        return self._seconds

    # -- streaming surface ----------------------------------------------
    def feed(self, data) -> list[tuple[str, np.ndarray]]:
        """Consume arriving wire bytes; returns tensors completed by them."""
        if self._result is not None:
            raise ValueError("cannot feed a finished FedSZ stream decoder")
        start = time.perf_counter()
        data = memoryview(data)
        self._received += data.nbytes
        completed: list[tuple[str, np.ndarray]] = []
        while data.nbytes and self._stage != "end":
            data = self._step(data, completed)
        self._seconds += time.perf_counter() - start
        return completed

    def finish(self) -> tuple["OrderedDict[str, np.ndarray]", FedSZReport]:
        """Validate stream completion; returns ``(state_dict, report)``."""
        if self._result is not None:
            return self._result
        start = time.perf_counter()
        if self._stage == "magic":
            raise ValueError("not a packed bytes dictionary (bad magic)")
        if self._stage != "end":
            raise ValueError(f"truncated FedSZ bitstream: stream ended inside "
                             f"entry {self._entries_done + 1} of {self._declared} "
                             f"({self._received} bytes received)")
        if self._plan is None:
            raise ValueError("not a FedSZ bitstream: missing manifest")
        payload_names = list(self._lossy_done)
        if payload_names != self._plan.tensor_names:
            raise ValueError(
                f"corrupt FedSZ bitstream: manifest plans tensors "
                f"{self._plan.tensor_names!r} but the stream carries "
                f"{payload_names!r}")
        state: "OrderedDict[str, np.ndarray]" = OrderedDict(self._lossy_done)
        for name, array in self._lossless_arrays.items():
            if name in state:
                raise ValueError(f"corrupt FedSZ bitstream: tensor {name!r} appears "
                                 f"in both partitions")
            state[name] = array
        if len(state) != self._n_entries:
            raise ValueError(f"corrupt FedSZ bitstream: manifest declares "
                             f"{self._n_entries} tensors but {len(state)} were decoded")
        self._seconds += time.perf_counter() - start
        report = FedSZReport(
            original_bytes=sum(int(v.nbytes) for v in state.values()),
            compressed_bytes=self._received,
            lossy_original_bytes=sum(int(self._lossy_done[n].nbytes)
                                     for n in payload_names),
            lossy_compressed_bytes=self._lossy_compressed,
            lossless_original_bytes=sum(int(v.nbytes)
                                        for v in self._lossless_arrays.values()),
            lossless_compressed_bytes=self._lossless_compressed,
            compress_seconds=0.0,
            decompress_seconds=self._seconds,
            plan=self._plan,
        )
        self._result = (state, report)
        return self._result

    # -- internals -------------------------------------------------------
    def _step(self, data: memoryview, completed: list) -> memoryview:
        if self._stage == "value":
            take = min(self._val_len - self._val_got, data.nbytes)
            self._val_got += take
            self._sink_feed(data[:take])
            if self._val_got == self._val_len:
                self._entry_done(completed)
            return data[take:]
        need = {"magic": 8, "keylen": 4, "vallen": 8, "key": self._key_len}[self._stage]
        take = min(need - len(self._pending), data.nbytes)
        self._pending += data[:take]
        data = data[take:]
        if len(self._pending) < need:
            return data
        field = bytes(self._pending)
        self._pending.clear()
        if self._stage == "magic":
            if field[:4] != b"FSZB":
                raise ValueError("not a packed bytes dictionary (bad magic)")
            (self._declared,) = struct.unpack("<I", field[4:])
            self._stage = "keylen" if self._declared else "end"
        elif self._stage == "keylen":
            (self._key_len,) = struct.unpack("<I", field)
            self._stage = "key"
        elif self._stage == "key":
            self._key = field.decode("utf-8")  # UnicodeDecodeError is a ValueError
            self._stage = "vallen"
        else:  # vallen
            (self._val_len,) = struct.unpack("<Q", field)
            self._val_got = 0
            self._open_sink()
            self._stage = "value"
            if self._val_len == 0:
                self._entry_done(completed)
        return data

    def _open_sink(self) -> None:
        key = self._key
        if self._entries_done == 0 and key != "__manifest__":
            raise ValueError(f"streaming decode requires {'__manifest__'!r} as the "
                             f"first FedSZ container entry, got {key!r} "
                             f"(see FORMATS.md)")
        if key == "__manifest__":
            if self._entries_done != 0:
                raise ValueError("corrupt FedSZ bitstream: duplicate manifest entry")
            self._sink = bytearray()
        elif key == "__lossless__":
            if self._lossless_compressed or self._lossless_arrays:
                raise ValueError("corrupt FedSZ bitstream: duplicate "
                                 "'__lossless__' entry")
            self._lossless_compressed = self._val_len
            self._sink = bytearray()
        elif key.startswith(_LOSSY_PREFIX):
            name = key[len(_LOSSY_PREFIX):]
            idx = len(self._lossy_done)
            plan_names = self._plan.tensor_names
            if idx >= len(plan_names) or name != plan_names[idx]:
                raise ValueError(
                    f"corrupt FedSZ bitstream: manifest plans tensors "
                    f"{plan_names!r} but the stream carries {key!r} at "
                    f"lossy position {idx}")
            self._lossy_compressed += self._val_len
            self._sink = _LossyStreamSink(self._pipeline, key,
                                          self._plan[name].codec)
        else:
            raise ValueError(f"unexpected entry {key!r} in FedSZ bitstream")

    def _sink_feed(self, data: memoryview) -> None:
        if isinstance(self._sink, bytearray):
            self._sink += data
        else:
            self._sink.feed(data)

    def _entry_done(self, completed: list) -> None:
        key, sink = self._key, self._sink
        if key == "__manifest__":
            self._n_entries, self._plan = self._pipeline._parse_manifest(bytes(sink))
        elif key == "__lossless__":
            if sink:
                raw = _decode_or_valueerror(self._pipeline.lossless.decompress,
                                            bytes(sink), "__lossless__")
                self._lossless_arrays = unpack_arrays(raw)
        else:
            name = key[len(_LOSSY_PREFIX):]
            array = sink.finish()
            self._lossy_done[name] = array
            completed.append((name, array))
        self._sink = None
        self._entries_done += 1
        self._stage = "end" if self._entries_done == self._declared else "keylen"

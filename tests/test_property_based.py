"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors import (
    BloscLZCodec,
    HuffmanCoder,
    SZ2Compressor,
    SZ3Compressor,
    SZxCompressor,
    ShuffleRLECodec,
)
from repro.compressors.quantizer import LinearQuantizer
from repro.fl import fedavg_aggregate
from repro.utils.serialization import (
    pack_arrays,
    pack_bytes_dict,
    unpack_arrays,
    unpack_bytes_dict,
)

# Reasonable float arrays: bounded magnitude, no NaN/inf, float32 like weights.
float_arrays = hnp.arrays(
    dtype=np.float32,
    shape=st.integers(min_value=1, max_value=600),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                       allow_infinity=False, width=32),
)


@settings(max_examples=40, deadline=None)
@given(data=float_arrays, rel_bound=st.sampled_from([1e-1, 1e-2, 1e-3]))
def test_sz2_error_bound_invariant(data, rel_bound):
    comp = SZ2Compressor(error_bound=rel_bound)
    recon = comp.decompress(comp.compress(data))
    abs_bound = rel_bound * float(data.max() - data.min())
    tolerance = max(abs_bound, 1e-6 * max(abs(float(data[0])), 1.0)) * (1 + 1e-6) + 1e-9
    assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= tolerance


@settings(max_examples=40, deadline=None)
@given(data=float_arrays, rel_bound=st.sampled_from([1e-1, 1e-2, 1e-3]))
def test_sz3_error_bound_invariant(data, rel_bound):
    comp = SZ3Compressor(error_bound=rel_bound)
    recon = comp.decompress(comp.compress(data))
    abs_bound = rel_bound * float(data.max() - data.min())
    tolerance = max(abs_bound, 1e-6 * max(abs(float(data[0])), 1.0)) * (1 + 1e-6) + 1e-9
    assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= tolerance


@settings(max_examples=40, deadline=None)
@given(data=float_arrays, rel_bound=st.sampled_from([1e-1, 1e-2]))
def test_szx_error_bound_invariant(data, rel_bound):
    comp = SZxCompressor(error_bound=rel_bound)
    recon = comp.decompress(comp.compress(data))
    abs_bound = rel_bound * float(data.max() - data.min())
    tolerance = max(abs_bound, 1e-6 * max(abs(float(data[0])), 1.0)) * (1 + 1e-6) + 1e-9
    assert np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))) <= tolerance


@settings(max_examples=50, deadline=None)
@given(symbols=hnp.arrays(dtype=np.int64, shape=st.integers(0, 2000),
                          elements=st.integers(min_value=0, max_value=5000)))
def test_huffman_roundtrip_identity(symbols):
    coder = HuffmanCoder()
    np.testing.assert_array_equal(coder.decode(coder.encode(symbols)), symbols)


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=4096))
def test_blosclz_roundtrip_identity(data):
    codec = BloscLZCodec()
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=4096))
def test_shuffle_rle_roundtrip_identity(data):
    codec = ShuffleRLECodec()
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=40, deadline=None)
@given(data=float_arrays, bound=st.floats(min_value=1e-6, max_value=1.0,
                                          allow_nan=False, allow_infinity=False))
def test_quantizer_reconstruction_within_bound(data, bound):
    data64 = data.astype(np.float64)
    predictions = np.zeros_like(data64)
    quantizer = LinearQuantizer(radius=1024)
    result = quantizer.quantize(data64, predictions, bound)
    assert np.max(np.abs(result.reconstructed - data64)) <= bound + 1e-12
    recon = quantizer.dequantize(result.codes, result.outliers, predictions, bound)
    np.testing.assert_allclose(recon, result.reconstructed)


@settings(max_examples=40, deadline=None)
@given(data=float_arrays, bound=st.sampled_from([1e-4, 1e-2, 1.0]),
       radius=st.sampled_from([4, 1024]))
def test_dequantize_bit_identical_to_naive_reference(data, bound, radius):
    # the scratch-buffer rewrite of dequantize must match the naive
    # expression-per-temporary form bit for bit, outlier escapes included
    # (a small radius with a tight bound forces plenty of code-0 escapes)
    data64 = data.astype(np.float64)
    predictions = np.roll(data64, 1)
    quantizer = LinearQuantizer(radius=radius)
    result = quantizer.quantize(data64, predictions, bound)
    got = quantizer.dequantize(result.codes, result.outliers, predictions, bound)
    q = result.codes.astype(np.int64) - (radius + 1)
    with np.errstate(over="ignore", invalid="ignore"):
        expected = predictions + 2.0 * bound * q.astype(np.float64)
    unpred = result.codes == 0
    expected[unpred] = result.outliers[: int(unpred.sum())]
    np.testing.assert_array_equal(got, expected)
    np.testing.assert_array_equal(got, result.reconstructed)


@settings(max_examples=50, deadline=None)
@given(entries=st.dictionaries(st.text(min_size=1, max_size=20), st.binary(max_size=200),
                               max_size=8))
def test_bytes_dict_roundtrip(entries):
    assert unpack_bytes_dict(pack_bytes_dict(entries)) == entries


@settings(max_examples=50, deadline=None)
@given(arrays=st.dictionaries(
    st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12),
    hnp.arrays(dtype=np.float32,
               shape=hnp.array_shapes(max_dims=3, max_side=6),
               elements=st.floats(-100, 100, allow_nan=False, width=32)),
    max_size=5))
def test_array_dict_roundtrip(arrays):
    out = unpack_arrays(pack_arrays(arrays))
    assert set(out) == set(arrays)
    for key in arrays:
        np.testing.assert_array_equal(out[key], np.asarray(arrays[key]))


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-5, 5, allow_nan=False, allow_infinity=False), min_size=1, max_size=5),
    weights=st.lists(st.floats(0.1, 10.0, allow_nan=False), min_size=1, max_size=5),
)
def test_fedavg_average_within_convex_hull(values, weights):
    n = min(len(values), len(weights))
    values, weights = values[:n], weights[:n]
    states = [{"w": np.full(3, v, dtype=np.float32)} for v in values]
    out = fedavg_aggregate(states, weights=weights)
    assert out["w"].min() >= min(values) - 1e-5
    assert out["w"].max() <= max(values) + 1e-5


@settings(max_examples=30, deadline=None)
@given(data=float_arrays)
def test_compression_is_deterministic(data):
    comp = SZ2Compressor(error_bound=1e-2)
    assert comp.compress(data) == comp.compress(data)

"""Federated partitioning of a dataset across clients.

FedAvg experiments need each client to hold a local shard.  Two standard
schemes are provided: IID (uniform random split) and label-skewed non-IID via a
Dirichlet distribution over class proportions (the common benchmark for
heterogeneous FL).  The paper's evaluation uses four IID clients; the Dirichlet
option supports the heterogeneity ablation.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import make_rng

__all__ = ["iid_partition", "dirichlet_partition", "partition_dataset"]


def iid_partition(n_samples: int, n_clients: int, seed: int | None = 0) -> list[np.ndarray]:
    """Split ``range(n_samples)`` uniformly at random into ``n_clients`` shards."""
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if n_samples < n_clients:
        raise ValueError("need at least one sample per client")
    rng = make_rng(seed)
    permutation = rng.permutation(n_samples)
    return [np.sort(shard) for shard in np.array_split(permutation, n_clients)]


def dirichlet_partition(labels: np.ndarray, n_clients: int, alpha: float = 0.5,
                        seed: int | None = 0, min_per_client: int = 1) -> list[np.ndarray]:
    """Label-skewed split: class ``c``'s samples are divided by Dir(alpha) proportions.

    Smaller ``alpha`` produces more heterogeneous clients.  The split is
    re-drawn (up to a bounded number of attempts) until every client holds at
    least ``min_per_client`` samples.
    """
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = make_rng(seed)
    classes = np.unique(labels)
    for _attempt in range(100):
        shards: list[list[int]] = [[] for _ in range(n_clients)]
        for cls in classes:
            idx = np.flatnonzero(labels == cls)
            rng.shuffle(idx)
            proportions = rng.dirichlet(np.full(n_clients, alpha))
            boundaries = (np.cumsum(proportions) * idx.size).astype(np.int64)[:-1]
            for client, chunk in enumerate(np.split(idx, boundaries)):
                shards[client].extend(chunk.tolist())
        sizes = [len(s) for s in shards]
        if min(sizes) >= min_per_client:
            return [np.sort(np.asarray(s, dtype=np.int64)) for s in shards]
    raise RuntimeError("could not satisfy min_per_client; lower it or increase alpha")


def partition_dataset(dataset: Dataset, n_clients: int, scheme: str = "iid",
                      alpha: float = 0.5, seed: int | None = 0) -> list[Dataset]:
    """Return per-client :class:`Dataset` shards using the requested scheme."""
    if scheme == "iid":
        shards = iid_partition(len(dataset), n_clients, seed=seed)
    elif scheme == "dirichlet":
        shards = dirichlet_partition(dataset.labels, n_clients, alpha=alpha, seed=seed)
    else:
        raise ValueError(f"unknown partition scheme {scheme!r} (expected 'iid' or 'dirichlet')")
    return [dataset.subset(indices) for indices in shards]

"""Coordinator services: tree aggregation, overlapped uplinks, durable rounds.

Three drills over an 8-client FedAvg run on a simulated 2 Mbps uplink:

* **flat vs tree** — aggregate each round through :class:`TreeAggregator` at
  several fan-ins and through the flat reference; the outputs must be
  bit-identical (the double-double partial-sum kernel makes FedAvg grouping
  insensitive), and the per-round aggregation wall time is reported.
* **pool vs async** — ship the same round's updates over the execution-backend
  pool and over the asyncio overlapped-uplink path (``overlap="async"``, where
  simulated delays become awaits); results must match bit-for-bit and the
  async round should approach ``max`` rather than ``sum`` of the delays.
  A third leg re-runs the async path with ``streaming=True`` so each update
  decodes incrementally as its simulated packets arrive — same bit-identity
  requirement.
* **aggregate on arrival** — re-run the rounds with
  ``aggregate_on_arrival=True`` (batch-workers, inline, and streamed-encode
  pooled variants): every deterministic field must match the batch-aggregation
  reference bit-for-bit, and the reported peak decoded-update residency must
  be 1 on the inline path against the fleet-sized residency of the batch path
  — the server folds each update as its ship lands instead of holding all of
  them.
* **persistent vs fresh** — run the same rounds under the persistent runtime
  (one long-lived 4-worker pool, worker-resident clients) and under the
  historic fresh-pool-per-map path; the records must match bit-for-bit, and
  pool spinups plus per-client pickled train-task bytes are reported.
* **kill-and-resume** (``--kill-resume``) — launch a journaled run in a child
  process that hard-exits mid-round (``REPRO_JOURNAL_CRASH_AFTER``), resume it
  from the journal, and require the combined result to match an uninterrupted
  reference on every deterministic field plus the final global state.

Two entry points:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_coordinator.py -o
  python_files="bench_*.py" -o python_functions="bench_*"`` — pytest-benchmark
  harness (thread backend, persists results),
* ``PYTHONPATH=src python benchmarks/bench_coordinator.py [--backend process]
  [--smoke] [--kill-resume]`` — direct CLI; ``--smoke`` is the
  correctness-only CI drill without timing assertions.
"""

from __future__ import annotations

import argparse
import os
import pickle
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import fl_settings, quick_fl_data, save_results
from repro.core import NetworkModel
from repro.fl import FederatedSimulation, RawUpdateCodec, TreeAggregator, fedavg_aggregate
from repro.fl.coordinator.coordinator import TrainTask
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model
from repro.utils.parallel import SharedMemoryArena, get_backend

N_CLIENTS = 8
ROUNDS = 2
BANDWIDTH_MBPS = 2.0
FAN_INS = (2, 3, 4)
SEED = 13


def _build_simulation(train, test, cfg, backend: str = "thread", **kwargs):
    def factory():
        return build_model(cfg["model"], num_classes=10, in_channels=3,
                           image_size=cfg["image_size"], seed=0)

    network = NetworkModel(bandwidth_mbps=BANDWIDTH_MBPS, simulate_delay=True)
    return FederatedSimulation(factory, train, test, n_clients=N_CLIENTS,
                               codec=RawUpdateCodec(), network=network,
                               batch_size=cfg["batch_size"], lr=cfg["lr"],
                               seed=SEED, uplink="parallel", backend=backend,
                               **kwargs)


def _deterministic_fields(result):
    """Everything a SimulationResult must reproduce bit-for-bit."""
    return [(r.accuracy, r.uncompressed_bytes, r.transmitted_bytes,
             r.communication_seconds, tuple(r.client_losses),
             tuple(r.participants), tuple(r.dropped_clients),
             tuple(r.straggler_clients), tuple(r.late_clients),
             tuple(sorted(r.absorbed_clients.items())))
            for r in result.rounds]


# ---------------------------------------------------------------------------
def _run_tree_drill(train, test, cfg, backend: str):
    """Flat vs tree aggregation: per-round wall and bit-identity."""
    # one training round's states/weights, reused for every aggregation timing
    sim = _build_simulation(train, test, cfg, backend=backend)
    global_state = sim.server.global_state()
    rng = np.random.default_rng(SEED)
    states = []
    for _ in range(N_CLIENTS):
        jitter = {k: np.asarray(v) + rng.normal(0, 0.01, np.shape(v)).astype(
            np.asarray(v).dtype) if np.asarray(v).dtype.kind == "f" else np.asarray(v)
            for k, v in global_state.items()}
        states.append(jitter)
    weights = list(rng.integers(16, 64, size=N_CLIENTS))

    start = time.perf_counter()
    flat = fedavg_aggregate(states, weights)
    flat_wall = time.perf_counter() - start

    rows = [("flat", flat_wall, True)]
    for fan_in in FAN_INS:
        tree_agg = TreeAggregator(fan_in=fan_in)
        start = time.perf_counter()
        tree = tree_agg.aggregate(states, weights)
        wall = time.perf_counter() - start
        identical = all(np.array_equal(flat[k], tree[k])
                        and flat[k].dtype == tree[k].dtype for k in flat)
        rows.append((f"tree fan-in {fan_in}", wall, identical))
        assert identical, f"tree fan-in {fan_in} diverged from flat aggregation"

    # end-to-end: a tree-aggregated run matches the flat run on every field
    flat_run = _build_simulation(train, test, cfg, backend=backend).run(ROUNDS)
    tree_run = _build_simulation(train, test, cfg, backend=backend,
                                 tree_fanout=FAN_INS[0]).run(ROUNDS)
    assert _deterministic_fields(tree_run) == _deterministic_fields(flat_run), \
        "tree-aggregated run diverged from the flat run"
    return rows


def _run_overlap_drill(train, test, cfg, backend: str):
    """Pool vs asyncio-overlapped uplinks (batch and streaming decode)."""
    walls, results = {}, {}
    for label, overlap, streaming in (("pool", "pool", False),
                                      ("async", "async", False),
                                      ("async-streaming", "async", True)):
        sim = _build_simulation(train, test, cfg, backend=backend,
                                max_workers=1, overlap=overlap,
                                streaming=streaming)
        start = time.perf_counter()
        results[label] = sim.run(ROUNDS)
        walls[label] = time.perf_counter() - start
    for label in ("async", "async-streaming"):
        assert _deterministic_fields(results[label]) == \
            _deterministic_fields(results["pool"]), \
            f"{label} overlapped uplinks diverged from the pool path"
    return walls, results


def _run_arrival_drill(train, test, cfg, backend: str) -> dict:
    """Aggregate-on-arrival vs batch: bit-identity and O(1) residency."""
    walls, runs = {}, {}
    variants = (
        ("batch", dict(max_workers=1)),
        ("arrival", dict(max_workers=1, aggregate_on_arrival=True)),
        ("arrival-streamed", dict(max_workers=4, streaming_encode=True,
                                  aggregate_on_arrival=True)),
    )
    for label, kwargs in variants:
        sim = _build_simulation(train, test, cfg, backend=backend, **kwargs)
        start = time.perf_counter()
        runs[label] = sim.run(ROUNDS)
        walls[label] = time.perf_counter() - start
    for label in ("arrival", "arrival-streamed"):
        assert _deterministic_fields(runs[label]) == \
            _deterministic_fields(runs["batch"]), \
            f"{label} aggregation diverged from the batch reference"

    residency = {label: max(r.peak_update_residency for r in runs[label].rounds)
                 for label, _ in variants}
    # batch aggregation holds every decoded update until the round ends;
    # the arrival path folds each one as its ship completes, so the inline
    # (single-worker) path keeps exactly one update resident
    assert residency["batch"] == N_CLIENTS, \
        f"batch path expected {N_CLIENTS} resident updates, saw {residency['batch']}"
    assert residency["arrival"] == 1, \
        f"inline arrival path expected 1 resident update, saw {residency['arrival']}"
    # the pooled path's reorder buffer tracks arrival skew (completion order
    # is timing-dependent), so it is reported rather than asserted
    return {"walls": walls, "residency": residency}


def _run_persistent_drill(train, test, cfg, backend: str) -> dict:
    """Persistent runtime vs fresh pools: bit-identity, spinups, task bytes."""
    exec_backend = get_backend(backend)
    runs, walls, spinups = {}, {}, {}
    for label, persistent in (("persistent", True), ("fresh", False)):
        sim = _build_simulation(train, test, cfg, backend=backend,
                                max_workers=4, persistent=persistent)
        before = exec_backend.pool_spinups
        start = time.perf_counter()
        runs[label] = sim.run(ROUNDS)
        walls[label] = time.perf_counter() - start
        spinups[label] = exec_backend.pool_spinups - before
    assert _deterministic_fields(runs["persistent"]) == \
        _deterministic_fields(runs["fresh"]), \
        "persistent runtime diverged from the fresh-pool path"

    client = sim.clients[0]
    global_state = sim.server.global_state()
    full_bytes = len(pickle.dumps(TrainTask(
        client_id=client.client_id, epochs=1, round_index=0,
        global_state=global_state, client=client)))
    with SharedMemoryArena(global_state) as arena:
        resident_bytes = len(pickle.dumps(TrainTask(
            client_id=client.client_id, epochs=1, round_index=0,
            state_handle=arena.handle, fleet=("bench", 0))))
    assert resident_bytes < full_bytes
    return {"walls": walls, "spinups": spinups,
            "full_task_bytes": full_bytes,
            "resident_task_bytes": resident_bytes}


def _run_kill_resume_drill(backend: str) -> dict:
    """Kill a journaled child mid-round, resume, compare to uninterrupted."""
    with tempfile.TemporaryDirectory(prefix="fedsz-journal-") as journal_dir:
        child_env = dict(os.environ)
        child_env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parent.parent / "src"),
             child_env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        # die after the 7th journal event: run header + round 0 (round_start,
        # 8 ships, round_complete) would be 11 events, so event 7 lands in the
        # middle of round 0's client ships — a genuine mid-round crash
        child_env["REPRO_JOURNAL_CRASH_AFTER"] = "7"
        child = subprocess.run(
            [sys.executable, __file__, "--_child", "--backend", backend,
             "--journal-dir", journal_dir],
            env=child_env, capture_output=True, text=True)
        if child.returncode != 42:
            raise AssertionError(
                f"crash child expected to hard-exit 42, got {child.returncode}:\n"
                f"{child.stderr[-2000:]}")

        cfg = fl_settings()
        train, test = quick_fl_data("cifar10", seed=47)
        reference_sim = _build_simulation(train, test, cfg, backend=backend)
        reference = reference_sim.run(ROUNDS)
        resumed_sim = _build_simulation(train, test, cfg, backend=backend,
                                        journal_dir=journal_dir, resume=True)
        resumed = resumed_sim.run(ROUNDS)

        assert _deterministic_fields(resumed) == _deterministic_fields(reference), \
            "resumed run diverged from the uninterrupted reference"
        ref_state = reference_sim.server.global_state()
        res_state = resumed_sim.server.global_state()
        assert all(np.array_equal(ref_state[k], res_state[k]) for k in ref_state), \
            "resumed final global state is not bit-identical"
        return {"crash_exit": child.returncode,
                "rounds": len(resumed.rounds),
                "final_accuracy": resumed.final_accuracy}


def _child_main(backend: str, journal_dir: str) -> int:
    """Child half of the kill-resume drill: run journaled until the crash hook."""
    cfg = fl_settings()
    train, test = quick_fl_data("cifar10", seed=47)
    sim = _build_simulation(train, test, cfg, backend=backend,
                            journal_dir=journal_dir)
    sim.run(ROUNDS)  # REPRO_JOURNAL_CRASH_AFTER hard-exits before completion
    return 0  # reached only if the crash hook never fired


# ---------------------------------------------------------------------------
def _check_and_report(backend: str, persist: bool, assert_speedup: bool,
                      kill_resume: bool) -> int:
    cfg = fl_settings()
    train, test = quick_fl_data("cifar10", seed=47)

    tree_rows = _run_tree_drill(train, test, cfg, backend)
    walls, results = _run_overlap_drill(train, test, cfg, backend)
    arrival = _run_arrival_drill(train, test, cfg, backend)
    persistent = _run_persistent_drill(train, test, cfg, backend)

    table = Table(f"Coordinator services ({backend} backend) - {N_CLIENTS} "
                  f"clients, {ROUNDS} rounds, {BANDWIDTH_MBPS:g} Mbps simulated uplink",
                  ["drill", "wall (s)", "bit-identical"])
    record = ExperimentRecord("coordinator",
                              "tree aggregation + overlapped uplinks + durable rounds")
    record.add(backend=backend, host_cores=os.cpu_count() or 1)
    for label, wall, identical in tree_rows:
        table.add_row(f"aggregate {label}", f"{wall * 1e3:.2f}ms", str(identical))
        record.add(drill=f"aggregate-{label}", wall_seconds=wall)
    for label in ("pool", "async", "async-streaming"):
        table.add_row(f"uplinks {label}", f"{walls[label]:.2f}",
                      str(label == "pool" or
                          _deterministic_fields(results[label]) ==
                          _deterministic_fields(results["pool"])))
        record.add(drill=f"uplinks-{label}", wall_seconds=walls[label],
                   final_accuracy=results[label].final_accuracy)
    for label in ("batch", "arrival", "arrival-streamed"):
        table.add_row(f"aggregate-on-arrival {label} "
                      f"({arrival['residency'][label]} resident)",
                      f"{arrival['walls'][label]:.2f}", "True")
        record.add(drill=f"arrival-{label}",
                   wall_seconds=arrival["walls"][label],
                   peak_update_residency=arrival["residency"][label])
    for label in ("persistent", "fresh"):
        table.add_row(f"runtime {label} "
                      f"({persistent['spinups'][label]} pool spinups)",
                      f"{persistent['walls'][label]:.2f}", "True")
        record.add(drill=f"runtime-{label}",
                   wall_seconds=persistent["walls"][label],
                   pool_spinups=persistent["spinups"][label])
    record.add(full_task_bytes=persistent["full_task_bytes"],
               resident_task_bytes=persistent["resident_task_bytes"])
    if kill_resume:
        resume_stats = _run_kill_resume_drill(backend)
        table.add_row("kill-and-resume", "-", "True")
        record.add(drill="kill-and-resume", **resume_stats)

    if persist:
        save_results("coordinator", table, record)
    else:
        print()
        print(table.render())

    # with a 1-worker pool the simulated delays sleep serially, so the async
    # path (delays overlap on the event loop) must finish measurably sooner;
    # skipped on shared CI runners where wall-clock comparisons are flaky
    if assert_speedup and not os.environ.get("CI"):
        assert walls["async"] < walls["pool"], \
            f"async {walls['async']:.2f}s not faster than pool {walls['pool']:.2f}s"
    return 0


def bench_coordinator(benchmark):
    """pytest-benchmark harness (historic entry point; thread backend)."""
    benchmark.pedantic(
        lambda: _check_and_report("thread", persist=True, assert_speedup=True,
                                  kill_resume=False),
        rounds=1, iterations=1)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend for pooled stages")
    parser.add_argument("--smoke", action="store_true",
                        help="correctness-only drill: no timing assertion, "
                             "results are not persisted (CI mode)")
    parser.add_argument("--kill-resume", action="store_true",
                        help="also run the crash-mid-round + journal-resume drill")
    parser.add_argument("--_child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--journal-dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args._child:
        return _child_main(args.backend, args.journal_dir)
    return _check_and_report(args.backend, persist=not args.smoke,
                             assert_speedup=not args.smoke,
                             kill_resume=args.kill_resume)


if __name__ == "__main__":
    sys.exit(main())
